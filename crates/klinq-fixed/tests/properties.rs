//! Property-based tests for the Q16.16 arithmetic model.

use klinq_fixed::{dot, dot_wide, nearest_pow2_exponent, Pow2Divisor, Q16_16, WideAccumulator};
use proptest::prelude::*;

/// Strategy over the full raw bit range.
fn any_q() -> impl Strategy<Value = Q16_16> {
    any::<i32>().prop_map(Q16_16::from_bits)
}

/// Strategy over a "small" range where products cannot overflow Q16.16.
fn small_q() -> impl Strategy<Value = Q16_16> {
    (-100.0f64..100.0).prop_map(Q16_16::from_f64)
}

proptest! {
    #[test]
    fn bits_round_trip(raw in any::<i32>()) {
        prop_assert_eq!(Q16_16::from_bits(raw).to_bits(), raw);
    }

    #[test]
    fn f64_round_trip_on_grid(q in any_q()) {
        prop_assert_eq!(Q16_16::from_f64(q.to_f64()), q);
    }

    #[test]
    fn from_f64_error_is_half_ulp(v in -32000.0f64..32000.0) {
        let q = Q16_16::from_f64(v);
        prop_assert!((q.to_f64() - v).abs() <= 0.5 / 65536.0 + 1e-12);
    }

    #[test]
    fn addition_commutes(a in any_q(), b in any_q()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn multiplication_commutes(a in any_q(), b in any_q()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn add_matches_float_when_in_range(a in small_q(), b in small_q()) {
        let want = a.to_f64() + b.to_f64();
        prop_assert!((a + b).to_f64() - want == 0.0);
    }

    #[test]
    fn mul_matches_float_within_ulp(a in small_q(), b in small_q()) {
        let want = a.to_f64() * b.to_f64();
        let got = (a * b).to_f64();
        // One rounding step of 2^-16, plus representation error of inputs.
        prop_assert!((got - want).abs() <= 1.0 / 65536.0);
    }

    #[test]
    fn saturating_ops_stay_in_range(a in any_q(), b in any_q()) {
        for v in [a + b, a - b, a * b, a / b, -a, a.abs()] {
            prop_assert!(v >= Q16_16::MIN && v <= Q16_16::MAX);
        }
    }

    #[test]
    fn checked_agrees_with_saturating_when_some(a in any_q(), b in any_q()) {
        if let Some(v) = a.checked_add(b) {
            prop_assert_eq!(v, a.saturating_add(b));
        }
        if let Some(v) = a.checked_mul(b) {
            prop_assert_eq!(v, a.saturating_mul(b));
        }
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(a in any_q()) {
        let r = a.relu();
        prop_assert!(!r.is_negative());
        prop_assert_eq!(r.relu(), r);
    }

    #[test]
    fn ordering_is_consistent_with_f64(a in any_q(), b in any_q()) {
        prop_assert_eq!(a < b, a.to_f64() < b.to_f64());
    }

    #[test]
    fn shift_right_halves(a in any_q(), k in 0u32..8) {
        let shifted = (a >> k).to_f64();
        let want = (a.to_bits() >> k) as f64 / 65536.0;
        prop_assert_eq!(shifted, want);
    }

    #[test]
    fn pow2_snap_is_within_half_octave(x in 1e-6f64..1e6) {
        let e = nearest_pow2_exponent(x);
        let ratio = x / (e as f64).exp2();
        // round(log2 x) = e means ratio in [2^-0.5, 2^0.5].
        prop_assert!(ratio >= std::f64::consts::FRAC_1_SQRT_2 - 1e-12);
        prop_assert!(ratio <= std::f64::consts::SQRT_2 + 1e-12);
    }

    #[test]
    fn pow2_divisor_matches_shift(v in -1000.0f64..1000.0, e in -4i32..8) {
        let d = Pow2Divisor::from_exponent(e);
        let q = Q16_16::from_f64(v);
        let got = d.apply(q).to_f64();
        let want = d.apply_f64(q.to_f64());
        // Shift truncates toward -inf; error bounded by one output ULP
        // (after accounting for left-shift saturation, excluded by range).
        prop_assert!((got - want).abs() <= 1.0 / 65536.0 + 1e-9,
            "v={v} e={e} got={got} want={want}");
    }

    #[test]
    fn dot_wide_equals_sequential_macs(
        vals in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..64)
    ) {
        let a: Vec<Q16_16> = vals.iter().map(|&(x, _)| Q16_16::from_f64(x)).collect();
        let b: Vec<Q16_16> = vals.iter().map(|&(_, y)| Q16_16::from_f64(y)).collect();
        let mut acc = WideAccumulator::new();
        for (&x, &y) in a.iter().zip(&b) {
            acc.mac(x, y);
        }
        prop_assert_eq!(acc, dot_wide(&a, &b));
    }

    #[test]
    fn dot_split_merge_invariance(
        vals in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..64),
        split_frac in 0.0f64..1.0
    ) {
        let a: Vec<Q16_16> = vals.iter().map(|&(x, _)| Q16_16::from_f64(x)).collect();
        let b: Vec<Q16_16> = vals.iter().map(|&(_, y)| Q16_16::from_f64(y)).collect();
        let split = ((vals.len() as f64) * split_frac) as usize;
        let mut left = dot_wide(&a[..split], &b[..split]);
        left.merge(dot_wide(&a[split..], &b[split..]));
        prop_assert_eq!(left, dot_wide(&a, &b));
    }

    #[test]
    fn dot_matches_float_reference(
        vals in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 0..256)
    ) {
        let a: Vec<Q16_16> = vals.iter().map(|&(x, _)| Q16_16::from_f64(x)).collect();
        let b: Vec<Q16_16> = vals.iter().map(|&(_, y)| Q16_16::from_f64(y)).collect();
        let want: f64 = a.iter().zip(&b).map(|(x, y)| x.to_f64() * y.to_f64()).sum();
        let got = dot(&a, &b).to_f64();
        prop_assert!((got - want).abs() <= 1.0 / 65536.0,
            "got={got} want={want}");
    }

    #[test]
    fn display_parse_round_trip(q in any_q()) {
        // Display prints 6 decimals which is finer than 2^-16, so parsing
        // back must reproduce the value (up to final-digit rounding of the
        // decimal representation: allow one ULP).
        let s = q.to_string();
        let back: Q16_16 = s.parse().unwrap();
        prop_assert!((back.to_bits() as i64 - q.to_bits() as i64).abs() <= 1);
    }
}
