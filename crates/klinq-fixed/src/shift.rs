//! Power-of-two division: the hardware normalization trick.
//!
//! The KLiNQ normalization layer computes `(x - x_min) / sigma`. A real
//! divider is expensive on an FPGA, so the paper approximates `sigma` by the
//! nearest power of two **at training time** and replaces the division with
//! an arithmetic shift, completing in two clock cycles. This module provides
//! the training-time snap ([`nearest_pow2_exponent`]) and the inference-time
//! shift ([`shift_divide`] / [`Pow2Divisor`]).

use crate::q16::Q16_16;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Returns the exponent `e` such that `2^e` is the power of two nearest to
/// `x` in log space (i.e. `e = round(log2(x))`).
///
/// This is the training-time preparation step for the shift-based
/// normalizer: the measured trace standard deviation is snapped to `2^e`.
///
/// # Panics
///
/// Panics if `x` is not finite and strictly positive — a standard deviation
/// of zero or below has no power-of-two approximation and indicates a
/// degenerate calibration set.
///
/// # Examples
///
/// ```
/// use klinq_fixed::nearest_pow2_exponent;
/// assert_eq!(nearest_pow2_exponent(1.0), 0);
/// assert_eq!(nearest_pow2_exponent(3.0), 2);  // log2(3) ≈ 1.58 → 2
/// assert_eq!(nearest_pow2_exponent(0.3), -2); // log2(0.3) ≈ -1.74 → -2
/// ```
pub fn nearest_pow2_exponent(x: f64) -> i32 {
    assert!(
        x.is_finite() && x > 0.0,
        "nearest_pow2_exponent requires a finite positive input, got {x}"
    );
    x.log2().round() as i32
}

/// Divides `q` by `2^exponent` using shifts, exactly as the FPGA does.
///
/// Negative exponents multiply (shift left, saturating).
///
/// # Examples
///
/// ```
/// use klinq_fixed::{shift_divide, Q16_16};
/// let x = Q16_16::from_f64(12.0);
/// assert_eq!(shift_divide(x, 2).to_f64(), 3.0);
/// assert_eq!(shift_divide(x, -1).to_f64(), 24.0);
/// ```
pub fn shift_divide(q: Q16_16, exponent: i32) -> Q16_16 {
    if exponent >= 0 {
        q >> exponent as u32
    } else {
        q << (-exponent) as u32
    }
}

/// A divisor snapped to a power of two, carrying both the exact value it
/// approximates and the shift exponent the hardware will use.
///
/// # Examples
///
/// ```
/// use klinq_fixed::{Pow2Divisor, Q16_16};
/// let d = Pow2Divisor::from_value(3.1); // snaps to 2^2 = 4
/// assert_eq!(d.exponent(), 2);
/// assert_eq!(d.apply(Q16_16::from_f64(8.0)).to_f64(), 2.0);
/// assert!((d.relative_error() - (4.0 - 3.1) / 3.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pow2Divisor {
    exact: f64,
    exponent: i32,
}

impl Pow2Divisor {
    /// Snaps `value` to the nearest power of two.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite and strictly positive.
    pub fn from_value(value: f64) -> Self {
        let exponent = nearest_pow2_exponent(value);
        Self {
            exact: value,
            exponent,
        }
    }

    /// Builds directly from a shift exponent (exact power of two).
    pub fn from_exponent(exponent: i32) -> Self {
        Self {
            exact: (exponent as f64).exp2(),
            exponent,
        }
    }

    /// The shift exponent `e` (divides by `2^e`).
    pub fn exponent(&self) -> i32 {
        self.exponent
    }

    /// The power-of-two divisor value `2^e`.
    pub fn pow2_value(&self) -> f64 {
        (self.exponent as f64).exp2()
    }

    /// The exact (pre-snap) value this divisor approximates.
    pub fn exact_value(&self) -> f64 {
        self.exact
    }

    /// Signed relative error introduced by the snap:
    /// `(2^e - exact) / exact`. Bounded by ±41 % in the worst case
    /// (`x = 3·2^k/2`), typically far less.
    pub fn relative_error(&self) -> f64 {
        (self.pow2_value() - self.exact) / self.exact
    }

    /// Applies the division as the hardware shift.
    pub fn apply(&self, q: Q16_16) -> Q16_16 {
        shift_divide(q, self.exponent)
    }

    /// Applies the division in floating point (reference semantics, used to
    /// bound the fixed-point model's error in tests).
    pub fn apply_f64(&self, x: f64) -> f64 {
        x / self.pow2_value()
    }
}

impl fmt::Display for Pow2Divisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "2^{} (≈{:.6})", self.exponent, self.exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_of_exact_powers() {
        for e in -10..=10 {
            let x = (e as f64).exp2();
            assert_eq!(nearest_pow2_exponent(x), e, "2^{e}");
        }
    }

    #[test]
    fn exponent_rounds_in_log_space() {
        // Geometric midpoint between 2^1 and 2^2 is 2*sqrt(2) ≈ 2.828;
        // below it snaps to 1, above to 2.
        assert_eq!(nearest_pow2_exponent(2.8), 1);
        assert_eq!(nearest_pow2_exponent(2.9), 2);
    }

    #[test]
    #[should_panic(expected = "finite positive")]
    fn exponent_rejects_zero() {
        nearest_pow2_exponent(0.0);
    }

    #[test]
    #[should_panic(expected = "finite positive")]
    fn exponent_rejects_negative() {
        nearest_pow2_exponent(-1.0);
    }

    #[test]
    fn shift_divide_both_directions() {
        let x = Q16_16::from_f64(-8.0);
        assert_eq!(shift_divide(x, 3).to_f64(), -1.0);
        assert_eq!(shift_divide(x, 0), x);
        assert_eq!(shift_divide(x, -2).to_f64(), -32.0);
    }

    #[test]
    fn divisor_round_trips_exponent() {
        let d = Pow2Divisor::from_exponent(-3);
        assert_eq!(d.exponent(), -3);
        assert_eq!(d.pow2_value(), 0.125);
        assert_eq!(d.apply(Q16_16::ONE).to_f64(), 8.0);
    }

    #[test]
    fn divisor_relative_error_is_bounded() {
        // Worst case in log space is sqrt(2) away: |err| <= sqrt(2)-1.
        for i in 1..1000 {
            let x = i as f64 * 0.0137;
            let d = Pow2Divisor::from_value(x);
            assert!(
                d.relative_error().abs() <= std::f64::consts::SQRT_2 - 1.0 + 1e-9,
                "x={x} err={}",
                d.relative_error()
            );
        }
    }

    #[test]
    fn fixed_and_float_paths_agree() {
        let d = Pow2Divisor::from_value(4.0);
        for v in [-100.0, -1.5, 0.0, 0.25, 7.75, 1000.0] {
            let fx = d.apply(Q16_16::from_f64(v)).to_f64();
            let fl = d.apply_f64(v);
            assert!((fx - fl).abs() <= 1.0 / 65536.0, "v={v}: {fx} vs {fl}");
        }
    }

    #[test]
    fn display_is_informative() {
        let d = Pow2Divisor::from_value(3.1);
        let s = d.to_string();
        assert!(s.contains("2^2"), "{s}");
    }
}
