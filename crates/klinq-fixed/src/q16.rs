//! The [`Q16_16`] fixed-point number type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// Number of fractional bits in the representation.
pub const FRAC_BITS: u32 = 16;
/// Scaling factor between the raw integer and the represented value.
pub const SCALE: i64 = 1 << FRAC_BITS;

/// A signed 32-bit fixed-point number with 16 integer and 16 fractional bits.
///
/// This is the data format the KLiNQ FPGA implementation uses throughout its
/// datapath ("a 32-bit fixed-point format ... allocating 16 bits for the
/// integer and 16 bits for the fractional part", Sec. IV of the paper).
///
/// The raw representation is an `i32` holding `value * 2^16`, so the
/// representable range is `[-32768.0, 32767.99998474]` with a resolution of
/// `2^-16 ≈ 1.5e-5`.
///
/// Arithmetic through the std operator traits (`+`, `-`, `*`, `/`) uses
/// **saturating** semantics, matching the overflow handling of the hardware
/// activation layer. Explicit `checked_*` and `wrapping_*` variants are
/// provided for modelling other policies.
///
/// # Examples
///
/// ```
/// use klinq_fixed::Q16_16;
/// let x = Q16_16::from_f64(2.25);
/// assert_eq!(x.to_bits(), 2 << 16 | 0x4000);
/// assert_eq!((x >> 1).to_f64(), 1.125); // shift = divide by 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Q16_16(i32);

/// How arithmetic that exceeds the representable range should behave.
///
/// The KLiNQ hardware saturates in the activation layer; `Wrap` models a
/// naive implementation without overflow handling (used in failure-injection
/// tests to show why saturation is needed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Clamp to [`Q16_16::MIN`] / [`Q16_16::MAX`].
    #[default]
    Saturate,
    /// Two's-complement wrap-around.
    Wrap,
}

impl Q16_16 {
    /// The value `0.0`.
    pub const ZERO: Self = Self(0);
    /// The value `1.0`.
    pub const ONE: Self = Self(1 << FRAC_BITS);
    /// The value `-1.0`.
    pub const NEG_ONE: Self = Self(-(1 << FRAC_BITS));
    /// The value `0.5`.
    pub const HALF: Self = Self(1 << (FRAC_BITS - 1));
    /// Largest representable value, `32767 + 65535/65536`.
    pub const MAX: Self = Self(i32::MAX);
    /// Smallest representable value, `-32768.0`.
    pub const MIN: Self = Self(i32::MIN);
    /// Smallest positive step, `2^-16`.
    pub const EPSILON: Self = Self(1);

    /// Creates a fixed-point number from its raw bit pattern.
    ///
    /// ```
    /// use klinq_fixed::Q16_16;
    /// assert_eq!(Q16_16::from_bits(1 << 16), Q16_16::ONE);
    /// ```
    #[inline]
    pub const fn from_bits(bits: i32) -> Self {
        Self(bits)
    }

    /// Returns the raw two's-complement bit pattern.
    #[inline]
    pub const fn to_bits(self) -> i32 {
        self.0
    }

    /// Converts from an `i16` integer value (exact).
    #[inline]
    pub const fn from_int(v: i16) -> Self {
        Self((v as i32) << FRAC_BITS)
    }

    /// Converts an `f64` to fixed point, rounding to nearest (ties away
    /// from zero) and saturating at the representable range. NaN maps to
    /// zero.
    ///
    /// Branchless and vectorizable: the half-adjust
    /// `trunc(x + copysign(0.5, x))` with a float-space NaN guard and
    /// clamp lowers to plain SIMD ops, unlike `f64::round` whose
    /// ties-away semantics have no x86 instruction — this is what lets
    /// the batched datapath's bulk ADC-quantization loops
    /// autovectorize.
    ///
    /// Rounding contract: exact ties (`v * 2^16` landing on `k + 0.5`)
    /// round away from zero like `f64::round`; a value within 1 ulp
    /// *below* an exact tie additionally rounds away (the `+0.5` sum
    /// rounds up), where `f64::round` would round toward zero — a
    /// 1-ulp fixed-point difference on adversarially chosen inputs
    /// only. The workspace's own quantization never produces such
    /// values (power-of-two scaling is exact, f32-sourced samples and
    /// weights carry 24 significand bits, and the averaging reciprocals
    /// `1/group` are small-integer quotients never that close to a
    /// half), but callers feeding arbitrary `f64`s — e.g. through the
    /// [`FromStr`] parser — get this half-adjust behaviour, not
    /// `f64::round`'s.
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        let scaled = v * SCALE as f64;
        let adjusted = scaled + 0.5f64.copysign(scaled);
        // NaN → 0 as a float select, then saturate in float space: both
        // lower to vector compare/blend/min/max, where the saturating
        // `as i32` cast would force a scalar conversion per sample.
        let guarded = if adjusted.is_nan() { 0.0 } else { adjusted };
        let clamped = guarded.clamp(i32::MIN as f64, i32::MAX as f64);
        // SAFETY: `clamped` is finite and lies in [i32::MIN, i32::MAX]
        // (both bounds exactly representable in f64), so the truncating
        // conversion cannot overflow.
        Self(unsafe { clamped.to_int_unchecked::<i32>() })
    }

    /// Converts an `f32` to fixed point, rounding to nearest and saturating.
    #[inline]
    pub fn from_f32(v: f32) -> Self {
        Self::from_f64(v as f64)
    }

    /// Converts to `f64` (exact: every Q16.16 value fits in an f64).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// Converts to `f32` (may round: 32 significand bits vs f32's 24).
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// Truncates to the integer part (rounds toward negative infinity).
    #[inline]
    pub const fn floor_int(self) -> i32 {
        self.0 >> FRAC_BITS
    }

    /// `true` if the sign bit is set.
    ///
    /// This mirrors the hardware ReLU, which only inspects the sign bit.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Self) -> Option<Self> {
        self.0.checked_add(rhs.0).map(Self)
    }

    /// Checked subtraction; `None` on overflow.
    #[inline]
    pub fn checked_sub(self, rhs: Self) -> Option<Self> {
        self.0.checked_sub(rhs.0).map(Self)
    }

    /// Checked multiplication; `None` if the product is unrepresentable.
    ///
    /// The product is computed at 64-bit width (as the FPGA DSP blocks do)
    /// and rounded to nearest before the range check.
    pub fn checked_mul(self, rhs: Self) -> Option<Self> {
        let wide = self.0 as i64 * rhs.0 as i64;
        let rounded = round_shift(wide, FRAC_BITS);
        if rounded > i32::MAX as i64 || rounded < i32::MIN as i64 {
            None
        } else {
            Some(Self(rounded as i32))
        }
    }

    /// Checked division; `None` on division by zero or overflow.
    pub fn checked_div(self, rhs: Self) -> Option<Self> {
        if rhs.0 == 0 {
            return None;
        }
        let wide = ((self.0 as i64) << FRAC_BITS) / rhs.0 as i64;
        if wide > i32::MAX as i64 || wide < i32::MIN as i64 {
            None
        } else {
            Some(Self(wide as i32))
        }
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication (64-bit intermediate, round to nearest).
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = self.0 as i64 * rhs.0 as i64;
        let rounded = round_shift(wide, FRAC_BITS);
        Self(clamp_i64(rounded))
    }

    /// Saturating division. Division by zero saturates toward the sign of
    /// the dividend (`MAX` for non-negative, `MIN` for negative), which is
    /// how a guarded hardware divider would clamp.
    pub fn saturating_div(self, rhs: Self) -> Self {
        if rhs.0 == 0 {
            return if self.0 >= 0 { Self::MAX } else { Self::MIN };
        }
        let wide = ((self.0 as i64) << FRAC_BITS) / rhs.0 as i64;
        Self(clamp_i64(wide))
    }

    /// Wrapping (two's-complement) addition, as an unguarded adder would
    /// produce.
    #[inline]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        Self(self.0.wrapping_add(rhs.0))
    }

    /// Wrapping subtraction.
    #[inline]
    pub fn wrapping_sub(self, rhs: Self) -> Self {
        Self(self.0.wrapping_sub(rhs.0))
    }

    /// Wrapping multiplication: the 64-bit product is truncated to the low
    /// 32 bits after the fractional shift, as an unguarded multiplier would.
    pub fn wrapping_mul(self, rhs: Self) -> Self {
        let wide = self.0 as i64 * rhs.0 as i64;
        Self(round_shift(wide, FRAC_BITS) as i32)
    }

    /// Addition under an explicit [`OverflowPolicy`].
    #[inline]
    pub fn add_with(self, rhs: Self, policy: OverflowPolicy) -> Self {
        match policy {
            OverflowPolicy::Saturate => self.saturating_add(rhs),
            OverflowPolicy::Wrap => self.wrapping_add(rhs),
        }
    }

    /// Multiplication under an explicit [`OverflowPolicy`].
    #[inline]
    pub fn mul_with(self, rhs: Self, policy: OverflowPolicy) -> Self {
        match policy {
            OverflowPolicy::Saturate => self.saturating_mul(rhs),
            OverflowPolicy::Wrap => self.wrapping_mul(rhs),
        }
    }

    /// Absolute value (saturating: `|MIN|` clamps to `MAX`).
    #[inline]
    pub fn abs(self) -> Self {
        if self.0 == i32::MIN {
            Self::MAX
        } else {
            Self(self.0.abs())
        }
    }

    /// Returns `-1.0`, `0.0` or `1.0` according to the sign.
    pub fn signum(self) -> Self {
        match self.0.cmp(&0) {
            std::cmp::Ordering::Less => Self::NEG_ONE,
            std::cmp::Ordering::Equal => Self::ZERO,
            std::cmp::Ordering::Greater => Self::ONE,
        }
    }

    /// The smaller of two values.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two values.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Clamps into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "clamp: lo > hi");
        self.max(lo).min(hi)
    }

    /// The hardware ReLU: zero if the sign bit is set, unchanged otherwise.
    ///
    /// ```
    /// use klinq_fixed::Q16_16;
    /// assert_eq!(Q16_16::from_f64(-3.0).relu(), Q16_16::ZERO);
    /// assert_eq!(Q16_16::from_f64(3.0).relu().to_f64(), 3.0);
    /// ```
    #[inline]
    pub fn relu(self) -> Self {
        if self.is_negative() {
            Self::ZERO
        } else {
            self
        }
    }
}

/// Shift right by `bits` with round-to-nearest (ties away from zero),
/// matching a DSP post-adder rounding stage.
#[inline]
fn round_shift(v: i64, bits: u32) -> i64 {
    let half = 1i64 << (bits - 1);
    if v >= 0 {
        (v + half) >> bits
    } else {
        -((-v + half) >> bits)
    }
}

#[inline]
fn clamp_i64(v: i64) -> i32 {
    if v > i32::MAX as i64 {
        i32::MAX
    } else if v < i32::MIN as i64 {
        i32::MIN
    } else {
        v as i32
    }
}

impl Add for Q16_16 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl Sub for Q16_16 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl Mul for Q16_16 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
}

impl Div for Q16_16 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self.saturating_div(rhs)
    }
}

impl Neg for Q16_16 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self(0).saturating_sub(self)
    }
}

impl AddAssign for Q16_16 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Q16_16 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Q16_16 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

/// Arithmetic shift right: division by `2^rhs`, rounding toward negative
/// infinity exactly as the FPGA barrel shifter does.
impl Shr<u32> for Q16_16 {
    type Output = Self;
    #[inline]
    fn shr(self, rhs: u32) -> Self {
        Self(self.0 >> rhs.min(31))
    }
}

/// Shift left: multiplication by `2^rhs` with saturation.
impl Shl<u32> for Q16_16 {
    type Output = Self;
    fn shl(self, rhs: u32) -> Self {
        let wide = (self.0 as i64) << rhs.min(62);
        Self(clamp_i64(wide))
    }
}

impl Sum for Q16_16 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, x| acc + x)
    }
}

impl From<i16> for Q16_16 {
    fn from(v: i16) -> Self {
        Self::from_int(v)
    }
}

impl fmt::Display for Q16_16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Show enough digits to round-trip the 2^-16 resolution.
        write!(f, "{:.6}", self.to_f64())
    }
}

impl fmt::LowerHex for Q16_16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&(self.0 as u32), f)
    }
}

impl fmt::UpperHex for Q16_16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&(self.0 as u32), f)
    }
}

impl fmt::Binary for Q16_16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&(self.0 as u32), f)
    }
}

impl fmt::Octal for Q16_16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&(self.0 as u32), f)
    }
}

/// Error returned when parsing a [`Q16_16`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFixedError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    InvalidFloat,
    OutOfRange,
}

impl fmt::Display for ParseFixedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::InvalidFloat => write!(f, "invalid fixed-point literal"),
            ParseErrorKind::OutOfRange => write!(f, "value out of Q16.16 range"),
        }
    }
}

impl std::error::Error for ParseFixedError {}

impl FromStr for Q16_16 {
    type Err = ParseFixedError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let v: f64 = s.parse().map_err(|_| ParseFixedError {
            kind: ParseErrorKind::InvalidFloat,
        })?;
        if !v.is_finite() || !(-32768.0..32768.0).contains(&v) {
            return Err(ParseFixedError {
                kind: ParseErrorKind::OutOfRange,
            });
        }
        Ok(Self::from_f64(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(Q16_16::ZERO.to_f64(), 0.0);
        assert_eq!(Q16_16::ONE.to_f64(), 1.0);
        assert_eq!(Q16_16::NEG_ONE.to_f64(), -1.0);
        assert_eq!(Q16_16::HALF.to_f64(), 0.5);
        assert_eq!(Q16_16::MIN.to_f64(), -32768.0);
        assert!((Q16_16::MAX.to_f64() - 32768.0).abs() < 1e-4);
    }

    #[test]
    fn f64_round_trip_is_exact_on_grid() {
        for raw in [-65536, -1, 0, 1, 32768, 65536, 123_456_789] {
            let q = Q16_16::from_bits(raw);
            assert_eq!(Q16_16::from_f64(q.to_f64()), q);
        }
    }

    #[test]
    fn from_f64_rounds_to_nearest() {
        // 2^-17 rounds up to one ULP (ties away from zero).
        let q = Q16_16::from_f64(1.0 / 131072.0);
        assert_eq!(q, Q16_16::EPSILON);
        let q = Q16_16::from_f64(-1.0 / 131072.0);
        assert_eq!(q, Q16_16::from_bits(-1));
    }

    #[test]
    fn from_f64_saturates_and_handles_nan() {
        assert_eq!(Q16_16::from_f64(1e9), Q16_16::MAX);
        assert_eq!(Q16_16::from_f64(-1e9), Q16_16::MIN);
        assert_eq!(Q16_16::from_f64(f64::NAN), Q16_16::ZERO);
        assert_eq!(Q16_16::from_f64(f64::INFINITY), Q16_16::MAX);
        assert_eq!(Q16_16::from_f64(f64::NEG_INFINITY), Q16_16::MIN);
    }

    #[test]
    fn multiplication_matches_float_reference() {
        let cases = [
            (1.5, -0.25, -0.375),
            (100.0, 3.0, 300.0),
            (0.5, 0.5, 0.25),
            (-2.0, -2.0, 4.0),
        ];
        for (a, b, want) in cases {
            let got = (Q16_16::from_f64(a) * Q16_16::from_f64(b)).to_f64();
            assert!((got - want).abs() < 1e-4, "{a} * {b} = {got}, want {want}");
        }
    }

    #[test]
    fn multiplication_saturates() {
        let big = Q16_16::from_f64(30000.0);
        assert_eq!(big * big, Q16_16::MAX);
        assert_eq!(big * -big, Q16_16::MIN);
    }

    #[test]
    fn checked_ops_detect_overflow() {
        assert_eq!(Q16_16::MAX.checked_add(Q16_16::EPSILON), None);
        assert_eq!(Q16_16::MIN.checked_sub(Q16_16::EPSILON), None);
        let big = Q16_16::from_f64(20000.0);
        assert_eq!(big.checked_mul(big), None);
        assert!(Q16_16::ONE.checked_mul(Q16_16::ONE).is_some());
        assert_eq!(Q16_16::ONE.checked_div(Q16_16::ZERO), None);
    }

    #[test]
    fn wrapping_mul_wraps() {
        let big = Q16_16::from_f64(30000.0);
        let wrapped = big.wrapping_mul(big);
        // 30000^2 = 9e8, which exceeds 32767 and wraps; just confirm it did
        // not saturate and differs from the saturating result.
        assert_ne!(wrapped, Q16_16::MAX);
    }

    #[test]
    fn division_matches_float_reference() {
        let a = Q16_16::from_f64(7.0);
        let b = Q16_16::from_f64(2.0);
        assert_eq!((a / b).to_f64(), 3.5);
        let c = Q16_16::from_f64(1.0) / Q16_16::from_f64(3.0);
        assert!((c.to_f64() - 1.0 / 3.0).abs() < 1e-4);
    }

    #[test]
    fn division_by_zero_saturates_by_sign() {
        assert_eq!(Q16_16::ONE / Q16_16::ZERO, Q16_16::MAX);
        assert_eq!(Q16_16::NEG_ONE / Q16_16::ZERO, Q16_16::MIN);
        assert_eq!(Q16_16::ZERO / Q16_16::ZERO, Q16_16::MAX);
    }

    #[test]
    fn shifts_are_pow2_mul_div() {
        let x = Q16_16::from_f64(10.0);
        assert_eq!((x >> 1).to_f64(), 5.0);
        assert_eq!((x >> 2).to_f64(), 2.5);
        assert_eq!((x << 1).to_f64(), 20.0);
        // Arithmetic shift rounds toward -inf for negatives.
        let y = Q16_16::from_bits(-3);
        assert_eq!((y >> 1).to_bits(), -2);
    }

    #[test]
    fn shift_left_saturates() {
        let x = Q16_16::from_f64(20000.0);
        assert_eq!(x << 4, Q16_16::MAX);
        assert_eq!((-x) << 4, Q16_16::MIN);
    }

    #[test]
    fn relu_checks_sign_bit_only() {
        assert_eq!(Q16_16::from_bits(-1).relu(), Q16_16::ZERO);
        assert_eq!(Q16_16::from_bits(1).relu(), Q16_16::from_bits(1));
        assert_eq!(Q16_16::ZERO.relu(), Q16_16::ZERO);
        assert_eq!(Q16_16::MIN.relu(), Q16_16::ZERO);
        assert_eq!(Q16_16::MAX.relu(), Q16_16::MAX);
    }

    #[test]
    fn abs_and_signum() {
        assert_eq!(Q16_16::from_f64(-4.5).abs().to_f64(), 4.5);
        assert_eq!(Q16_16::MIN.abs(), Q16_16::MAX); // saturating
        assert_eq!(Q16_16::from_f64(-3.0).signum(), Q16_16::NEG_ONE);
        assert_eq!(Q16_16::ZERO.signum(), Q16_16::ZERO);
        assert_eq!(Q16_16::from_f64(9.0).signum(), Q16_16::ONE);
    }

    #[test]
    fn neg_of_min_saturates() {
        assert_eq!(-Q16_16::MIN, Q16_16::MAX);
    }

    #[test]
    fn ordering_matches_value_ordering() {
        let mut vals = [
            Q16_16::from_f64(1.5),
            Q16_16::from_f64(-2.0),
            Q16_16::ZERO,
            Q16_16::MAX,
            Q16_16::MIN,
        ];
        vals.sort();
        let floats: Vec<f64> = vals.iter().map(|q| q.to_f64()).collect();
        let mut sorted = floats.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(floats, sorted);
    }

    #[test]
    fn sum_saturates_instead_of_panicking() {
        let total: Q16_16 = std::iter::repeat_n(Q16_16::from_f64(30000.0), 4).sum();
        assert_eq!(total, Q16_16::MAX);
    }

    #[test]
    fn display_and_hex_formatting() {
        let q = Q16_16::from_f64(1.5);
        assert_eq!(format!("{q}"), "1.500000");
        assert_eq!(format!("{q:x}"), "18000");
        assert_eq!(format!("{:x}", Q16_16::from_bits(-1)), "ffffffff");
        assert!(!format!("{:b}", Q16_16::ZERO).is_empty());
    }

    #[test]
    fn parse_from_str() {
        assert_eq!("1.5".parse::<Q16_16>().unwrap(), Q16_16::from_f64(1.5));
        assert_eq!(
            "-0.25".parse::<Q16_16>().unwrap(),
            Q16_16::from_f64(-0.25)
        );
        assert!("abc".parse::<Q16_16>().is_err());
        assert!("1e30".parse::<Q16_16>().is_err());
        let err = "99999".parse::<Q16_16>().unwrap_err();
        assert_eq!(err.to_string(), "value out of Q16.16 range");
    }

    #[test]
    fn clamp_works_and_policy_dispatch() {
        let x = Q16_16::from_f64(5.0);
        assert_eq!(
            x.clamp(Q16_16::ZERO, Q16_16::ONE),
            Q16_16::ONE
        );
        assert_eq!(
            Q16_16::MAX.add_with(Q16_16::ONE, OverflowPolicy::Saturate),
            Q16_16::MAX
        );
        assert_ne!(
            Q16_16::MAX.add_with(Q16_16::ONE, OverflowPolicy::Wrap),
            Q16_16::MAX
        );
    }

    #[test]
    #[should_panic(expected = "clamp: lo > hi")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Q16_16::ZERO.clamp(Q16_16::ONE, Q16_16::ZERO);
    }

    #[test]
    fn from_int_and_floor() {
        let q = Q16_16::from_int(-7);
        assert_eq!(q.to_f64(), -7.0);
        assert_eq!(q.floor_int(), -7);
        assert_eq!(Q16_16::from_f64(-7.5).floor_int(), -8);
        assert_eq!(Q16_16::from_f64(7.5).floor_int(), 7);
        assert_eq!(Q16_16::from(5i16), Q16_16::from_f64(5.0));
    }
}
