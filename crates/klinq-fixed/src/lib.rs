//! Q16.16 fixed-point arithmetic for the KLiNQ FPGA datapath model.
//!
//! The KLiNQ paper (DAC 2025) deploys its student networks on a Xilinx
//! ZCU216 using a 32-bit fixed-point representation with 16 integer and
//! 16 fractional bits. This crate provides a bit-exact software model of
//! that representation:
//!
//! - [`Q16_16`]: the number type, with checked / saturating / wrapping
//!   arithmetic so overflow behaviour can be modelled explicitly (the
//!   paper's activation layer "handles overflows to ensure correct
//!   functionality").
//! - [`shift`]: power-of-two approximation helpers. The paper replaces the
//!   normalization division `(x - xmin) / sigma` with an arithmetic shift by
//!   snapping `sigma` to the nearest power of two at training time.
//! - [`vector`]: wide-accumulator dot products, the software model of the
//!   DSP multiply / adder-tree reduction used in the fully connected layers.
//!
//! # Examples
//!
//! ```
//! use klinq_fixed::Q16_16;
//!
//! let a = Q16_16::from_f64(1.5);
//! let b = Q16_16::from_f64(-0.25);
//! assert_eq!((a * b).to_f64(), -0.375);
//! // Saturating behaviour at the representable boundary:
//! let big = Q16_16::MAX;
//! assert_eq!(big.saturating_add(Q16_16::ONE), Q16_16::MAX);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod q16;
pub mod shift;
pub mod vector;

pub use q16::{OverflowPolicy, ParseFixedError, Q16_16};
pub use shift::{nearest_pow2_exponent, shift_divide, Pow2Divisor};
pub use vector::{dot, dot_wide, dot_wide_x4, WideAccumulator};
