//! Wide-accumulator dot products: the software model of the FPGA MAC path.
//!
//! In the KLiNQ datapath each neuron multiplies its inputs by weights in DSP
//! blocks (full-precision products) and reduces them through an adder tree
//! together with the bias. The products of two Q16.16 numbers are Q32.32
//! values held in 64-bit accumulators; only the final sum is renormalized
//! (shifted back to Q16.16) and range-checked. This matches hardware
//! behaviour where intermediate precision is wider than the storage format.

use crate::q16::{Q16_16, FRAC_BITS};
use serde::{Deserialize, Serialize};

/// A Q32.32 accumulator (i64) for summing products of [`Q16_16`] values.
///
/// # Examples
///
/// ```
/// use klinq_fixed::{Q16_16, WideAccumulator};
/// let mut acc = WideAccumulator::new();
/// acc.mac(Q16_16::from_f64(2.0), Q16_16::from_f64(3.0));
/// acc.add_fixed(Q16_16::from_f64(0.5)); // bias
/// assert_eq!(acc.to_fixed_saturating().to_f64(), 6.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WideAccumulator(i64);

impl WideAccumulator {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self(0)
    }

    /// Creates an accumulator pre-loaded with a Q16.16 value (e.g. a bias).
    pub fn from_fixed(q: Q16_16) -> Self {
        Self((q.to_bits() as i64) << FRAC_BITS)
    }

    /// Multiply-accumulate: adds the full-precision product `a * b`.
    ///
    /// Uses wrapping i64 addition; a Q32.32 accumulator overflows only after
    /// ~2^31 worst-case products, far beyond any layer width in this system,
    /// but tests exercise the boundary explicitly.
    #[inline]
    pub fn mac(&mut self, a: Q16_16, b: Q16_16) {
        self.0 = self
            .0
            .wrapping_add(a.to_bits() as i64 * b.to_bits() as i64);
    }

    /// Adds a Q16.16 value (promoted to Q32.32).
    #[inline]
    pub fn add_fixed(&mut self, q: Q16_16) {
        self.0 = self.0.wrapping_add((q.to_bits() as i64) << FRAC_BITS);
    }

    /// Merges another accumulator (adder-tree node join).
    #[inline]
    pub fn merge(&mut self, other: WideAccumulator) {
        self.0 = self.0.wrapping_add(other.0);
    }

    /// The raw Q32.32 bits.
    pub fn to_raw(self) -> i64 {
        self.0
    }

    /// Renormalizes to Q16.16 with saturation (the hardware write-back).
    pub fn to_fixed_saturating(self) -> Q16_16 {
        let shifted = round_shift_i64(self.0, FRAC_BITS);
        if shifted > i32::MAX as i64 {
            Q16_16::MAX
        } else if shifted < i32::MIN as i64 {
            Q16_16::MIN
        } else {
            Q16_16::from_bits(shifted as i32)
        }
    }

    /// Renormalizes to Q16.16, reporting overflow instead of clamping.
    pub fn to_fixed_checked(self) -> Option<Q16_16> {
        let shifted = round_shift_i64(self.0, FRAC_BITS);
        if shifted > i32::MAX as i64 || shifted < i32::MIN as i64 {
            None
        } else {
            Some(Q16_16::from_bits(shifted as i32))
        }
    }

    /// Value as f64 (exact for |raw| < 2^53).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1u64 << (2 * FRAC_BITS)) as f64
    }
}

/// Round-to-nearest arithmetic right shift, ties away from zero —
/// branchless (sign-mask magnitude trick) so the per-neuron write-backs
/// of the batched kernels never mispredict on mixed-sign accumulators.
/// Bit-for-bit identical to the branching
/// `if v >= 0 { (v + half) >> bits } else { -((-v + half) >> bits) }`.
#[inline]
fn round_shift_i64(v: i64, bits: u32) -> i64 {
    let half = 1i64 << (bits - 1);
    let sign = v >> 63; // 0 for non-negative, -1 for negative
    let magnitude = (v ^ sign).wrapping_sub(sign);
    let rounded = magnitude.wrapping_add(half) >> bits;
    (rounded ^ sign).wrapping_sub(sign)
}

/// Full-precision dot product of two fixed-point slices, returned as a wide
/// accumulator (no intermediate rounding — what the DSP + adder tree
/// computes before write-back).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use klinq_fixed::{dot_wide, Q16_16};
/// let a = [Q16_16::ONE, Q16_16::from_f64(2.0)];
/// let b = [Q16_16::from_f64(3.0), Q16_16::from_f64(4.0)];
/// assert_eq!(dot_wide(&a, &b).to_fixed_saturating().to_f64(), 11.0);
/// ```
pub fn dot_wide(a: &[Q16_16], b: &[Q16_16]) -> WideAccumulator {
    assert_eq!(
        a.len(),
        b.len(),
        "dot_wide: length mismatch ({} vs {})",
        a.len(),
        b.len()
    );
    let mut acc = WideAccumulator::new();
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc.mac(x, y);
    }
    acc
}

/// Dot product renormalized to Q16.16 with saturation.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[Q16_16], b: &[Q16_16]) -> Q16_16 {
    dot_wide(a, b).to_fixed_saturating()
}

/// Four lane-interleaved wide dot products sharing one coefficient vector:
/// the blocked MAC kernel of the batched Q16.16 datapath.
///
/// `lanes` holds four interleaved operand vectors (element `k` of lane `l`
/// at `lanes[k * 4 + l]`); the return value's lane `l` equals
/// [`dot_wide`] of `coeffs` with that lane's de-interleaved vector,
/// **bitwise** — the accumulators are wrapping `i64`, so the blocked
/// evaluation order cannot change a single bit. The four independent
/// accumulator chains overlap the multiply-add latency that serializes a
/// single wide dot, and the interleaved layout turns the lane loads into
/// one contiguous block per coefficient.
///
/// # Panics
///
/// Panics if `lanes.len() != coeffs.len() * 4`.
///
/// # Examples
///
/// ```
/// use klinq_fixed::{dot_wide, dot_wide_x4, Q16_16};
/// let coeffs: Vec<Q16_16> = (0..6).map(|k| Q16_16::from_f64(k as f64 * 0.5)).collect();
/// let lanes: Vec<Q16_16> = (0..24).map(|v| Q16_16::from_f64(v as f64 * 0.25)).collect();
/// let acc = dot_wide_x4(&coeffs, &lanes);
/// let lane2: Vec<Q16_16> = (0..6).map(|k| lanes[k * 4 + 2]).collect();
/// assert_eq!(acc[2], dot_wide(&coeffs, &lane2));
/// ```
pub fn dot_wide_x4(coeffs: &[Q16_16], lanes: &[Q16_16]) -> [WideAccumulator; 4] {
    assert_eq!(
        lanes.len(),
        coeffs.len() * 4,
        "dot_wide_x4: interleaved length mismatch ({} vs {} * 4)",
        lanes.len(),
        coeffs.len()
    );
    let mut acc = [WideAccumulator::new(); 4];
    for (&c, sample) in coeffs.iter().zip(lanes.chunks_exact(4)) {
        acc[0].mac(c, sample[0]);
        acc[1].mac(c, sample[1]);
        acc[2].mac(c, sample[2]);
        acc[3].mac(c, sample[3]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(v: f64) -> Q16_16 {
        Q16_16::from_f64(v)
    }

    #[test]
    fn empty_dot_is_zero() {
        assert_eq!(dot(&[], &[]), Q16_16::ZERO);
    }

    #[test]
    fn dot_matches_float_reference() {
        let a: Vec<Q16_16> = [1.0, -2.5, 0.125, 7.0].iter().map(|&v| q(v)).collect();
        let b: Vec<Q16_16> = [0.5, 4.0, -8.0, 0.25].iter().map(|&v| q(v)).collect();
        let want: f64 = 1.0 * 0.5 + (-2.5) * 4.0 + 0.125 * (-8.0) + 7.0 * 0.25;
        assert!((dot(&a, &b).to_f64() - want).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[Q16_16::ONE], &[]);
    }

    #[test]
    fn no_intermediate_rounding() {
        // Sum of many tiny products: each product underflows Q16.16 on its
        // own (EPSILON * EPSILON = 2^-32), but the wide accumulator keeps
        // full precision so 2^16 of them sum to exactly one EPSILON.
        let n = 1 << 16;
        let a = vec![Q16_16::EPSILON; n];
        let acc = dot_wide(&a, &a);
        assert_eq!(acc.to_fixed_saturating(), Q16_16::EPSILON);
        // Naive per-product rounding would give zero:
        let naive: Q16_16 = a.iter().map(|&x| x * x).sum();
        assert_eq!(naive, Q16_16::ZERO);
    }

    #[test]
    fn dot_wide_x4_matches_per_lane_dot_wide_bitwise() {
        for n in [0usize, 1, 3, 8, 65] {
            let coeffs: Vec<Q16_16> = (0..n).map(|k| q(k as f64 * 0.31 - 4.0)).collect();
            let lanes: Vec<Q16_16> = (0..n * 4)
                .map(|v| q((v as f64 * 0.177).sin() * 30.0))
                .collect();
            let acc = dot_wide_x4(&coeffs, &lanes);
            for l in 0..4 {
                let lane: Vec<Q16_16> = (0..n).map(|k| lanes[k * 4 + l]).collect();
                assert_eq!(acc[l], dot_wide(&coeffs, &lane), "lane {l}, n {n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "interleaved length mismatch")]
    fn dot_wide_x4_rejects_bad_length() {
        let _ = dot_wide_x4(&[Q16_16::ONE; 2], &[Q16_16::ONE; 7]);
    }

    #[test]
    fn accumulator_bias_preload() {
        let acc = WideAccumulator::from_fixed(q(-3.5));
        assert_eq!(acc.to_fixed_saturating(), q(-3.5));
        assert_eq!(acc.to_f64(), -3.5);
    }

    #[test]
    fn saturating_writeback_clamps() {
        let mut acc = WideAccumulator::new();
        for _ in 0..10 {
            acc.mac(q(30000.0), q(30000.0));
        }
        assert_eq!(acc.to_fixed_saturating(), Q16_16::MAX);
        assert_eq!(acc.to_fixed_checked(), None);
        let mut neg = WideAccumulator::new();
        for _ in 0..10 {
            neg.mac(q(30000.0), q(-30000.0));
        }
        assert_eq!(neg.to_fixed_saturating(), Q16_16::MIN);
    }

    #[test]
    fn merge_equals_combined_sum() {
        let a: Vec<Q16_16> = (0..16).map(|i| q(i as f64 * 0.3 - 2.0)).collect();
        let b: Vec<Q16_16> = (0..16).map(|i| q(1.7 - i as f64 * 0.11)).collect();
        let full = dot_wide(&a, &b);
        let mut left = dot_wide(&a[..8], &b[..8]);
        let right = dot_wide(&a[8..], &b[8..]);
        left.merge(right);
        assert_eq!(left, full);
    }

    #[test]
    fn checked_writeback_in_range() {
        let mut acc = WideAccumulator::new();
        acc.mac(q(100.0), q(2.0));
        assert_eq!(acc.to_fixed_checked().unwrap().to_f64(), 200.0);
    }

    #[test]
    fn negative_rounding_symmetry() {
        // -1.5 * EPSILON in the accumulator should round away from zero,
        // mirroring the positive case.
        let mut pos = WideAccumulator::new();
        pos.mac(Q16_16::EPSILON, q(1.5));
        let mut neg = WideAccumulator::new();
        neg.mac(Q16_16::EPSILON, q(-1.5));
        assert_eq!(
            pos.to_fixed_saturating().to_bits(),
            -neg.to_fixed_saturating().to_bits()
        );
    }
}
