//! Table III-style design reports: per-component resources and latency.

use crate::engine::FpgaDiscriminator;
use crate::latency::mf_stages;
use crate::resources::{mf_resources, Resources, Utilization, ZCU216_CAPACITY};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One row of the component report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentRow {
    /// Component name (e.g. "MF", "AVG&NORM (Q1,4,5)").
    pub name: String,
    /// Estimated fabric resources.
    pub resources: Resources,
    /// Utilization against the ZCU216.
    pub utilization: Utilization,
    /// Pipeline latency in stages.
    pub stages: u32,
}

/// A complete design report for a multi-qubit KLiNQ deployment,
/// mirroring the paper's Table III structure: one shared MF row plus
/// per-configuration AVG&NORM and network rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignReport {
    /// Component rows (shared resources first).
    pub rows: Vec<ComponentRow>,
    /// Total resources of the full design (MF once, per-qubit units
    /// multiplied by their instance counts).
    pub total: Resources,
    /// Per-configuration end-to-end latency in stages. At the paper's
    /// design point (1 µs traces, the Fig. 2 architectures) all entries
    /// are equal — the "coincidentally the same" 32 ns.
    pub per_config_stages: Vec<(String, u32)>,
}

impl DesignReport {
    /// Builds the report from one compiled discriminator per qubit, with
    /// `design_samples` per channel feeding the shared MF unit.
    ///
    /// # Panics
    ///
    /// Panics if `discriminators` is empty.
    pub fn from_design(discriminators: &[(String, &FpgaDiscriminator, usize)], design_samples: usize) -> Self {
        assert!(
            !discriminators.is_empty(),
            "a design needs at least one discriminator"
        );
        let mf_res = mf_resources(2 * design_samples);
        let mut rows = vec![ComponentRow {
            name: "MF (shared)".to_string(),
            resources: mf_res,
            utilization: mf_res.utilization(&ZCU216_CAPACITY),
            stages: mf_stages(design_samples),
        }];
        let mut total = mf_res;
        let mut per_config_stages = Vec::with_capacity(discriminators.len());
        for (name, hw, count) in discriminators {
            let avg = hw.avg_norm_resources();
            let lat = hw.latency();
            rows.push(ComponentRow {
                name: format!("AVG&NORM ({name})"),
                resources: avg,
                utilization: avg.utilization(&ZCU216_CAPACITY),
                stages: lat.avg_norm,
            });
            let net = hw.network_resources();
            rows.push(ComponentRow {
                name: format!("Network ({name})"),
                resources: net,
                utilization: net.utilization(&ZCU216_CAPACITY),
                stages: lat.network,
            });
            total += avg.times(*count as u64);
            total += net.times(*count as u64);
            per_config_stages.push((name.clone(), lat.total_stages()));
        }
        Self {
            rows,
            total,
            per_config_stages,
        }
    }

    /// `true` if every configuration has the same end-to-end latency (the
    /// paper's design-point property).
    pub fn latencies_equal(&self) -> bool {
        self.per_config_stages
            .windows(2)
            .all(|w| w[0].1 == w[1].1)
    }

    /// The worst-case (maximum) discrimination latency across configs.
    pub fn discrimination_stages(&self) -> u32 {
        self.per_config_stages
            .iter()
            .map(|&(_, s)| s)
            .max()
            .expect("report is never empty")
    }
}

impl fmt::Display for DesignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<22} {:>9} {:>9} {:>6} {:>8} {:>8} {:>7} {:>7}",
            "Component", "LUT", "FF", "DSP", "LUT%", "FF%", "DSP%", "Stages"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<22} {:>9} {:>9} {:>6} {:>7.2}% {:>7.2}% {:>6.2}% {:>7}",
                row.name,
                row.resources.lut,
                row.resources.ff,
                row.resources.dsp,
                row.utilization.lut_pct,
                row.utilization.ff_pct,
                row.utilization.dsp_pct,
                row.stages
            )?;
        }
        let u = self.total.utilization(&ZCU216_CAPACITY);
        writeln!(
            f,
            "{:<22} {:>9} {:>9} {:>6} {:>7.2}% {:>7.2}% {:>6.2}%",
            "TOTAL (5-qubit)", self.total.lut, self.total.ff, self.total.dsp,
            u.lut_pct, u.ff_pct, u.dsp_pct
        )?;
        for (name, stages) in &self.per_config_stages {
            writeln!(f, "discrimination latency ({name}): {stages} stages")?;
        }
        write!(
            f,
            "configurations {} in end-to-end latency",
            if self.latencies_equal() { "agree" } else { "differ" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klinq_dsp::{FeaturePipeline, FeatureSpec};
    use klinq_nn::network::FnnBuilder;
    use klinq_nn::Activation;

    fn pipeline(spec: FeatureSpec, len: usize) -> FeaturePipeline {
        let make = |level: f32| -> Vec<(Vec<f32>, Vec<f32>)> {
            (0..16)
                .map(|k| {
                    let jit = 0.05 * ((k % 5) as f32);
                    (vec![level + jit; len], vec![-level; len])
                })
                .collect()
        };
        let g = make(1.0);
        let e = make(-1.0);
        let gr: Vec<(&[f32], &[f32])> = g.iter().map(|(i, q)| (i.as_slice(), q.as_slice())).collect();
        let er: Vec<(&[f32], &[f32])> = e.iter().map(|(i, q)| (i.as_slice(), q.as_slice())).collect();
        FeaturePipeline::fit(spec, &gr, &er).unwrap()
    }

    fn student(input: usize) -> klinq_nn::Fnn {
        FnnBuilder::new(input)
            .hidden(16, Activation::Relu)
            .hidden(8, Activation::Relu)
            .output(1)
            .seed(0)
            .build()
    }

    #[test]
    fn five_qubit_report_mirrors_table3() {
        let pipe_a = pipeline(FeatureSpec::fnn_a(), 500);
        let pipe_b = pipeline(FeatureSpec::fnn_b(), 500);
        let hw_a = FpgaDiscriminator::compile(&student(31), &pipe_a, 500).unwrap();
        let hw_b = FpgaDiscriminator::compile(&student(201), &pipe_b, 500).unwrap();
        let report = DesignReport::from_design(
            &[
                ("Q1,4,5".to_string(), &hw_a, 3),
                ("Q2,3".to_string(), &hw_b, 2),
            ],
            500,
        );
        // One MF row + 2 rows per configuration.
        assert_eq!(report.rows.len(), 5);
        // Paper's structural facts: AVG&NORM 9 vs 6 stages, equal totals.
        assert_eq!(report.rows[1].stages, 9);
        assert_eq!(report.rows[3].stages, 6);
        assert_eq!(report.rows[0].resources.dsp, 375);
        // Total accounts for instance counts.
        let manual = report.rows[0].resources
            + report.rows[1].resources.times(3)
            + report.rows[2].resources.times(3)
            + report.rows[3].resources.times(2)
            + report.rows[4].resources.times(2);
        assert_eq!(report.total, manual);
        let rendered = report.to_string();
        assert!(rendered.contains("MF (shared)"), "{rendered}");
        assert!(rendered.contains("TOTAL"), "{rendered}");
    }

    #[test]
    #[should_panic(expected = "at least one discriminator")]
    fn empty_design_rejected() {
        let _ = DesignReport::from_design(&[], 500);
    }
}
