//! The per-qubit FPGA discriminator: a bit-accurate Q16.16 datapath.
//!
//! [`FpgaDiscriminator::compile`] takes a trained student network plus its
//! fitted feature pipeline and produces the deployable fixed-point design:
//! quantized matched-filter envelopes, averaging unit, shift-based
//! normalizer (σ snapped to powers of two) and quantized dense layers.
//! Inference then follows exactly the hardware dataflow of the paper's
//! Fig. 3: average + normalize in parallel with the MF MAC, concatenate,
//! and run the fully connected pipeline to a single sign-checked logit.

use crate::latency::{avg_norm_stages, mf_stages, network_stages, Clock, LatencyReport};
use crate::quant::QuantizedDense;
use crate::resources::{avg_norm_resources, network_resources, Resources};
use klinq_dsp::{FeaturePipeline, TraceBatch};
use klinq_fixed::{dot_wide, dot_wide_x4, shift_divide, Q16_16, WideAccumulator};
use klinq_nn::{Activation, Fnn};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error compiling a trained model onto the FPGA datapath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Network input dimension differs from the pipeline's feature count.
    DimensionMismatch {
        /// Features the pipeline produces.
        pipeline: usize,
        /// Inputs the network expects.
        network: usize,
    },
    /// The network uses an activation with no hardware mapping.
    UnsupportedActivation,
    /// The network has more than one output (the discriminator emits one
    /// logit).
    MultiOutput(usize),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { pipeline, network } => write!(
                f,
                "pipeline produces {pipeline} features but the network expects {network}"
            ),
            Self::UnsupportedActivation => {
                write!(f, "only ReLU and identity activations map to the datapath")
            }
            Self::MultiOutput(n) => write!(f, "expected a single-logit network, got {n} outputs"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Detailed result of one hardware inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceDetail {
    /// `true` if the qubit was read as |1⟩ (logit sign bit clear and
    /// non-zero).
    pub excited: bool,
    /// The raw fixed-point logit.
    pub logit: Q16_16,
    /// Neuron accumulators that overflowed (and saturated) during this
    /// inference — nonzero values indicate the normalization failed to
    /// keep the dynamic range in check.
    pub overflow_count: usize,
}

/// Reusable fixed-point buffers for allocation-free hardware inference
/// ([`FpgaDiscriminator::infer_with`] /
/// [`FpgaDiscriminator::infer_detailed_with`]).
///
/// One scratch serves any number of compiled designs: buffers grow to the
/// largest trace/layer seen and are reused afterwards, so the batched
/// Q16.16 serving path performs zero heap allocations after warmup.
#[derive(Debug, Clone, Default)]
pub struct HwScratch {
    i_q: Vec<Q16_16>,
    q_q: Vec<Q16_16>,
    features: Vec<Q16_16>,
    work: Vec<Q16_16>,
}

/// Reusable fixed-point buffers for the **batched** Q16.16 datapath
/// ([`FpgaDiscriminator::infer_batch_with`]): the quantized SoA trace
/// block and front-end features in the same `sample × 4` interleaving as
/// [`TraceBatch`], plus the per-lane contiguous buffers the fully
/// connected stage ping-pongs through.
#[derive(Debug, Clone, Default)]
pub struct HwBatchScratch {
    i_q: Vec<Q16_16>,
    q_q: Vec<Q16_16>,
    features: Vec<Q16_16>,
    /// The four de-interleaved feature vectors, lane-contiguous
    /// (normalization scatters into this; see `infer_batch_with`).
    lanes: Vec<Q16_16>,
    work: Vec<Q16_16>,
}

impl HwBatchScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl HwScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// A compiled per-qubit discriminator, bit-accurate to the FPGA design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaDiscriminator {
    outputs_per_channel: usize,
    design_group: usize,
    design_samples: usize,
    mf_env_i: Vec<Q16_16>,
    mf_env_q: Vec<Q16_16>,
    norm_min: Vec<Q16_16>,
    norm_exp: Vec<i32>,
    layers: Vec<QuantizedDense>,
    clock: Clock,
}

impl FpgaDiscriminator {
    /// Compiles a trained student and its feature pipeline for deployment
    /// at the given design trace length (`design_samples` per channel).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] on dimension mismatches, multi-output
    /// networks, or activations without a hardware mapping.
    pub fn compile(
        net: &Fnn,
        pipeline: &FeaturePipeline,
        design_samples: usize,
    ) -> Result<Self, CompileError> {
        if net.input_dim() != pipeline.input_dim() {
            return Err(CompileError::DimensionMismatch {
                pipeline: pipeline.input_dim(),
                network: net.input_dim(),
            });
        }
        if net.output_dim() != 1 {
            return Err(CompileError::MultiOutput(net.output_dim()));
        }
        if net
            .layers()
            .iter()
            .any(|l| l.activation() == Activation::Sigmoid)
        {
            return Err(CompileError::UnsupportedActivation);
        }
        let shift_norm = pipeline.normalizer().to_shift();
        let quantize = |xs: &[f32]| xs.iter().map(|&v| Q16_16::from_f32(v)).collect::<Vec<_>>();
        Ok(Self {
            outputs_per_channel: pipeline.spec().avg_outputs_per_channel,
            design_group: pipeline.averager().group_size(design_samples),
            design_samples,
            mf_env_i: quantize(pipeline.filter().i_filter().envelope()),
            mf_env_q: quantize(pipeline.filter().q_filter().envelope()),
            norm_min: quantize(shift_norm.mins()),
            norm_exp: shift_norm.exponents().to_vec(),
            layers: net.layers().iter().map(QuantizedDense::from_dense).collect(),
            clock: Clock::default(),
        })
    }

    /// Replaces the stage clock used in latency reports.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Feature dimension of the compiled design.
    pub fn input_dim(&self) -> usize {
        2 * self.outputs_per_channel + 1
    }

    /// Design-time averaging group size (fixes the AVG&NORM pipeline
    /// structure, hence its latency).
    pub fn design_group(&self) -> usize {
        self.design_group
    }

    /// Runs one inference on raw I/Q samples, returning only the state.
    ///
    /// # Panics
    ///
    /// Panics if the traces are shorter than the averager output count or
    /// differ in length.
    pub fn infer(&self, i: &[f32], q: &[f32]) -> bool {
        self.infer_detailed(i, q).excited
    }

    /// Runs one inference through reusable scratch buffers — the
    /// zero-allocation form of [`Self::infer`], bitwise-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if the traces are shorter than the averager output count or
    /// differ in length.
    pub fn infer_with(&self, i: &[f32], q: &[f32], scratch: &mut HwScratch) -> bool {
        self.infer_detailed_with(i, q, scratch).excited
    }

    /// Runs one inference with the full fixed-point detail.
    ///
    /// # Panics
    ///
    /// Panics if the traces are shorter than the averager output count or
    /// differ in length.
    pub fn infer_detailed(&self, i: &[f32], q: &[f32]) -> InferenceDetail {
        self.infer_detailed_with(i, q, &mut HwScratch::new())
    }

    /// Runs one detailed inference through reusable scratch buffers
    /// (zero-allocation form of [`Self::infer_detailed`],
    /// bitwise-identical to it).
    ///
    /// # Panics
    ///
    /// Panics if the traces are shorter than the averager output count or
    /// differ in length.
    pub fn infer_detailed_with(
        &self,
        i: &[f32],
        q: &[f32],
        scratch: &mut HwScratch,
    ) -> InferenceDetail {
        assert_eq!(i.len(), q.len(), "I and Q traces must have equal length");
        let m = self.outputs_per_channel;

        // ADC quantization of the raw samples.
        scratch.i_q.clear();
        scratch.i_q.extend(i.iter().map(|&v| Q16_16::from_f32(v)));
        scratch.q_q.clear();
        scratch.q_q.extend(q.iter().map(|&v| Q16_16::from_f32(v)));

        // Averaging unit: adder tree per group, then shift (power-of-two
        // group) or reciprocal multiply.
        scratch.features.clear();
        scratch.features.resize(2 * m + 1, Q16_16::ZERO);
        let (avg_i, rest) = scratch.features.split_at_mut(m);
        let (avg_q, mf_slot) = rest.split_at_mut(m);
        self.average_into(&scratch.i_q, avg_i);
        self.average_into(&scratch.q_q, avg_q);

        // Matched-filter MAC over the available envelope prefix.
        let n_i = scratch.i_q.len().min(self.mf_env_i.len());
        let n_q = scratch.q_q.len().min(self.mf_env_q.len());
        let mut mf_acc = dot_wide(&self.mf_env_i[..n_i], &scratch.i_q[..n_i]);
        mf_acc.merge(dot_wide(&self.mf_env_q[..n_q], &scratch.q_q[..n_q]));
        mf_slot[0] = mf_acc.to_fixed_saturating();

        // Shift normalization: (x − min) >> e.
        for ((f, &mn), &e) in scratch
            .features
            .iter_mut()
            .zip(&self.norm_min)
            .zip(&self.norm_exp)
        {
            *f = shift_divide(f.saturating_sub(mn), e);
        }

        // Fully connected pipeline, ping-ponging the two scratch buffers.
        let mut overflow_count = 0;
        for layer in &self.layers {
            scratch.work.clear();
            scratch.work.resize(layer.output_dim(), Q16_16::ZERO);
            overflow_count += layer.forward(&scratch.features, &mut scratch.work);
            std::mem::swap(&mut scratch.features, &mut scratch.work);
        }
        let logit = scratch.features[0];
        InferenceDetail {
            excited: !logit.is_negative() && logit != Q16_16::ZERO,
            logit,
            overflow_count,
        }
    }

    /// Runs one inference per lane of a gathered [`TraceBatch`] — the
    /// fused, cache-blocked form of [`Self::infer_detailed_with`] for the
    /// batched serving path.
    ///
    /// The block's interleaved traces are quantized once into the scratch,
    /// then averaging, the matched-filter MAC, shift normalization and the
    /// fully connected pipeline all run four lanes side by side while the
    /// block is L1-resident. Every stage keeps wrapping-integer
    /// accumulators, so lane `l` is **bitwise-identical** to
    /// [`Self::infer_detailed`] on that lane's traces — including the
    /// logit and the overflow count.
    ///
    /// # Panics
    ///
    /// Panics if the batch's traces are shorter than the averager output
    /// count.
    pub fn infer_batch_with(
        &self,
        batch: &TraceBatch,
        scratch: &mut HwBatchScratch,
    ) -> [InferenceDetail; TraceBatch::LANES] {
        const L: usize = TraceBatch::LANES;
        let m = self.outputs_per_channel;

        // ADC quantization of the interleaved block (elementwise, so the
        // interleaving is transparent).
        scratch.i_q.clear();
        scratch
            .i_q
            .extend(batch.i_interleaved().iter().map(|&v| Q16_16::from_f32(v)));
        scratch.q_q.clear();
        scratch
            .q_q
            .extend(batch.q_interleaved().iter().map(|&v| Q16_16::from_f32(v)));

        // Averaging unit over both channels, four lanes at a time. The
        // feature buffer resizes without clearing: every slot is written
        // by the stages below, so the warm path never memsets.
        scratch.features.resize((2 * m + 1) * L, Q16_16::ZERO);
        let (avg_i, rest) = scratch.features.split_at_mut(m * L);
        let (avg_q, mf_slot) = rest.split_at_mut(m * L);
        self.average_batch_into(&scratch.i_q, avg_i);
        self.average_batch_into(&scratch.q_q, avg_q);

        // Matched-filter MAC over the available envelope prefix: four
        // interleaved wide-accumulator chains per channel.
        let n_i = batch.len().min(self.mf_env_i.len());
        let n_q = batch.len().min(self.mf_env_q.len());
        let mut mf_acc = dot_wide_x4(&self.mf_env_i[..n_i], &scratch.i_q[..n_i * L]);
        let mf_q = dot_wide_x4(&self.mf_env_q[..n_q], &scratch.q_q[..n_q * L]);
        for (slot, (a, q)) in mf_slot.iter_mut().zip(mf_acc.iter_mut().zip(mf_q)) {
            a.merge(q);
            *slot = a.to_fixed_saturating();
        }

        // Shift normalization, constants broadcast across the four lanes,
        // scattering each lane's feature vector out contiguously: the
        // fully connected stage runs fastest on contiguous rows (widening
        // SIMD loads of both weights and inputs), so the de-interleave is
        // fused into the normalization write-back instead of being a pass
        // of its own.
        let dim = 2 * m + 1;
        scratch.lanes.resize(dim * L, Q16_16::ZERO);
        for (f, (&mn, &e)) in self.norm_min.iter().zip(&self.norm_exp).enumerate() {
            for (l, &v) in scratch.features[f * L..(f + 1) * L].iter().enumerate() {
                scratch.lanes[l * dim + f] = shift_divide(v.saturating_sub(mn), e);
            }
        }

        // Fully connected pipeline per lane over the contiguous rows,
        // ping-ponging the (now free) interleaved buffer against the
        // work buffer — the same scalar kernel as the per-shot path, so
        // bitwise equality is inherited rather than re-argued.
        std::array::from_fn(|l| {
            scratch.features.clear();
            scratch
                .features
                .extend_from_slice(&scratch.lanes[l * dim..(l + 1) * dim]);
            let mut overflow_count = 0;
            for layer in &self.layers {
                scratch.work.clear();
                scratch.work.resize(layer.output_dim(), Q16_16::ZERO);
                overflow_count += layer.forward(&scratch.features, &mut scratch.work);
                std::mem::swap(&mut scratch.features, &mut scratch.work);
            }
            let logit = scratch.features[0];
            InferenceDetail {
                excited: !logit.is_negative() && logit != Q16_16::ZERO,
                logit,
                overflow_count,
            }
        })
    }

    /// Four-lane fixed-point averaging over a lane-interleaved channel —
    /// the batched form of [`Self::average_into`], bitwise-identical per
    /// lane (wrapping wide accumulators, same per-group write-back).
    fn average_batch_into(&self, channel: &[Q16_16], out: &mut [Q16_16]) {
        const L: usize = TraceBatch::LANES;
        let m = self.outputs_per_channel;
        debug_assert_eq!(out.len(), m * L);
        debug_assert_eq!(channel.len() % L, 0);
        let len = channel.len() / L;
        assert!(
            len >= m,
            "trace too short: {len} samples for {m} outputs"
        );
        let group = (len / m).max(1);
        let shift = if group.is_power_of_two() {
            Some(group.trailing_zeros() as i32)
        } else {
            None
        };
        let recip = Q16_16::from_f64(1.0 / group as f64);
        for (k, slot) in out.chunks_exact_mut(L).enumerate() {
            let mut acc = [WideAccumulator::new(); L];
            for sample in channel[k * group * L..(k + 1) * group * L].chunks_exact(L) {
                for (a, &s) in acc.iter_mut().zip(sample) {
                    a.add_fixed(s);
                }
            }
            for (s, a) in slot.iter_mut().zip(acc) {
                *s = match shift {
                    Some(shift) => shift_divide(a.to_fixed_saturating(), shift),
                    None => a.to_fixed_saturating().saturating_mul(recip),
                };
            }
        }
    }

    fn average_into(&self, channel: &[Q16_16], out: &mut [Q16_16]) {
        let m = self.outputs_per_channel;
        debug_assert_eq!(out.len(), m);
        assert!(
            channel.len() >= m,
            "trace too short: {} samples for {} outputs",
            channel.len(),
            m
        );
        let group = (channel.len() / m).max(1);
        if group.is_power_of_two() {
            let shift = group.trailing_zeros() as i32;
            for (k, slot) in out.iter_mut().enumerate() {
                let mut acc = WideAccumulator::new();
                for &s in &channel[k * group..(k + 1) * group] {
                    acc.add_fixed(s);
                }
                *slot = shift_divide(acc.to_fixed_saturating(), shift);
            }
        } else {
            let recip = Q16_16::from_f64(1.0 / group as f64);
            for (k, slot) in out.iter_mut().enumerate() {
                let mut acc = WideAccumulator::new();
                for &s in &channel[k * group..(k + 1) * group] {
                    acc.add_fixed(s);
                }
                *slot = acc.to_fixed_saturating().saturating_mul(recip);
            }
        }
    }

    /// Latency breakdown of this design (structure fixed at compile time,
    /// so it is duration-invariant, as the paper reports).
    pub fn latency(&self) -> LatencyReport {
        let layer_inputs: Vec<usize> = self.layers.iter().map(QuantizedDense::input_dim).collect();
        LatencyReport {
            mf: mf_stages(self.design_samples),
            avg_norm: avg_norm_stages(self.design_group),
            network: network_stages(&layer_inputs),
            clock: self.clock,
        }
    }

    /// Estimated per-qubit AVG&NORM resources.
    pub fn avg_norm_resources(&self) -> Resources {
        avg_norm_resources(2 * self.design_samples, 2 * self.outputs_per_channel)
    }

    /// Estimated per-qubit network resources.
    pub fn network_resources(&self) -> Resources {
        let layer_inputs: Vec<usize> = self.layers.iter().map(QuantizedDense::input_dim).collect();
        let params: usize = self
            .layers
            .iter()
            .map(|l| l.input_dim() * l.output_dim() + l.output_dim())
            .sum();
        network_resources(&layer_inputs, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klinq_dsp::FeatureSpec;
    use klinq_nn::network::FnnBuilder;
    use klinq_nn::train::{train_supervised, Dataset, TrainConfig};

    /// Owned (i, q) traces for one prepared class.
    type ClassTraces = Vec<(Vec<f32>, Vec<f32>)>;

    /// Builds a trained 31-feature student on separable synthetic classes
    /// and returns (net, pipeline, sample traces per class).
    fn trained_setup() -> (Fnn, FeaturePipeline, ClassTraces, ClassTraces) {
        let len = 120usize;
        let make = |level: f32, n: usize| -> Vec<(Vec<f32>, Vec<f32>)> {
            (0..n)
                .map(|k| {
                    let jit = 0.15 * (((k * 13) % 9) as f32 - 4.0);
                    let i: Vec<f32> = (0..len)
                        .map(|t| level + jit + 0.3 * ((t % 7) as f32 - 3.0))
                        .collect();
                    let q: Vec<f32> = (0..len)
                        .map(|t| -0.5 * level + 0.2 * ((t % 5) as f32 - 2.0))
                        .collect();
                    (i, q)
                })
                .collect()
        };
        let ground = make(1.0, 48);
        let excited = make(-1.0, 48);
        let g: Vec<(&[f32], &[f32])> = ground
            .iter()
            .map(|(i, q)| (i.as_slice(), q.as_slice()))
            .collect();
        let e: Vec<(&[f32], &[f32])> = excited
            .iter()
            .map(|(i, q)| (i.as_slice(), q.as_slice()))
            .collect();
        let pipeline = FeaturePipeline::fit(FeatureSpec::fnn_a(), &g, &e).unwrap();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (i, q) in &ground {
            rows.push(pipeline.extract(i, q));
            labels.push(0.0);
        }
        for (i, q) in &excited {
            rows.push(pipeline.extract(i, q));
            labels.push(1.0);
        }
        let data = Dataset::from_rows(&rows, &labels).unwrap();
        let mut net = FnnBuilder::new(31)
            .hidden(16, Activation::Relu)
            .hidden(8, Activation::Relu)
            .output(1)
            .seed(5)
            .build();
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 16,
            learning_rate: 0.01,
            ..TrainConfig::default()
        };
        train_supervised(&mut net, &data, &cfg);
        (net, pipeline, ground, excited)
    }

    #[test]
    fn compile_and_dimensions() {
        let (net, pipeline, _, _) = trained_setup();
        let hw = FpgaDiscriminator::compile(&net, &pipeline, 120).unwrap();
        assert_eq!(hw.input_dim(), 31);
        assert_eq!(hw.design_group(), 8); // 120 / 15
    }

    #[test]
    fn hardware_agrees_with_float_reference() {
        let (net, pipeline, ground, excited) = trained_setup();
        let hw = FpgaDiscriminator::compile(&net, &pipeline, 120).unwrap();
        let mut mismatches = 0usize;
        let mut total = 0usize;
        for (traces, want) in [(&ground, false), (&excited, true)] {
            for (i, q) in traces.iter() {
                let float_pred = net.predict(&pipeline.extract(i, q));
                let detail = hw.infer_detailed(i, q);
                assert_eq!(detail.overflow_count, 0, "unexpected overflow");
                if detail.excited != float_pred {
                    mismatches += 1;
                }
                assert_eq!(detail.excited, want, "classification shifted");
                total += 1;
            }
        }
        assert_eq!(mismatches, 0, "{mismatches}/{total} fixed-point mismatches");
    }

    #[test]
    fn logit_error_vs_float_is_small() {
        let (net, pipeline, ground, _) = trained_setup();
        let hw = FpgaDiscriminator::compile(&net, &pipeline, 120).unwrap();
        for (i, q) in ground.iter().take(8) {
            let float_logit = net.logit(&pipeline.extract(i, q));
            let detail = hw.infer_detailed(i, q);
            // The shift normalizer snaps σ to powers of two, so feature
            // scales differ from the float pipeline by up to √2; the
            // decision must survive but logits only agree loosely.
            assert_eq!(detail.excited, float_logit > 0.0);
        }
    }

    #[test]
    fn scratch_inference_is_bitwise_identical() {
        let (net, pipeline, ground, excited) = trained_setup();
        let hw = FpgaDiscriminator::compile(&net, &pipeline, 120).unwrap();
        let mut scratch = HwScratch::new();
        for (i, q) in ground.iter().chain(&excited) {
            // Full detail (logit included) must match exactly, and the
            // scratch must stay valid across consecutive shots.
            assert_eq!(hw.infer_detailed_with(i, q, &mut scratch), hw.infer_detailed(i, q));
            assert_eq!(hw.infer_with(i, q, &mut scratch), hw.infer(i, q));
        }
        // Truncated traces shrink the buffers in place without issue.
        assert_eq!(
            hw.infer_with(&ground[0].0[..72], &ground[0].1[..72], &mut scratch),
            hw.infer(&ground[0].0[..72], &ground[0].1[..72])
        );
    }

    #[test]
    fn batched_inference_is_bitwise_identical_per_lane() {
        let (net, pipeline, ground, excited) = trained_setup();
        let hw = FpgaDiscriminator::compile(&net, &pipeline, 120).unwrap();
        let mut batch = TraceBatch::new();
        let mut scratch = HwBatchScratch::new();
        // Mixed-class blocks at the full and a truncated duration.
        for len in [120usize, 72] {
            let block: Vec<(&[f32], &[f32])> = ground
                .iter()
                .take(2)
                .chain(excited.iter().take(2))
                .map(|(i, q)| (&i[..len], &q[..len]))
                .collect();
            assert!(batch.gather([block[0], block[1], block[2], block[3]]));
            let details = hw.infer_batch_with(&batch, &mut scratch);
            for (l, &(i, q)) in block.iter().enumerate() {
                // Full detail — logit bits and overflow count included.
                assert_eq!(details[l], hw.infer_detailed(i, q), "lane {l} len {len}");
            }
        }
    }

    #[test]
    fn shortened_traces_still_classify() {
        let (net, pipeline, ground, excited) = trained_setup();
        let hw = FpgaDiscriminator::compile(&net, &pipeline, 120).unwrap();
        for (i, q) in ground.iter().take(8) {
            assert!(!hw.infer(&i[..72], &q[..72]));
        }
        for (i, q) in excited.iter().take(8) {
            assert!(hw.infer(&i[..72], &q[..72]));
        }
    }

    #[test]
    fn latency_and_resources_are_reported() {
        let (net, pipeline, _, _) = trained_setup();
        let hw = FpgaDiscriminator::compile(&net, &pipeline, 500).unwrap();
        let lat = hw.latency();
        assert_eq!(lat.network, network_stages(&[31, 16, 8]));
        assert_eq!(lat.mf, mf_stages(500));
        assert!(lat.total_stages() > 0);
        let r = hw.network_resources();
        assert_eq!(r.dsp, 55);
        assert!(hw.avg_norm_resources().lut > 0);
    }

    #[test]
    fn compile_rejects_dimension_mismatch() {
        let (_, pipeline, _, _) = trained_setup();
        let wrong = FnnBuilder::new(10).output(1).build();
        let err = FpgaDiscriminator::compile(&wrong, &pipeline, 120).unwrap_err();
        assert_eq!(
            err,
            CompileError::DimensionMismatch {
                pipeline: 31,
                network: 10
            }
        );
        assert!(err.to_string().contains("31"));
    }

    #[test]
    fn compile_rejects_multi_output() {
        let (_, pipeline, _, _) = trained_setup();
        let multi = FnnBuilder::new(31).output(2).build();
        let err = FpgaDiscriminator::compile(&multi, &pipeline, 120).unwrap_err();
        assert_eq!(err, CompileError::MultiOutput(2));
    }

    #[test]
    fn compile_rejects_sigmoid() {
        let (_, pipeline, _, _) = trained_setup();
        let net = FnnBuilder::new(31)
            .hidden(4, Activation::Sigmoid)
            .output(1)
            .build();
        let err = FpgaDiscriminator::compile(&net, &pipeline, 120).unwrap_err();
        assert_eq!(err, CompileError::UnsupportedActivation);
    }

    #[test]
    fn clock_override_scales_ns() {
        let (net, pipeline, _, _) = trained_setup();
        let hw = FpgaDiscriminator::compile(&net, &pipeline, 500)
            .unwrap()
            .with_clock(Clock::new(500.0));
        let lat = hw.latency();
        assert_eq!(lat.total_ns(), lat.total_stages() as f64 * 2.0);
    }
}
