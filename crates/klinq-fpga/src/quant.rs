//! Q16.16 quantization of trained network layers.

use klinq_fixed::{dot_wide, Q16_16, WideAccumulator};
use klinq_nn::{Activation, Dense};
use serde::{Deserialize, Serialize};

/// A dense layer with weights and biases quantized to Q16.16, executing
/// exactly as the FPGA datapath: full-precision DSP products reduced
/// through a wide-accumulator adder tree with the bias, renormalized with
/// saturation, then a sign-bit ReLU.
///
/// The weights are stored as one flat row-major buffer (one contiguous
/// row per neuron), so the MAC loop streams the whole layer without
/// pointer chasing — on wide-SIMD targets the contiguous rows load with
/// widening vector loads, which is why the batched engine runs this
/// same kernel once per lane after de-interleaving its feature block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedDense {
    /// Flat row-major weights: neuron `j`'s row at
    /// `[j * input_dim, (j + 1) * input_dim)`.
    weights: Vec<Q16_16>,
    input_dim: usize,
    bias: Vec<Q16_16>,
    relu: bool,
}

impl QuantizedDense {
    /// Quantizes a trained float layer.
    ///
    /// # Panics
    ///
    /// Panics if the layer uses an activation other than ReLU or identity
    /// (sigmoid never appears in the deployed students).
    pub fn from_dense(layer: &Dense) -> Self {
        let relu = match layer.activation() {
            Activation::Relu => true,
            Activation::Identity => false,
            Activation::Sigmoid => {
                panic!("sigmoid layers are not supported by the FPGA datapath")
            }
        };
        let weights = layer
            .weights()
            .data()
            .iter()
            .map(|&w| Q16_16::from_f32(w))
            .collect();
        let bias = layer.bias().iter().map(|&b| Q16_16::from_f32(b)).collect();
        Self {
            weights,
            input_dim: layer.input_dim(),
            bias,
            relu,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output width (neuron count).
    pub fn output_dim(&self) -> usize {
        self.bias.len()
    }

    /// `true` if the layer applies the hardware ReLU.
    pub fn is_relu(&self) -> bool {
        self.relu
    }

    /// Executes the layer. Returns the output activations and the number
    /// of neurons whose accumulator overflowed Q16.16 (and saturated).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()` or the output buffer is the
    /// wrong size.
    pub fn forward(&self, x: &[Q16_16], out: &mut [Q16_16]) -> usize {
        assert_eq!(x.len(), self.input_dim(), "quantized layer input mismatch");
        assert_eq!(out.len(), self.output_dim(), "quantized layer output mismatch");
        let mut overflows = 0;
        for ((o, row), &b) in out
            .iter_mut()
            .zip(self.weights.chunks_exact(self.input_dim))
            .zip(&self.bias)
        {
            let mut acc = dot_wide(row, x);
            acc.merge(WideAccumulator::from_fixed(b));
            let v = match acc.to_fixed_checked() {
                Some(v) => v,
                None => {
                    overflows += 1;
                    acc.to_fixed_saturating()
                }
            };
            *o = if self.relu { v.relu() } else { v };
        }
        overflows
    }
}

/// Quantizes an `f32` feature vector into a Q16.16 buffer.
pub fn quantize_vec(x: &[f32]) -> Vec<Q16_16> {
    x.iter().map(|&v| Q16_16::from_f32(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use klinq_nn::Matrix;

    fn float_layer() -> Dense {
        let w = Matrix::from_vec(2, 3, vec![0.5, -1.25, 2.0, 0.125, 0.0, -0.5]);
        Dense::from_parts(w, vec![0.25, -0.75], Activation::Relu)
    }

    #[test]
    fn quantized_matches_float_on_grid_values() {
        let layer = float_layer();
        let q = QuantizedDense::from_dense(&layer);
        assert_eq!(q.input_dim(), 3);
        assert_eq!(q.output_dim(), 2);
        assert!(q.is_relu());

        let x = [1.0f32, 2.0, -0.5];
        let mut fl_out = [0.0f32; 2];
        layer.forward_single(&x, &mut fl_out);

        let xq = quantize_vec(&x);
        let mut q_out = [Q16_16::ZERO; 2];
        let ov = q.forward(&xq, &mut q_out);
        assert_eq!(ov, 0);
        for (a, b) in q_out.iter().zip(&fl_out) {
            assert!((a.to_f32() - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn quantization_error_is_bounded_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Dense::new(31, 16, Activation::Relu, &mut rng);
        let q = QuantizedDense::from_dense(&layer);
        for _ in 0..50 {
            let x: Vec<f32> = (0..31).map(|_| rng.gen_range(-4.0..4.0)).collect();
            let mut fl = vec![0.0f32; 16];
            layer.forward_single(&x, &mut fl);
            let mut qo = vec![Q16_16::ZERO; 16];
            q.forward(&quantize_vec(&x), &mut qo);
            for (a, b) in qo.iter().zip(&fl) {
                // 31 products, each with ≤ 2^-16 input representation
                // error scaled by |w| ≤ sqrt(6/31): comfortably < 1e-3.
                assert!((a.to_f32() - b).abs() < 1e-3, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn overflow_is_reported_and_saturates() {
        let w = Matrix::from_vec(1, 2, vec![30000.0, 30000.0]);
        let layer = Dense::from_parts(w, vec![0.0], Activation::Identity);
        let q = QuantizedDense::from_dense(&layer);
        let x = quantize_vec(&[30000.0, 30000.0]);
        let mut out = [Q16_16::ZERO; 1];
        let ov = q.forward(&x, &mut out);
        assert_eq!(ov, 1);
        assert_eq!(out[0], Q16_16::MAX);
    }

    #[test]
    fn relu_clamps_negative_outputs() {
        let layer = float_layer();
        let q = QuantizedDense::from_dense(&layer);
        // Drive neuron 0 negative: 0.5x0 with x0 very negative.
        let x = quantize_vec(&[-100.0, 0.0, 0.0]);
        let mut out = [Q16_16::ZERO; 2];
        q.forward(&x, &mut out);
        assert_eq!(out[0], Q16_16::ZERO);
    }

    #[test]
    #[should_panic(expected = "sigmoid layers are not supported")]
    fn sigmoid_rejected() {
        let w = Matrix::from_vec(1, 1, vec![1.0]);
        let layer = Dense::from_parts(w, vec![0.0], Activation::Sigmoid);
        let _ = QuantizedDense::from_dense(&layer);
    }

    #[test]
    #[should_panic(expected = "input mismatch")]
    fn forward_checks_dims() {
        let q = QuantizedDense::from_dense(&float_layer());
        let mut out = [Q16_16::ZERO; 2];
        q.forward(&quantize_vec(&[0.0]), &mut out);
    }
}
