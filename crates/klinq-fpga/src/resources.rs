//! FPGA resource accounting: LUT / FF / DSP estimates per component.
//!
//! The estimates use linear cost models whose coefficients are fitted to
//! the paper's Table III (one MF row, two AVG&NORM rows, two network
//! rows), so the preset architectures reproduce the paper's numbers by
//! construction and other architectures extrapolate sensibly:
//!
//! - **Matched filter** (2n inputs, time-multiplexed across qubits):
//!   per-input coefficients from the 1000-input row.
//! - **AVG&NORM** (per qubit): a per-raw-sample cost (input buffering and
//!   the averaging adder tree) plus a per-output cost (output registers
//!   and normalization constants); solved from the two rows. Uses no DSPs
//!   — division is a shift, as in the paper.
//! - **Network** (per qubit): a fixed controller cost plus a per-parameter
//!   cost, solved from the two rows; DSPs are one per layer *input*
//!   (`Σ n_in`), matching the time-multiplexed multiplier sharing the
//!   paper describes (55 for FNN-A; the paper reports 226 for FNN-B vs
//!   this model's 225).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// A bundle of FPGA fabric resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Resources {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP slices.
    pub dsp: u64,
}

impl Resources {
    /// Zero resources.
    pub const ZERO: Self = Self {
        lut: 0,
        ff: 0,
        dsp: 0,
    };

    /// Utilization percentages against a device capacity.
    pub fn utilization(&self, capacity: &Resources) -> Utilization {
        Utilization {
            lut_pct: 100.0 * self.lut as f64 / capacity.lut as f64,
            ff_pct: 100.0 * self.ff as f64 / capacity.ff as f64,
            dsp_pct: 100.0 * self.dsp as f64 / capacity.dsp as f64,
        }
    }

    /// Scales all resources by an integer count (e.g. per-qubit units).
    pub fn times(&self, count: u64) -> Self {
        Self {
            lut: self.lut * count,
            ff: self.ff * count,
            dsp: self.dsp * count,
        }
    }
}

impl Add for Resources {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            dsp: self.dsp + rhs.dsp,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LUT {} / FF {} / DSP {}", self.lut, self.ff, self.dsp)
    }
}

/// Utilization percentages of a device.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Utilization {
    /// LUT utilization in percent.
    pub lut_pct: f64,
    /// FF utilization in percent.
    pub ff_pct: f64,
    /// DSP utilization in percent.
    pub dsp_pct: f64,
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {:.2}% / FF {:.2}% / DSP {:.2}%",
            self.lut_pct, self.ff_pct, self.dsp_pct
        )
    }
}

/// Fabric capacity of the Xilinx Zynq RFSoC ZCU216 (XCZU49DR), the
/// evaluation board in the paper.
pub const ZCU216_CAPACITY: Resources = Resources {
    lut: 425_280,
    ff: 850_560,
    dsp: 4_272,
};

/// Matched-filter unit cost for `inputs` total samples (I + Q).
///
/// Coefficients fitted to Table III's MF row (1000 inputs → 27 180 LUT,
/// 24 052 FF, 375 DSP). The unit is time-multiplexed across all qubits, so
/// it is instantiated once per design.
pub fn mf_resources(inputs: usize) -> Resources {
    let n = inputs as f64;
    Resources {
        lut: (27.180 * n).round() as u64,
        ff: (24.052 * n).round() as u64,
        dsp: (0.375 * n).round() as u64,
    }
}

/// AVG&NORM unit cost for `raw_samples` total input samples (I + Q) and
/// `outputs` averaged feature outputs.
///
/// Coefficients solved from Table III's two AVG&NORM rows
/// (1000 samples / 30 outputs → 17 770 LUT, 11 415 FF;
/// 1000 samples / 200 outputs → 19 600 LUT, 17 500 FF). Shift-based
/// normalization uses no DSPs.
pub fn avg_norm_resources(raw_samples: usize, outputs: usize) -> Resources {
    let n = raw_samples as f64;
    let m = outputs as f64;
    Resources {
        lut: (17.4471 * n + 10.7647 * m).round() as u64,
        ff: (10.3415 * n + 35.7941 * m).round() as u64,
        dsp: 0,
    }
}

/// Fully connected network cost for a layer stack described by its input
/// widths (`n_in` per layer) and total parameter count.
///
/// LUT/FF: fixed controller cost plus per-parameter cost solved from
/// Table III's two network rows (657 params → 8 840 LUT, 6 020 FF;
/// 3 377 params → 25 882 LUT, 23 172 FF). DSP: one multiplier per layer
/// input, time-multiplexed over that layer's neurons (Σ n_in: 55 for
/// FNN-A, 225 for FNN-B vs the paper's 226).
pub fn network_resources(layer_inputs: &[usize], params: usize) -> Resources {
    let p = params as f64;
    Resources {
        lut: (4_722.6 + 6.2659 * p).round() as u64,
        ff: (1_877.6 + 6.3055 * p).round() as u64,
        dsp: layer_inputs.iter().sum::<usize>() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matches_table3_percentages() {
        // Table III reports MF as 6.39% LUT / 2.83% FF / 8.78% DSP of the
        // device; verify our capacity constants reproduce those.
        let u = mf_resources(1000).utilization(&ZCU216_CAPACITY);
        assert!((u.lut_pct - 6.39).abs() < 0.01, "{u}");
        assert!((u.ff_pct - 2.83).abs() < 0.01, "{u}");
        assert!((u.dsp_pct - 8.78).abs() < 0.01, "{u}");
    }

    #[test]
    fn mf_row_reproduced() {
        let r = mf_resources(1000);
        assert_eq!(r.lut, 27_180);
        assert_eq!(r.ff, 24_052);
        assert_eq!(r.dsp, 375);
    }

    #[test]
    fn avg_norm_rows_reproduced() {
        let a = avg_norm_resources(1000, 30);
        assert!((a.lut as i64 - 17_770).abs() <= 2, "{a}");
        assert!((a.ff as i64 - 11_415).abs() <= 2, "{a}");
        assert_eq!(a.dsp, 0);
        let b = avg_norm_resources(1000, 200);
        assert!((b.lut as i64 - 19_600).abs() <= 2, "{b}");
        assert!((b.ff as i64 - 17_500).abs() <= 2, "{b}");
    }

    #[test]
    fn network_rows_reproduced() {
        let a = network_resources(&[31, 16, 8], 657);
        assert!((a.lut as i64 - 8_840).abs() <= 3, "{a}");
        assert!((a.ff as i64 - 6_020).abs() <= 3, "{a}");
        assert_eq!(a.dsp, 55); // exactly the paper's FNN-A DSP count
        let b = network_resources(&[201, 16, 8], 3_377);
        assert!((b.lut as i64 - 25_882).abs() <= 3, "{b}");
        assert!((b.ff as i64 - 23_172).abs() <= 3, "{b}");
        assert_eq!(b.dsp, 225); // paper reports 226
    }

    #[test]
    fn resources_are_additive() {
        let a = Resources {
            lut: 10,
            ff: 20,
            dsp: 3,
        };
        let b = Resources {
            lut: 1,
            ff: 2,
            dsp: 4,
        };
        assert_eq!(
            a + b,
            Resources {
                lut: 11,
                ff: 22,
                dsp: 7
            }
        );
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        assert_eq!(a.times(3).lut, 30);
        assert_eq!(Resources::ZERO + a, a);
    }

    #[test]
    fn five_qubit_design_fits_the_device() {
        // Full paper design: shared MF + per-qubit AVG&NORM + network for
        // 3 × FNN-A and 2 × FNN-B. Everything must fit comfortably.
        let mut total = mf_resources(1000);
        total += avg_norm_resources(1000, 30).times(3);
        total += network_resources(&[31, 16, 8], 657).times(3);
        total += avg_norm_resources(1000, 200).times(2);
        total += network_resources(&[201, 16, 8], 3_377).times(2);
        let u = total.utilization(&ZCU216_CAPACITY);
        assert!(u.lut_pct < 60.0, "{u}");
        assert!(u.ff_pct < 30.0, "{u}");
        assert!(u.dsp_pct < 30.0, "{u}");
    }

    #[test]
    fn display_formats() {
        let r = mf_resources(10);
        assert!(r.to_string().contains("LUT"));
        assert!(r
            .utilization(&ZCU216_CAPACITY)
            .to_string()
            .contains('%'));
    }
}
