//! Pipeline-stage latency model of the KLiNQ datapath.
//!
//! Stage counts follow the structural formulas in the paper's Sec. IV:
//!
//! - **Multiplication**: a 4-stage pipeline of combinational multipliers.
//! - **Adder tree**: `⌈log₂ n⌉ + 1` stages for `n` summands plus the bias.
//! - **Activation (ReLU)**: 1 stage (sign-bit check with overflow
//!   handling).
//! - **Averaging**: an adder tree over the design group size, plus a
//!   dedicated shift stage when the group is a power of two (otherwise the
//!   division folds into the normalization constant), plus a register.
//! - **Normalization**: 2 stages (subtract `x_min`, shift by the
//!   power-of-two σ) — "we replace the division with shift operations and
//!   can get the results within only two clock cycles".
//!
//! With these formulas the two student configurations differ by +3 stages
//! in AVG&NORM (FNN-A) and +3 stages in the network (FNN-B) — so their
//! totals coincide, reproducing the paper's observation that "both modules
//! coincidentally produce the same execution latency". Totals are also
//! invariant across the 550 ns–1 µs trace durations because the averaging
//! tree depth (design-time) and the MF tree depth (`⌈log₂⌉` of the sample
//! count) do not change, which is the paper's stated reason.
//!
//! Absolute nanoseconds depend on the stage clock; the paper's Table III
//! reports component latencies in ns at a 100 MHz system clock that do not
//! decompose into 10 ns cycles, so this model exposes stage counts plus a
//! configurable [`Clock`] (defaulting to 1 GHz, i.e. 1 ns per stage, which
//! reproduces the paper's 9 ns vs 6 ns AVG&NORM split exactly).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Stages of the multiplier pipeline.
pub const MULT_STAGES: u32 = 4;
/// Stages of the activation (ReLU + overflow handling).
pub const ACT_STAGES: u32 = 1;
/// Stages of the normalization unit (subtract, shift).
pub const NORM_STAGES: u32 = 2;

/// `⌈log₂ n⌉` for `n ≥ 1`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ceil_log2(n: usize) -> u32 {
    assert!(n > 0, "ceil_log2 of zero");
    (n as u64).next_power_of_two().trailing_zeros()
}

/// Adder-tree latency for `n` summands: `⌈log₂ n⌉ + 1` (the +1 merges the
/// bias), per the paper.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn adder_tree_stages(n: usize) -> u32 {
    ceil_log2(n) + 1
}

/// Matched-filter unit latency for `samples` per quadrature: the MAC
/// pipeline (reusing the fully connected design) over `2·samples` inputs.
pub fn mf_stages(samples: usize) -> u32 {
    MULT_STAGES + adder_tree_stages(2 * samples)
}

/// AVG&NORM unit latency for a design-time averaging group size.
///
/// Power-of-two groups get a dedicated mean shift stage; other group sizes
/// fold the `1/g` into the normalization multiply. One register stage
/// separates the averager from the normalizer. Reproduces Table III: group
/// 32 → 9 stages, group 5 → 6 stages.
///
/// # Panics
///
/// Panics if `group` is zero.
pub fn avg_norm_stages(group: usize) -> u32 {
    assert!(group > 0, "averaging group must be positive");
    let tree = ceil_log2(group);
    let shift = if group.is_power_of_two() { 1 } else { 0 };
    tree + shift + 1 + NORM_STAGES
}

/// Fully connected network latency for the given per-layer input widths.
/// Each layer: 4-stage multiply, adder tree over its inputs (+bias), and
/// one activation stage; neurons within a layer run in parallel so a
/// layer's latency equals one neuron's.
pub fn network_stages(layer_inputs: &[usize]) -> u32 {
    layer_inputs
        .iter()
        .map(|&n| MULT_STAGES + adder_tree_stages(n) + ACT_STAGES)
        .sum()
}

/// A pipeline clock for converting stages to nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Clock {
    freq_mhz: f64,
}

impl Clock {
    /// Creates a clock at the given frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not positive.
    pub fn new(freq_mhz: f64) -> Self {
        assert!(freq_mhz > 0.0, "clock frequency must be positive");
        Self { freq_mhz }
    }

    /// The paper's 100 MHz system clock.
    pub fn system_100mhz() -> Self {
        Self::new(100.0)
    }

    /// Frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// Period of one cycle in ns.
    pub fn period_ns(&self) -> f64 {
        1000.0 / self.freq_mhz
    }

    /// Converts a stage count to nanoseconds.
    pub fn to_ns(&self, stages: u32) -> f64 {
        stages as f64 * self.period_ns()
    }
}

impl Default for Clock {
    /// 1 GHz: one stage per nanosecond, the granularity at which the model
    /// reproduces the paper's component-latency split.
    fn default() -> Self {
        Self::new(1000.0)
    }
}

/// Per-component latency breakdown of one qubit's discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Matched-filter unit stages.
    pub mf: u32,
    /// Averaging + normalization stages.
    pub avg_norm: u32,
    /// Fully connected network stages.
    pub network: u32,
    /// Stage clock used for ns conversion.
    pub clock: Clock,
}

impl LatencyReport {
    /// Total latency in stages, summing the pipelined components as the
    /// paper does.
    pub fn total_stages(&self) -> u32 {
        self.mf + self.avg_norm + self.network
    }

    /// Total latency in ns under the report's clock.
    pub fn total_ns(&self) -> f64 {
        self.clock.to_ns(self.total_stages())
    }
}

impl fmt::Display for LatencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MF {} + AVG&NORM {} + network {} = {} stages ({:.1} ns at {:.0} MHz)",
            self.mf,
            self.avg_norm,
            self.network,
            self.total_stages(),
            self.total_ns(),
            self.clock.freq_mhz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_reference() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(31), 5);
        assert_eq!(ceil_log2(32), 5);
        assert_eq!(ceil_log2(500), 9);
        assert_eq!(ceil_log2(1000), 10);
    }

    #[test]
    #[should_panic(expected = "ceil_log2 of zero")]
    fn ceil_log2_rejects_zero() {
        let _ = ceil_log2(0);
    }

    #[test]
    fn avg_norm_reproduces_table3() {
        // FNN-A: 32-sample groups → 9 stages = Table III's 9 ns.
        assert_eq!(avg_norm_stages(32), 9);
        // FNN-B: 5-sample groups → 6 stages = Table III's 6 ns.
        assert_eq!(avg_norm_stages(5), 6);
    }

    #[test]
    fn network_difference_matches_table3() {
        // Table III: FNN-B's network is 3 ns slower than FNN-A's
        // (15 vs 12); structurally that is the wider first-layer tree
        // (⌈log₂ 201⌉ = 8 vs ⌈log₂ 31⌉ = 5).
        let a = network_stages(&[31, 16, 8]);
        let b = network_stages(&[201, 16, 8]);
        assert_eq!(b - a, 3);
    }

    #[test]
    fn both_configs_have_equal_totals() {
        // The paper's headline: both configurations produce the same
        // execution latency.
        let a = mf_stages(500) + avg_norm_stages(32) + network_stages(&[31, 16, 8]);
        let b = mf_stages(500) + avg_norm_stages(5) + network_stages(&[201, 16, 8]);
        assert_eq!(a, b);
    }

    #[test]
    fn latency_constant_across_durations() {
        // 550 ns (275 samples) through 1 µs (500 samples): same ⌈log₂⌉,
        // hence identical latency — the paper's stated reason.
        let at = |samples: usize, group: usize, layers: &[usize]| {
            mf_stages(samples) + avg_norm_stages(group) + network_stages(layers)
        };
        let a_1us = at(500, 32, &[31, 16, 8]);
        for samples in [275, 375, 475, 500] {
            assert_eq!(at(samples, 32, &[31, 16, 8]), a_1us, "{samples} samples");
        }
    }

    #[test]
    fn report_totals_and_display() {
        let r = LatencyReport {
            mf: mf_stages(500),
            avg_norm: avg_norm_stages(32),
            network: network_stages(&[31, 16, 8]),
            clock: Clock::default(),
        };
        assert_eq!(r.total_stages(), r.mf + r.avg_norm + r.network);
        assert_eq!(r.total_ns(), r.total_stages() as f64);
        let s = r.to_string();
        assert!(s.contains("stages"), "{s}");
        let sys = Clock::system_100mhz();
        assert_eq!(sys.period_ns(), 10.0);
        assert_eq!(sys.to_ns(3), 30.0);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn clock_rejects_zero() {
        let _ = Clock::new(0.0);
    }

    #[test]
    #[should_panic(expected = "group must be positive")]
    fn avg_norm_rejects_zero_group() {
        let _ = avg_norm_stages(0);
    }
}
