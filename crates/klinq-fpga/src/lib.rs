//! Structural model of the KLiNQ FPGA implementation (Xilinx ZCU216).
//!
//! The paper deploys the student networks on a Zynq RFSoC ZCU216 in
//! Verilog: Q16.16 fixed point, an averaging + shift-normalization front
//! end, a matched-filter MAC unit, and fully connected layers built from a
//! 4-stage multiplier pipeline feeding an adder tree of depth
//! `⌈log₂ n⌉ + 1`, with a sign-bit ReLU that also handles overflow. This
//! crate models that architecture at three levels:
//!
//! - **Functional (bit-accurate)**: [`engine::FpgaDiscriminator`] executes
//!   the full per-qubit datapath in Q16.16 with wide accumulators, exactly
//!   as DSP blocks and adder trees would, including saturation.
//! - **Latency**: [`latency`] derives per-component stage counts from the
//!   paper's structural formulas. The model reproduces Table III's shape:
//!   the small-network config spends more stages averaging (power-of-two
//!   group needs its own shift) while the large network spends more in the
//!   wider first layer — and the totals coincide, as the paper observes.
//! - **Resources**: [`resources`] estimates LUT/FF/DSP per component from
//!   per-input/per-parameter coefficients fitted to Table III, reported
//!   against ZCU216 capacity.
//!
//! # Examples
//!
//! ```
//! use klinq_fpga::latency::{avg_norm_stages, network_stages, mf_stages};
//!
//! // FNN-A (31 → 16 → 8 → 1) with 32-sample averaging groups:
//! let a = avg_norm_stages(32) + network_stages(&[31, 16, 8]) + mf_stages(500);
//! // FNN-B (201 → 16 → 8 → 1) with 5-sample groups:
//! let b = avg_norm_stages(5) + network_stages(&[201, 16, 8]) + mf_stages(500);
//! assert_eq!(a, b); // the paper's "coincidentally equal" 32 ns totals
//! ```

#![forbid(unsafe_code)]

pub mod axi;
pub mod engine;
pub mod latency;
pub mod quant;
pub mod report;
pub mod resources;

pub use axi::{shot_transfer_report, AxiLink, ShotTransferReport};
pub use engine::{FpgaDiscriminator, HwBatchScratch, HwScratch, InferenceDetail};
pub use latency::{Clock, LatencyReport};
pub use quant::QuantizedDense;
pub use resources::{Resources, Utilization, ZCU216_CAPACITY};
