//! AXI data-movement model: DDR → PS → PL trace streaming.
//!
//! The paper's prototype stores qubit traces and network weights in DDR
//! memory and moves them through the processing system (PS) into the
//! programmable logic (PL) over AXI, "as a substitute" for a live ADC
//! stream (Sec. IV). That movement is off the critical discrimination
//! path once the pipeline is primed, but it bounds the shot rate of the
//! prototype and the one-time configuration cost. This module models both
//! with simple bandwidth/burst accounting so the end-to-end shot budget
//! can be reported alongside the 32 ns discrimination latency.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An AXI burst-transfer link (e.g. the PS–PL high-performance port).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AxiLink {
    /// Data width in bytes per beat (HP ports: 8 or 16).
    pub beat_bytes: u32,
    /// Clock frequency of the interface in MHz.
    pub clock_mhz: f64,
    /// Maximum beats per burst (AXI4: 256).
    pub burst_beats: u32,
    /// Fixed overhead cycles per burst (address phase, handshake).
    pub burst_overhead_cycles: u32,
}

impl AxiLink {
    /// The ZCU216 PS–PL high-performance port configuration used by the
    /// model: 128-bit beats at 100 MHz, AXI4 bursts of 256 beats with a
    /// conservative 8-cycle per-burst overhead.
    pub fn zcu216_hp_port() -> Self {
        Self {
            beat_bytes: 16,
            clock_mhz: 100.0,
            burst_beats: 256,
            burst_overhead_cycles: 8,
        }
    }

    /// Validates the link parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero/non-positive.
    pub fn validate(&self) {
        assert!(self.beat_bytes > 0, "beat width must be positive");
        assert!(self.clock_mhz > 0.0, "clock must be positive");
        assert!(self.burst_beats > 0, "burst length must be positive");
    }

    /// Cycles to move `bytes` over the link, including per-burst overhead.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        self.validate();
        if bytes == 0 {
            return 0;
        }
        let beats = bytes.div_ceil(self.beat_bytes as u64);
        let bursts = beats.div_ceil(self.burst_beats as u64);
        beats + bursts * self.burst_overhead_cycles as u64
    }

    /// Transfer latency in nanoseconds.
    pub fn transfer_ns(&self, bytes: u64) -> f64 {
        self.transfer_cycles(bytes) as f64 * 1000.0 / self.clock_mhz
    }

    /// Effective sustained bandwidth in bytes per second for a given
    /// transfer size (approaches the raw link rate for large transfers).
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / (self.transfer_ns(bytes) * 1e-9)
    }
}

/// Data-movement budget for one multiplexed readout shot plus the one-time
/// weight configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShotTransferReport {
    /// Bytes of trace data per shot (all qubits, both quadratures).
    pub trace_bytes: u64,
    /// One-time bytes for weights, biases, filter envelopes and
    /// normalization constants.
    pub config_bytes: u64,
    /// Trace-streaming latency per shot (ns).
    pub trace_ns: f64,
    /// One-time configuration latency (ns).
    pub config_ns: f64,
    /// Upper bound on the shot rate from data movement alone (shots/s).
    pub max_shot_rate_hz: f64,
}

/// Builds the per-shot transfer report for a five-qubit design.
///
/// `samples` is the per-quadrature sample count (32-bit fixed-point words,
/// as stored by the prototype), `total_params` the parameter count across
/// all student networks, and `feature_constants` the per-design constants
/// (matched-filter envelopes + normalization min/σ pairs).
pub fn shot_transfer_report(
    link: &AxiLink,
    qubits: u32,
    samples: usize,
    total_params: usize,
    feature_constants: usize,
) -> ShotTransferReport {
    let word = 4u64; // Q16.16 words
    let trace_bytes = qubits as u64 * 2 * samples as u64 * word;
    let config_bytes = (total_params + feature_constants) as u64 * word;
    let trace_ns = link.transfer_ns(trace_bytes);
    ShotTransferReport {
        trace_bytes,
        config_bytes,
        trace_ns,
        config_ns: link.transfer_ns(config_bytes),
        max_shot_rate_hz: 1e9 / trace_ns,
    }
}

impl fmt::Display for ShotTransferReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace stream: {} B/shot in {:.0} ns (≤ {:.0} kshots/s)",
            self.trace_bytes,
            self.trace_ns,
            self.max_shot_rate_hz / 1e3
        )?;
        write!(
            f,
            "one-time config: {} B in {:.1} µs",
            self.config_bytes,
            self.config_ns / 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        let link = AxiLink::zcu216_hp_port();
        assert_eq!(link.transfer_cycles(0), 0);
        assert_eq!(link.effective_bandwidth(0), 0.0);
    }

    #[test]
    fn single_beat_costs_one_burst_overhead() {
        let link = AxiLink::zcu216_hp_port();
        // 1 byte → 1 beat + 8 overhead cycles.
        assert_eq!(link.transfer_cycles(1), 9);
        assert_eq!(link.transfer_ns(1), 90.0); // 9 cycles at 10 ns
    }

    #[test]
    fn large_transfers_approach_raw_bandwidth() {
        let link = AxiLink::zcu216_hp_port();
        let raw = link.beat_bytes as f64 * link.clock_mhz * 1e6;
        let eff = link.effective_bandwidth(1 << 20);
        assert!(eff > 0.95 * raw, "eff {eff} vs raw {raw}");
        assert!(eff <= raw);
    }

    #[test]
    fn cycles_are_monotone_in_size() {
        let link = AxiLink::zcu216_hp_port();
        let mut prev = 0;
        for bytes in [1u64, 16, 64, 4096, 40_000, 1 << 20] {
            let c = link.transfer_cycles(bytes);
            assert!(c >= prev, "{bytes} B: {c} < {prev}");
            prev = c;
        }
    }

    #[test]
    fn paper_scale_shot_report() {
        // Five qubits, 500 samples/channel, all-student parameters
        // (8 725) plus envelopes (2 × 500) and norm constants.
        let link = AxiLink::zcu216_hp_port();
        let report = shot_transfer_report(&link, 5, 500, 8_725, 2 * 500 + 2 * 231);
        // 5 × 2 × 500 × 4 B = 20 kB per shot.
        assert_eq!(report.trace_bytes, 20_000);
        // Streaming 20 kB over a 1.6 GB/s port ≈ 13 µs → ~77 kshots/s.
        assert!(report.trace_ns > 10_000.0 && report.trace_ns < 16_000.0);
        assert!(report.max_shot_rate_hz > 60_000.0 && report.max_shot_rate_hz < 90_000.0);
        // Config is a one-time cost in the tens of µs.
        assert!(report.config_ns < 100_000.0);
        let s = report.to_string();
        assert!(s.contains("kshots"), "{s}");
    }

    #[test]
    #[should_panic(expected = "beat width")]
    fn invalid_link_rejected() {
        let link = AxiLink {
            beat_bytes: 0,
            ..AxiLink::zcu216_hp_port()
        };
        let _ = link.transfer_cycles(1);
    }
}
