//! Property-based tests for the FPGA datapath models.

use klinq_fpga::latency::{adder_tree_stages, avg_norm_stages, ceil_log2, network_stages};
use klinq_fpga::quant::{quantize_vec, QuantizedDense};
use klinq_fpga::resources::{avg_norm_resources, mf_resources, network_resources};
use klinq_nn::{Activation, Dense, Matrix};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ceil_log2_bounds(n in 1usize..1_000_000) {
        let e = ceil_log2(n);
        prop_assert!(1usize << e >= n);
        if e > 0 {
            prop_assert!(1usize << (e - 1) < n);
        }
    }

    #[test]
    fn adder_tree_monotone(a in 1usize..4096, b in 1usize..4096) {
        if a <= b {
            prop_assert!(adder_tree_stages(a) <= adder_tree_stages(b));
        }
    }

    #[test]
    fn avg_norm_latency_within_one_of_tree_depth(group in 1usize..512) {
        let stages = avg_norm_stages(group);
        // Structure: tree + optional shift + register + 2 norm stages.
        let lo = ceil_log2(group) + 3;
        prop_assert!(stages >= lo && stages <= lo + 1);
    }

    #[test]
    fn network_stages_sum_layerwise(
        dims in prop::collection::vec(1usize..256, 1..5)
    ) {
        let total = network_stages(&dims);
        let manual: u32 = dims.iter().map(|&n| network_stages(&[n])).sum();
        prop_assert_eq!(total, manual);
    }

    #[test]
    fn resources_scale_monotonically(a in 1usize..2000, b in 1usize..2000) {
        if a <= b {
            prop_assert!(mf_resources(a).lut <= mf_resources(b).lut);
            prop_assert!(mf_resources(a).dsp <= mf_resources(b).dsp);
            prop_assert!(avg_norm_resources(a, 10).lut <= avg_norm_resources(b, 10).lut);
            prop_assert!(
                network_resources(&[a], a * 8).lut <= network_resources(&[b], b * 8).lut
            );
        }
    }

    /// Quantized layer output tracks the float layer within the error
    /// budget of 16 fractional bits, for bounded weights and inputs.
    #[test]
    fn quantized_layer_tracks_float(
        weights in prop::collection::vec(-2.0f32..2.0, 12),
        bias in prop::collection::vec(-1.0f32..1.0, 4),
        input in prop::collection::vec(-8.0f32..8.0, 3)
    ) {
        let w = Matrix::from_vec(4, 3, weights);
        let layer = Dense::from_parts(w, bias, Activation::Relu);
        let q = QuantizedDense::from_dense(&layer);
        let mut float_out = [0.0f32; 4];
        layer.forward_single(&input, &mut float_out);
        let xq = quantize_vec(&input);
        let mut q_out = [klinq_fixed::Q16_16::ZERO; 4];
        let overflows = q.forward(&xq, &mut q_out);
        prop_assert_eq!(overflows, 0);
        for (a, b) in q_out.iter().zip(&float_out) {
            // 3 products, each within ~|w|·2^-16 of exact, plus one
            // rounding of the sum.
            prop_assert!((a.to_f32() - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// The hardware ReLU never emits negative values regardless of input.
    #[test]
    fn quantized_relu_output_is_nonnegative(
        weights in prop::collection::vec(-100.0f32..100.0, 8),
        input in prop::collection::vec(-100.0f32..100.0, 4)
    ) {
        let w = Matrix::from_vec(2, 4, weights);
        let layer = Dense::from_parts(w, vec![0.0; 2], Activation::Relu);
        let q = QuantizedDense::from_dense(&layer);
        let mut out = [klinq_fixed::Q16_16::ZERO; 2];
        q.forward(&quantize_vec(&input), &mut out);
        for v in out {
            prop_assert!(!v.is_negative());
        }
    }
}
