//! Serving-path benchmarks: coalesced micro-batch throughput through
//! `klinq_serve::ReadoutServer`, next to the direct engine figures.
//!
//! The interesting number is the *overhead of serving*: how much of the
//! direct `batched_inference/testset_parallel` throughput survives once
//! shots arrive as concurrent client requests that must be coalesced,
//! classified and scattered back. These results are therefore merged
//! into `BENCH_inference.json` (see `write_json_report_as`) so the
//! serving and direct figures sit in one trajectory file; the serving
//! targets are expected to hold at least ~50% of the direct figure.

use criterion::{criterion_group, Criterion, Throughput};
use klinq_core::testkit;
use klinq_core::{Backend, KlinqSystem};
use klinq_serve::{
    ReadoutServer, RequestOptions, ServeConfig, ServeError, ShardedReadoutServer, SuperviseConfig,
    WireClient, WireConfig, WireServer,
};
use klinq_sim::Shot;
use std::hint::black_box;
use std::net::TcpListener;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// One trained smoke system shared by every benchmark in this binary
/// (disk-cached across the workspace's test/bench binaries).
fn system() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| {
        Arc::new(testkit::cached_smoke_system(Path::new(env!(
            "CARGO_TARGET_TMPDIR"
        ))))
    }))
}

/// Drives `clients` concurrent client threads through one request each
/// covering the whole test set, and waits for every response.
fn serve_round(server: &ReadoutServer, shots: &[Shot], clients: usize) {
    let per_client = shots.len().div_ceil(clients);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shots
            .chunks(per_client)
            .map(|chunk| {
                let client = server.client();
                scope.spawn(move || client.classify_shots(chunk.to_vec()).expect("server alive"))
            })
            .collect();
        for handle in handles {
            black_box(handle.join().expect("client thread").len());
        }
    });
}

/// Coalesced serving throughput (shots/sec across all five qubits), for
/// one and four concurrent clients on both backends.
fn bench_serving(c: &mut Criterion) {
    // Stamp the pool size onto every entry (see `tools/benchdiff`).
    criterion::set_worker_threads(rayon::current_num_threads());
    let system = system();
    let shots: Vec<Shot> = system.test_data().shots().to_vec();

    let mut group = c.benchmark_group("serving");
    group.throughput(Throughput::Elements(shots.len() as u64));
    for (name, clients, backend) in [
        ("testset_1_client", 1, Backend::Float),
        ("testset_4_clients", 4, Backend::Float),
        ("testset_4_clients_hw", 4, Backend::Hardware),
    ] {
        group.bench_function(name, |b| {
            let server = ReadoutServer::start(
                Arc::clone(&system),
                ServeConfig {
                    backend,
                    // The whole test set closes one batch, so the linger
                    // only ever waits for the remaining clients' sends.
                    max_batch_shots: shots.len(),
                    max_linger: Duration::from_millis(5),
                    ..ServeConfig::default()
                },
            );
            b.iter(|| serve_round(&server, &shots, clients));
            server.shutdown();
        });
    }

    // Sharded fleet: two device shards (the same trained system twice —
    // shard-routing overhead is what's being measured), two clients per
    // device, each client covering half the test set. One iteration
    // classifies the test set once per device.
    group.throughput(Throughput::Elements(2 * shots.len() as u64));
    group.bench_function("sharded_2dev_4_clients", |b| {
        let fleet = ShardedReadoutServer::start(
            vec![Arc::clone(&system), Arc::clone(&system)],
            ServeConfig {
                max_batch_shots: shots.len(),
                max_linger: Duration::from_millis(5),
                ..ServeConfig::default()
            },
        );
        b.iter(|| {
            let per_client = shots.len().div_ceil(2);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for device in 0..fleet.devices() {
                    for chunk in shots.chunks(per_client) {
                        let client = fleet.client(device);
                        handles.push(scope.spawn(move || {
                            client.classify_shots(chunk.to_vec()).expect("fleet alive").len()
                        }));
                    }
                }
                for handle in handles {
                    black_box(handle.join().expect("client thread"));
                }
            });
        });
        fleet.shutdown();
    });

    // Wire protocol: the whole test set per request over localhost TCP —
    // the out-of-process serving figure next to the in-process one
    // (framing + loopback round trip is the measured overhead).
    group.throughput(Throughput::Elements(shots.len() as u64));
    group.bench_function("wire_testset", |b| {
        let fleet = ShardedReadoutServer::start(
            vec![Arc::clone(&system)],
            ServeConfig {
                max_batch_shots: shots.len(),
                max_linger: Duration::from_millis(5),
                ..ServeConfig::default()
            },
        );
        let server = WireServer::start(
            &fleet,
            TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
        )
        .expect("start wire server");
        let mut client =
            WireClient::connect(server.local_addr(), 0).expect("connect loopback");
        b.iter(|| black_box(client.classify_shots(&shots).expect("served").len()));
        drop(client);
        server.shutdown();
        fleet.shutdown();
    });
    group.finish();
}

/// Shots per pipelined wire request in the concurrency sweep.
const SWEEP_SLICE: usize = 4;
/// Wall clock per measured concurrency level.
const SWEEP_MEASURE_TIME: Duration = Duration::from_secs(1);

/// Reactor concurrency scaling: `serving/wire_c{64,256,1024}` drive that
/// many *concurrent pipelined connections* against one wire server (one
/// reactor thread, one device shard) and record aggregate throughput
/// plus per-request latency percentiles (`…_p50`/`…_p99`, `ns_per_iter`
/// carries the percentile, no throughput figure).
///
/// One round = one in-flight request per connection (submit everything,
/// then drain), so a round's shot total is `conns * SWEEP_SLICE` and the
/// coalescer sees exactly the many-small-clients shape the reactor
/// exists for. A single driver thread suffices *because* the protocol
/// pipelines — no thread-per-connection on either side of the wire.
///
/// `Bencher::iter`'s single median cannot express percentiles, so this
/// measures by hand: in test mode each level runs one round as a smoke
/// test, in bench mode rounds repeat for [`SWEEP_MEASURE_TIME`] after a
/// warmup round, and the three figures are recorded directly.
fn bench_wire_concurrency(c: &mut Criterion) {
    let system = system();
    let shots: Vec<Shot> = system.test_data().shots().to_vec();
    for conns in [64usize, 256, 1024] {
        let id = format!("serving/wire_c{conns}");
        if !c.is_selected(&id) {
            continue;
        }
        let fleet = ShardedReadoutServer::start(
            vec![Arc::clone(&system)],
            ServeConfig {
                // Batches close on the aggregate in-flight shot count —
                // one round fills one batch exactly, so the linger is a
                // straggler bound, not a wait (batches close on count);
                // the queue bound must admit every connection's request
                // at once.
                max_batch_shots: conns * SWEEP_SLICE,
                max_linger: Duration::from_millis(10),
                max_pending: (2 * conns).max(1024),
                ..ServeConfig::default()
            },
        );
        let server = WireServer::start_with(
            &fleet,
            TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
            WireConfig {
                max_connections: conns + 8,
                ..WireConfig::default()
            },
        )
        .expect("start wire server");
        let mut clients: Vec<WireClient> = (0..conns)
            .map(|_| WireClient::connect(server.local_addr(), 0).expect("connect loopback"))
            .collect();
        let slice_of = |i: usize| {
            let s = (i * SWEEP_SLICE) % (shots.len() - SWEEP_SLICE);
            &shots[s..s + SWEEP_SLICE]
        };
        // One request per connection in flight; returns per-request
        // latencies (submit → response drained) in nanoseconds.
        let round = |clients: &mut [WireClient], latencies: &mut Vec<f64>| {
            let mut submitted = Vec::with_capacity(clients.len());
            for (i, client) in clients.iter_mut().enumerate() {
                client.submit(slice_of(i)).expect("submitted");
                submitted.push(Instant::now());
            }
            for (i, client) in clients.iter_mut().enumerate() {
                let (_, result) = client.recv_response().expect("server alive");
                black_box(result.expect("served").len());
                latencies.push(submitted[i].elapsed().as_nanos() as f64);
            }
        };
        let mut latencies = Vec::new();
        round(&mut clients, &mut latencies); // warmup / smoke
        if c.is_bench() {
            latencies.clear();
            let mut rounds = 0u64;
            let t0 = Instant::now();
            let elapsed = loop {
                round(&mut clients, &mut latencies);
                rounds += 1;
                let elapsed = t0.elapsed();
                if elapsed >= SWEEP_MEASURE_TIME {
                    break elapsed;
                }
            };
            let ns = elapsed.as_nanos() as f64;
            let total_shots = (rounds * (conns * SWEEP_SLICE) as u64) as f64;
            criterion::record_measurement(
                &id,
                ns / rounds as f64,
                Some((total_shots / (ns * 1e-9), "elem/s")),
            );
            latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            for (tag, q) in [("p50", 0.50), ("p99", 0.99)] {
                let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
                criterion::record_measurement(&format!("{id}_{tag}"), latencies[idx], None);
            }
        } else {
            println!("{id}: ok (test mode, 1 round)");
        }
        drop(clients);
        server.shutdown();
        fleet.shutdown();
    }
}

/// Failover soak: a two-device fleet over the wire, pipelined
/// failover-enabled traffic bound to device 0, and a collector crash
/// injected mid-run (`ShardedReadoutServer::kill_shard`). Records
/// `serving/failover_p99` — the p99 request latency across the whole
/// run, outage included (a `ShardDown` answer is resubmitted and the
/// retry counts toward its request's latency, which is the number an
/// operator sees during an outage) — and `serving/failover_recovery`,
/// the shard's measured `Down → Healthy` recovery time. Both are
/// latency ids in nanoseconds and, like every `serving/*` id, warn-only
/// under tools/benchdiff (kill timing and thread scheduling jitter
/// would flake a hard gate).
fn bench_failover(c: &mut Criterion) {
    let id = "serving/failover_p99";
    if !c.is_selected(id) {
        return;
    }
    const CONNS: usize = 16;
    const SLICE: usize = 4;
    let system = system();
    let shots: Vec<Shot> = system.test_data().shots().to_vec();
    let fleet = ShardedReadoutServer::start(
        vec![Arc::clone(&system), Arc::clone(&system)],
        ServeConfig {
            max_batch_shots: CONNS * SLICE,
            max_linger: Duration::from_millis(2),
            // A fast watchdog and short backoff: the soak measures the
            // failover path and the recovery, not the backoff timer.
            supervise: SuperviseConfig {
                watchdog_interval: Duration::from_millis(2),
                restart_backoff: Duration::from_millis(50),
                ..SuperviseConfig::default()
            },
            ..ServeConfig::default()
        },
    );
    let server = WireServer::start_with(
        &fleet,
        TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
        WireConfig {
            max_connections: CONNS + 8,
            ..WireConfig::default()
        },
    )
    .expect("start wire server");
    let mut clients: Vec<WireClient> = (0..CONNS)
        .map(|_| {
            let mut client =
                WireClient::connect(server.local_addr(), 0).expect("connect loopback");
            client
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("set timeout");
            client
        })
        .collect();
    let slice_of = |i: usize| {
        let s = (i * SLICE) % (shots.len() - SLICE);
        &shots[s..s + SLICE]
    };
    // One failover-enabled request per connection in flight. Only a
    // request the dead collector owned at crash time answers
    // `ShardDown`; everything submitted while the shard is down rides
    // the healthy peer.
    let round = |clients: &mut [WireClient], latencies: &mut Vec<f64>| {
        let mut submitted = Vec::with_capacity(clients.len());
        for (i, client) in clients.iter_mut().enumerate() {
            client
                .submit_opts(RequestOptions::new().failover(true), slice_of(i))
                .expect("submitted");
            submitted.push(Instant::now());
        }
        for (i, client) in clients.iter_mut().enumerate() {
            loop {
                let (_, result) = client.recv_response().expect("server alive");
                match result {
                    Ok(states) => {
                        black_box(states.len());
                        break;
                    }
                    Err(ServeError::ShardDown) => {
                        client
                            .submit_opts(RequestOptions::new().failover(true), slice_of(i))
                            .expect("resubmitted");
                    }
                    Err(other) => panic!("unexpected serving error: {other:?}"),
                }
            }
            latencies.push(submitted[i].elapsed().as_nanos() as f64);
        }
    };
    let mut latencies = Vec::new();
    round(&mut clients, &mut latencies); // warmup / smoke
    let measure = if c.is_bench() {
        Duration::from_secs(1)
    } else {
        Duration::from_millis(50)
    };
    latencies.clear();
    let t0 = Instant::now();
    let mut killed = false;
    loop {
        round(&mut clients, &mut latencies);
        if !killed && t0.elapsed() >= measure / 4 {
            fleet.kill_shard(0).expect("inject the crash");
            killed = true;
        }
        // Run at least the measurement window AND through the full
        // recovery, so the recorded p99 covers the outage end to end.
        if t0.elapsed() >= measure && fleet.stats().restarts >= 1 {
            break;
        }
    }
    if c.is_bench() {
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let p99 = latencies[((latencies.len() - 1) as f64 * 0.99).round() as usize];
        criterion::record_measurement(id, p99, None);
        let recovery_ns = fleet.stats().recovery_us as f64 * 1e3;
        criterion::record_measurement("serving/failover_recovery", recovery_ns, None);
    } else {
        println!("{id}: ok (test mode, crash + recovery exercised)");
    }
    drop(clients);
    server.shutdown();
    fleet.shutdown();
}

criterion_group!(benches, bench_serving, bench_wire_concurrency, bench_failover);

fn main() {
    let mut criterion = Criterion::from_args();
    benches(&mut criterion);
    // Serving results belong in the inference trajectory file, next to
    // the direct `batched_inference/*` figures they are compared with.
    // This binary owns the `serving/*` group, so the group-wholesale
    // merge is right (renamed ids don't linger) — but it also wipes the
    // `soak` bench's `serving/soak_*` entries, so a full re-record runs
    // the soak *after* this bench (as CI's trajectory step does).
    criterion::write_json_report_as("inference");
}
