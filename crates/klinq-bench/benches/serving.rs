//! Serving-path benchmarks: coalesced micro-batch throughput through
//! `klinq_serve::ReadoutServer`, next to the direct engine figures.
//!
//! The interesting number is the *overhead of serving*: how much of the
//! direct `batched_inference/testset_parallel` throughput survives once
//! shots arrive as concurrent client requests that must be coalesced,
//! classified and scattered back. These results are therefore merged
//! into `BENCH_inference.json` (see `write_json_report_as`) so the
//! serving and direct figures sit in one trajectory file; the serving
//! targets are expected to hold at least ~50% of the direct figure.

use criterion::{criterion_group, Criterion, Throughput};
use klinq_core::testkit;
use klinq_core::{Backend, KlinqSystem};
use klinq_serve::{ReadoutServer, ServeConfig, ShardedReadoutServer, WireClient, WireServer};
use klinq_sim::Shot;
use std::hint::black_box;
use std::net::TcpListener;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One trained smoke system shared by every benchmark in this binary
/// (disk-cached across the workspace's test/bench binaries).
fn system() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| {
        Arc::new(testkit::cached_smoke_system(Path::new(env!(
            "CARGO_TARGET_TMPDIR"
        ))))
    }))
}

/// Drives `clients` concurrent client threads through one request each
/// covering the whole test set, and waits for every response.
fn serve_round(server: &ReadoutServer, shots: &[Shot], clients: usize) {
    let per_client = shots.len().div_ceil(clients);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shots
            .chunks(per_client)
            .map(|chunk| {
                let client = server.client();
                scope.spawn(move || client.classify_shots(chunk.to_vec()).expect("server alive"))
            })
            .collect();
        for handle in handles {
            black_box(handle.join().expect("client thread").len());
        }
    });
}

/// Coalesced serving throughput (shots/sec across all five qubits), for
/// one and four concurrent clients on both backends.
fn bench_serving(c: &mut Criterion) {
    // Stamp the pool size onto every entry (see `tools/benchdiff`).
    criterion::set_worker_threads(rayon::current_num_threads());
    let system = system();
    let shots: Vec<Shot> = system.test_data().shots().to_vec();

    let mut group = c.benchmark_group("serving");
    group.throughput(Throughput::Elements(shots.len() as u64));
    for (name, clients, backend) in [
        ("testset_1_client", 1, Backend::Float),
        ("testset_4_clients", 4, Backend::Float),
        ("testset_4_clients_hw", 4, Backend::Hardware),
    ] {
        group.bench_function(name, |b| {
            let server = ReadoutServer::start(
                Arc::clone(&system),
                ServeConfig {
                    backend,
                    // The whole test set closes one batch, so the linger
                    // only ever waits for the remaining clients' sends.
                    max_batch_shots: shots.len(),
                    max_linger: Duration::from_millis(5),
                    ..ServeConfig::default()
                },
            );
            b.iter(|| serve_round(&server, &shots, clients));
            server.shutdown();
        });
    }

    // Sharded fleet: two device shards (the same trained system twice —
    // shard-routing overhead is what's being measured), two clients per
    // device, each client covering half the test set. One iteration
    // classifies the test set once per device.
    group.throughput(Throughput::Elements(2 * shots.len() as u64));
    group.bench_function("sharded_2dev_4_clients", |b| {
        let fleet = ShardedReadoutServer::start(
            vec![Arc::clone(&system), Arc::clone(&system)],
            ServeConfig {
                max_batch_shots: shots.len(),
                max_linger: Duration::from_millis(5),
                ..ServeConfig::default()
            },
        );
        b.iter(|| {
            let per_client = shots.len().div_ceil(2);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for device in 0..fleet.devices() {
                    for chunk in shots.chunks(per_client) {
                        let client = fleet.client(device);
                        handles.push(scope.spawn(move || {
                            client.classify_shots(chunk.to_vec()).expect("fleet alive").len()
                        }));
                    }
                }
                for handle in handles {
                    black_box(handle.join().expect("client thread"));
                }
            });
        });
        fleet.shutdown();
    });

    // Wire protocol: the whole test set per request over localhost TCP —
    // the out-of-process serving figure next to the in-process one
    // (framing + loopback round trip is the measured overhead).
    group.throughput(Throughput::Elements(shots.len() as u64));
    group.bench_function("wire_testset", |b| {
        let fleet = ShardedReadoutServer::start(
            vec![Arc::clone(&system)],
            ServeConfig {
                max_batch_shots: shots.len(),
                max_linger: Duration::from_millis(5),
                ..ServeConfig::default()
            },
        );
        let server = WireServer::start(
            &fleet,
            TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
        )
        .expect("start wire server");
        let mut client =
            WireClient::connect(server.local_addr(), 0).expect("connect loopback");
        b.iter(|| black_box(client.classify_shots(&shots).expect("served").len()));
        drop(client);
        server.shutdown();
        fleet.shutdown();
    });
    group.finish();
}

criterion_group!(benches, bench_serving);

fn main() {
    let mut criterion = Criterion::from_args();
    benches(&mut criterion);
    // Serving results belong in the inference trajectory file, next to
    // the direct `batched_inference/*` figures they are compared with.
    criterion::write_json_report_as("inference");
}
