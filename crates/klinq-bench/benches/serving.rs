//! Serving-path benchmarks: coalesced micro-batch throughput through
//! `klinq_serve::ReadoutServer`, next to the direct engine figures.
//!
//! The interesting number is the *overhead of serving*: how much of the
//! direct `batched_inference/testset_parallel` throughput survives once
//! shots arrive as concurrent client requests that must be coalesced,
//! classified and scattered back. These results are therefore merged
//! into `BENCH_inference.json` (see `write_json_report_as`) so the
//! serving and direct figures sit in one trajectory file; the serving
//! targets are expected to hold at least ~50% of the direct figure.

use criterion::{criterion_group, Criterion, Throughput};
use klinq_core::testkit;
use klinq_core::{Backend, KlinqSystem};
use klinq_serve::{ReadoutServer, ServeConfig};
use klinq_sim::Shot;
use std::hint::black_box;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One trained smoke system shared by every benchmark in this binary
/// (disk-cached across the workspace's test/bench binaries).
fn system() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| {
        Arc::new(testkit::cached_smoke_system(Path::new(env!(
            "CARGO_TARGET_TMPDIR"
        ))))
    }))
}

/// Drives `clients` concurrent client threads through one request each
/// covering the whole test set, and waits for every response.
fn serve_round(server: &ReadoutServer, shots: &[Shot], clients: usize) {
    let per_client = shots.len().div_ceil(clients);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shots
            .chunks(per_client)
            .map(|chunk| {
                let client = server.client();
                scope.spawn(move || client.classify_shots(chunk.to_vec()).expect("server alive"))
            })
            .collect();
        for handle in handles {
            black_box(handle.join().expect("client thread").len());
        }
    });
}

/// Coalesced serving throughput (shots/sec across all five qubits), for
/// one and four concurrent clients on both backends.
fn bench_serving(c: &mut Criterion) {
    // Stamp the pool size onto every entry (see `tools/benchdiff`).
    criterion::set_worker_threads(rayon::current_num_threads());
    let system = system();
    let shots: Vec<Shot> = system.test_data().shots().to_vec();

    let mut group = c.benchmark_group("serving");
    group.throughput(Throughput::Elements(shots.len() as u64));
    for (name, clients, backend) in [
        ("testset_1_client", 1, Backend::Float),
        ("testset_4_clients", 4, Backend::Float),
        ("testset_4_clients_hw", 4, Backend::Hardware),
    ] {
        group.bench_function(name, |b| {
            let server = ReadoutServer::start(
                Arc::clone(&system),
                ServeConfig {
                    backend,
                    // The whole test set closes one batch, so the linger
                    // only ever waits for the remaining clients' sends.
                    max_batch_shots: shots.len(),
                    max_linger: Duration::from_millis(5),
                    ..ServeConfig::default()
                },
            );
            b.iter(|| serve_round(&server, &shots, clients));
            server.shutdown();
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serving);

fn main() {
    let mut criterion = Criterion::from_args();
    benches(&mut criterion);
    // Serving results belong in the inference trajectory file, next to
    // the direct `batched_inference/*` figures they are compared with.
    criterion::write_json_report_as("inference");
}
