//! Inference-latency benchmarks: student vs teacher vs FPGA datapath.
//!
//! The paper's hardware point is that the distilled students are small
//! enough for a 32 ns FPGA pipeline. In software the same effect shows up
//! as orders-of-magnitude lower inference cost than the teacher; these
//! benchmarks quantify that, plus the cost of the bit-accurate Q16.16
//! datapath model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use klinq_core::experiments::ExperimentConfig;
use klinq_core::{BatchDiscriminator, KlinqSystem};
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let system = KlinqSystem::train(&ExperimentConfig::smoke()).expect("train smoke system");
    let shot = system.test_data().shot(0).clone();

    let mut group = c.benchmark_group("inference");
    // FNN-A student (qubit 1) — float path.
    group.bench_function("student_fnn_a_float", |b| {
        let d = system.discriminator(0);
        let t = &shot.traces[0];
        b.iter(|| black_box(d.measure(black_box(&t.i), black_box(&t.q))));
    });
    // FNN-B student (qubit 2) — float path.
    group.bench_function("student_fnn_b_float", |b| {
        let d = system.discriminator(1);
        let t = &shot.traces[1];
        b.iter(|| black_box(d.measure(black_box(&t.i), black_box(&t.q))));
    });
    // FNN-A student — bit-accurate FPGA datapath model.
    group.bench_function("student_fnn_a_hw_model", |b| {
        let d = system.discriminator(0);
        let t = &shot.traces[0];
        b.iter(|| black_box(d.measure_hw(black_box(&t.i), black_box(&t.q))));
    });
    // Teacher (Baseline FNN) forward pass on a pre-normalized raw trace.
    group.bench_function("teacher_raw_trace", |b| {
        let teacher = &system.teachers()[0];
        let mut row = shot.traces[0].flatten();
        teacher.normalizer().apply_in_place(&mut row);
        b.iter(|| black_box(teacher.net().logit(black_box(&row))));
    });
    group.finish();
}

/// Batched readout throughput (shots/sec across all five qubits): the
/// serving-path baseline the perf trajectory tracks.
fn bench_batched_inference(c: &mut Criterion) {
    let system = KlinqSystem::train(&ExperimentConfig::smoke()).expect("train smoke system");
    let shots = system.test_data().shots();
    let batch = BatchDiscriminator::new(system.discriminators());

    let mut group = c.benchmark_group("batched_inference");
    group.throughput(Throughput::Elements(shots.len() as u64));
    // Parallel chunked classification of the whole held-out set.
    group.bench_function("testset_parallel", |b| {
        b.iter(|| black_box(batch.classify_shots(black_box(shots))));
    });
    // Sequential reference on the same shots, for the speedup ratio.
    group.bench_function("testset_sequential", |b| {
        b.iter(|| {
            let states: Vec<_> = shots
                .iter()
                .map(|shot| batch.classify_shot(black_box(shot)))
                .collect();
            black_box(states)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_batched_inference);
criterion_main!(benches);
