//! Inference benchmarks: per-stage costs plus end-to-end serving
//! throughput for the float and Q16.16 paths.
//!
//! The paper's hardware point is that the distilled students are small
//! enough for a 32 ns FPGA pipeline. In software the same effect shows up
//! as orders-of-magnitude lower inference cost than the teacher; these
//! benchmarks quantify that, break the hot path into its stages
//! (feature extraction / network forward / hardware datapath), and report
//! the batched engine's shots/sec — the serving-trajectory headline that
//! `BENCH_inference.json` records for CI (see the criterion work-alike).
//!
//! Baselines on the 1-core reference container: PR 1 measured
//! `batched_inference/testset_parallel` at ~134K shots/s with the
//! allocating per-shot path, PR 2's pooled GEMM-chunked engine reached
//! ~292–340K, and the cache-blocked SoA engine (fused extract→forward
//! kernels, register-blocked GEMM, fused Q16.16 path) is the number to
//! compare against those. Every recorded entry carries the pool size
//! (`worker_threads`), and `tools/benchdiff` guards the
//! `batched_inference/*` ids against >25% regressions in CI.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use klinq_core::testkit;
use klinq_core::{BatchDiscriminator, KlinqSystem};
use klinq_fpga::HwScratch;
use klinq_nn::InferenceScratch;
use std::hint::black_box;
use std::path::Path;
use std::sync::OnceLock;

/// One trained smoke system shared by every benchmark in this binary
/// (training dominates setup cost; the fixture is disk-cached across
/// the workspace's test and bench binaries, bitwise-identical either
/// way).
fn system() -> &'static KlinqSystem {
    static SYS: OnceLock<KlinqSystem> = OnceLock::new();
    SYS.get_or_init(|| {
        testkit::cached_smoke_system(Path::new(env!("CARGO_TARGET_TMPDIR")))
    })
}

/// End-to-end single-shot inference (the mid-circuit latency view).
fn bench_inference(c: &mut Criterion) {
    // Stamp the pool size onto every recorded entry: throughput from
    // containers with different core counts is not comparable, and
    // `tools/benchdiff` only diffs entries whose pool sizes match.
    criterion::set_worker_threads(rayon::current_num_threads());
    let system = system();
    let shot = system.test_data().shot(0).clone();

    let mut group = c.benchmark_group("inference");
    // FNN-A student (qubit 1) — float path.
    group.bench_function("student_fnn_a_float", |b| {
        let d = system.discriminator(0);
        let t = &shot.traces[0];
        b.iter(|| black_box(d.measure(black_box(&t.i), black_box(&t.q))));
    });
    // FNN-B student (qubit 2) — float path.
    group.bench_function("student_fnn_b_float", |b| {
        let d = system.discriminator(1);
        let t = &shot.traces[1];
        b.iter(|| black_box(d.measure(black_box(&t.i), black_box(&t.q))));
    });
    // FNN-A student — bit-accurate FPGA datapath model.
    group.bench_function("student_fnn_a_hw_model", |b| {
        let d = system.discriminator(0);
        let t = &shot.traces[0];
        b.iter(|| black_box(d.measure_hw(black_box(&t.i), black_box(&t.q))));
    });
    // Teacher (Baseline FNN) forward pass on a pre-normalized raw trace.
    group.bench_function("teacher_raw_trace", |b| {
        let teacher = &system.teachers()[0];
        let mut row = shot.traces[0].flatten();
        teacher.normalizer().apply_in_place(&mut row);
        b.iter(|| black_box(teacher.net().logit(black_box(&row))));
    });
    group.finish();
}

/// Stage-level costs of the zero-allocation hot path: feature extraction,
/// network forward, and the fixed-point datapath, each through reusable
/// scratch buffers exactly as the batched engine runs them.
fn bench_stages(c: &mut Criterion) {
    let system = system();
    let shot = system.test_data().shot(0).clone();

    let mut group = c.benchmark_group("inference_stages");
    // Feature extraction into a reused buffer, FNN-A (31) and FNN-B (201).
    group.bench_function("extract_fnn_a", |b| {
        let pipe = &system.discriminator(0).student().pipeline;
        let t = &shot.traces[0];
        let mut out = vec![0.0f32; pipe.input_dim()];
        b.iter(|| {
            pipe.extract_into(black_box(&t.i), black_box(&t.q), &mut out);
            black_box(out[0])
        });
    });
    group.bench_function("extract_fnn_b", |b| {
        let pipe = &system.discriminator(1).student().pipeline;
        let t = &shot.traces[1];
        let mut out = vec![0.0f32; pipe.input_dim()];
        b.iter(|| {
            pipe.extract_into(black_box(&t.i), black_box(&t.q), &mut out);
            black_box(out[0])
        });
    });
    // Network forward on pre-extracted features through scratch buffers.
    group.bench_function("forward_fnn_a", |b| {
        let student = system.discriminator(0).student();
        let t = &shot.traces[0];
        let features = student.pipeline.extract(&t.i, &t.q);
        let mut scratch = InferenceScratch::new();
        b.iter(|| black_box(student.net.logit_with(black_box(&features), &mut scratch)));
    });
    group.bench_function("forward_fnn_b", |b| {
        let student = system.discriminator(1).student();
        let t = &shot.traces[1];
        let features = student.pipeline.extract(&t.i, &t.q);
        let mut scratch = InferenceScratch::new();
        b.iter(|| black_box(student.net.logit_with(black_box(&features), &mut scratch)));
    });
    // Q16.16 datapath through a reused fixed-point scratch.
    group.bench_function("hw_fnn_a", |b| {
        let hw = system.discriminator(0).hardware();
        let t = &shot.traces[0];
        let mut scratch = HwScratch::new();
        b.iter(|| black_box(hw.infer_with(black_box(&t.i), black_box(&t.q), &mut scratch)));
    });
    group.finish();
}

/// Batched readout throughput (shots/sec across all five qubits): the
/// serving-path trajectory tracked in `BENCH_inference.json`.
fn bench_batched_inference(c: &mut Criterion) {
    criterion::set_worker_threads(rayon::current_num_threads());
    let system = system();
    let shots = system.test_data().shots();
    let batch = BatchDiscriminator::new(system.discriminators());

    let mut group = c.benchmark_group("batched_inference");
    group.throughput(Throughput::Elements(shots.len() as u64));
    // Pooled, SoA-fused, GEMM-chunked classification of the whole
    // held-out set — the 1-core trajectory anchor (its committed figure
    // is measured on the single-core reference container).
    group.bench_function("testset_parallel", |b| {
        b.iter(|| black_box(batch.classify_shots(black_box(shots))));
    });
    // The same engine under the id reserved for multi-core trajectories:
    // only emitted when a worker pool actually exists, so the 1-core
    // reference container neither measures the heavy target twice nor
    // commits a single-thread `_mt` baseline that no multi-core run
    // could ever match. On a multi-core container the entry (with its
    // recorded `worker_threads`) is the figure to compare across
    // multi-core runs, leaving the single-core anchor's meaning intact;
    // benchdiff only compares entries whose `worker_threads` match.
    if rayon::current_num_threads() > 1 {
        group.bench_function("testset_parallel_mt", |b| {
            b.iter(|| black_box(batch.classify_shots(black_box(shots))));
        });
    }
    // Sequential scratch-path reference on the same shots, for the
    // pool/GEMM speedup ratio.
    group.bench_function("testset_sequential", |b| {
        b.iter(|| {
            let states: Vec<_> = shots
                .iter()
                .map(|shot| batch.classify_shot(black_box(shot)))
                .collect();
            black_box(states)
        });
    });
    // The batched Q16.16 datapath (fused SoA fixed-point kernels).
    group.bench_function("testset_parallel_hw", |b| {
        b.iter(|| black_box(batch.classify_shots_hw(black_box(shots))));
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_stages, bench_batched_inference);
criterion_main!(benches);
