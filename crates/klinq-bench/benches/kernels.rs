//! Kernel micro-benchmarks: fixed-point MACs, matched filter, averaging.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use klinq_dsp::{IntervalAverager, MatchedFilter};
use klinq_fixed::{dot, Q16_16};
use std::hint::black_box;

fn deterministic_trace(len: usize, seed: u32) -> Vec<f32> {
    let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
    (0..len)
        .map(|_| {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            ((s >> 8) as f32 / (1u32 << 24) as f32) - 0.5
        })
        .collect()
}

fn bench_fixed_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixed_dot");
    for n in [31, 201, 1000] {
        let a: Vec<Q16_16> = deterministic_trace(n, 1)
            .iter()
            .map(|&v| Q16_16::from_f32(v))
            .collect();
        let b: Vec<Q16_16> = deterministic_trace(n, 2)
            .iter()
            .map(|&v| Q16_16::from_f32(v))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(dot(black_box(&a), black_box(&b))));
        });
    }
    group.finish();
}

fn bench_matched_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("matched_filter");
    for n in [250, 500] {
        let ground: Vec<Vec<f32>> = (0..64).map(|k| deterministic_trace(n, 100 + k)).collect();
        let excited: Vec<Vec<f32>> = (0..64)
            .map(|k| {
                deterministic_trace(n, 200 + k)
                    .iter()
                    .map(|v| v - 1.0)
                    .collect()
            })
            .collect();
        let g: Vec<&[f32]> = ground.iter().map(|t| t.as_slice()).collect();
        let e: Vec<&[f32]> = excited.iter().map(|t| t.as_slice()).collect();
        let mf = MatchedFilter::train(&g, &e).expect("filter trains");
        let trace = deterministic_trace(n, 7);
        group.bench_with_input(BenchmarkId::new("apply", n), &n, |bench, _| {
            bench.iter(|| black_box(mf.apply(black_box(&trace))));
        });
        group.bench_with_input(BenchmarkId::new("train", n), &n, |bench, _| {
            bench.iter(|| black_box(MatchedFilter::train(black_box(&g), black_box(&e)).unwrap()));
        });
    }
    group.finish();
}

fn bench_averaging(c: &mut Criterion) {
    let mut group = c.benchmark_group("averaging");
    let trace = deterministic_trace(500, 3);
    for (name, avg) in [
        ("fnn_a_15", IntervalAverager::fnn_a()),
        ("fnn_b_100", IntervalAverager::fnn_b()),
    ] {
        let mut out = vec![0.0f32; avg.outputs()];
        group.bench_function(name, |bench| {
            bench.iter(|| {
                avg.average_into(black_box(&trace), black_box(&mut out));
                black_box(out[0])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fixed_dot, bench_matched_filter, bench_averaging);
criterion_main!(benches);
