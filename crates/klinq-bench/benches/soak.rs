//! Multi-tenant QoS soak: proves the DRR scheduler isolates a
//! well-behaved tenant from an adversarial flooder, over the real wire.
//!
//! Three phases, each against a fresh `WireServer` (localhost TCP):
//!
//! 1. **Baseline** — the steady tenant alone, closed-loop, small
//!    latency-class requests. Records its p99 as
//!    `serving/soak_steady_p99`.
//! 2. **Flooded** — the same steady workload while an open-loop
//!    flooder (weight 1, bounded quota) and a bursty tenant pile on.
//!    Records the steady tenant's p99 under attack as
//!    `serving/soak_steady_p99_flooded` and asserts it stays within
//!    2× the baseline (plus a scheduling-jitter floor).
//! 3. **Fairness** — three equal-weight backlogged flooders. Records
//!    the Jain index over achieved shots as
//!    `serving/soak_fairness_jain` (unit `index`, higher is better)
//!    and asserts it is ≥ 0.9.
//!
//! Every steady-tenant response is additionally checked bitwise against
//! the direct `classify_shots_on` answer — QoS must never change
//! results, only their timing.
//!
//! The numeric assertions are skipped when `KLINQ_CHAOS_SEED` is set:
//! under fault injection the latencies measure the chaos, not the
//! scheduler, but the run still proves the serve path survives.

use criterion::{criterion_group, Criterion};
use klinq_bench::hist::{jain_index, LatencyHist};
use klinq_core::testkit;
use klinq_core::{Backend, BatchDiscriminator, KlinqSystem};
use klinq_serve::chaos::Chaos;
use klinq_serve::{
    Priority, RequestOptions, SchedPolicy, ServeConfig, ServeError, ShardedReadoutServer,
    TenantId, TenantSpec, WireClient, WireServer,
};
use klinq_sim::Shot;
use std::net::TcpListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// One trained smoke system shared by every benchmark in this binary
/// (disk-cached across the workspace's test/bench binaries).
fn system() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| {
        Arc::new(testkit::cached_smoke_system(Path::new(env!(
            "CARGO_TARGET_TMPDIR"
        ))))
    }))
}

/// Shots per steady-tenant request: small, latency-class traffic.
const STEADY_SLICE: usize = 8;
/// Shots per flooder request: big, throughput-class traffic.
const FLOOD_SLICE: usize = 32;
/// Open-loop flooder pipeline depth (requests in flight per flooder).
const FLOOD_WINDOW: usize = 32;

/// True when fault injection is active and latency/fairness numbers
/// measure the chaos rather than the scheduler.
fn chaos_active() -> bool {
    std::env::var("KLINQ_CHAOS_SEED").is_ok()
}

/// A fresh sharded server + wire front-end with the given tenant table.
fn start_server(
    system: &Arc<KlinqSystem>,
    tenants: Vec<TenantSpec>,
) -> (ShardedReadoutServer, WireServer) {
    let fleet = ShardedReadoutServer::start(
        vec![Arc::clone(system)],
        ServeConfig {
            backend: Backend::Float,
            // Small batch budget: the batch in service is the floor on
            // everyone's wait, so capping it caps the head-of-line
            // blocking a backlogged flooder can impose.
            max_batch_shots: 32,
            max_linger: Duration::from_micros(500),
            max_pending: 4096,
            sched: SchedPolicy::new(tenants),
            ..ServeConfig::default()
        },
    );
    let server = WireServer::start(
        &fleet,
        TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
    )
    .expect("start wire server");
    (fleet, server)
}

/// Drives the steady tenant closed-loop for `run`, recording per-request
/// latency and bitwise-checking every response against `direct`.
fn steady_loop(
    server: &WireServer,
    shots: &[Shot],
    direct: &[klinq_core::ShotStates],
    tenant: TenantId,
    run: Duration,
) -> LatencyHist {
    let mut client = WireClient::connect(server.local_addr(), 0).expect("connect loopback");
    let mut hist = LatencyHist::new();
    let mut offset = 0usize;
    let t0 = Instant::now();
    while t0.elapsed() < run {
        let start = (offset * STEADY_SLICE) % (shots.len() - STEADY_SLICE);
        offset += 1;
        let slice = &shots[start..start + STEADY_SLICE];
        let sent = Instant::now();
        // The latency lane + a tenant weight is the QoS shape a control
        // loop actually uses: its batch closes immediately instead of
        // waiting out the linger, and DRR guards its share of service.
        let states = client
            .classify_shots_opts(
                RequestOptions::new().tenant(tenant).priority(Priority::Latency),
                slice,
            )
            .expect("steady tenant is never shed");
        hist.record(sent.elapsed().as_nanos() as u64);
        // QoS must not change answers: bitwise against the direct path.
        assert_eq!(
            states,
            direct[start..start + STEADY_SLICE],
            "served states diverge from direct classify_shots_on"
        );
    }
    hist
}

/// An open-loop flooder: keeps [`FLOOD_WINDOW`] requests in flight for
/// `run`, regardless of how fast the server answers. Sheds
/// ([`ServeError::Overloaded`]) are expected and counted, not fatal —
/// that is the quota doing its job. Returns `(answered, shed)` request
/// counts.
fn flood_loop(
    server: &WireServer,
    shots: &[Shot],
    tenant: TenantId,
    chaos: &mut Chaos,
    bursty: bool,
    run: Duration,
    stop: &AtomicBool,
) -> (u64, u64) {
    let mut client = WireClient::connect(server.local_addr(), 0).expect("connect loopback");
    let (mut answered, mut shed) = (0u64, 0u64);
    let t0 = Instant::now();
    while t0.elapsed() < run && !stop.load(Ordering::Relaxed) {
        // A bursty tenant sleeps out ~half its duty cycle in bursts; a
        // pure flooder never yields.
        if bursty && chaos.chance(15) {
            std::thread::sleep(Duration::from_micros(200 + chaos.below(800) as u64));
        }
        while client.in_flight() < FLOOD_WINDOW {
            let start = chaos.below(shots.len() - FLOOD_SLICE);
            match client.submit_opts(
                RequestOptions::new().tenant(tenant),
                &shots[start..start + FLOOD_SLICE],
            ) {
                Ok(_) => {}
                Err(ServeError::Overloaded { .. }) => {
                    shed += 1;
                    break;
                }
                Err(e) => panic!("flooder hit unexpected error: {e}"),
            }
        }
        let (_, result) = client.recv_response().expect("server alive");
        match result {
            Ok(_) => answered += 1,
            Err(ServeError::Overloaded { .. } | ServeError::DeadlineExceeded) => shed += 1,
            Err(e) => panic!("flooder response error: {e}"),
        }
    }
    // Drain what is still in flight so the connection closes cleanly.
    while client.in_flight() > 0 {
        let (_, result) = client.recv_response().expect("server alive");
        if result.is_ok() {
            answered += 1;
        } else {
            shed += 1;
        }
    }
    (answered, shed)
}

fn bench_soak(c: &mut Criterion) {
    let ids = [
        "serving/soak_steady_p99",
        "serving/soak_steady_p99_flooded",
        "serving/soak_fairness_jain",
    ];
    if !ids.iter().any(|id| c.is_selected(id)) {
        return;
    }
    criterion::set_worker_threads(rayon::current_num_threads());
    let system = system();
    let shots: Vec<Shot> = system.test_data().shots().to_vec();
    let direct =
        BatchDiscriminator::new(system.discriminators()).classify_shots_on(Backend::Float, &shots);
    // Bench mode soaks long enough for stable percentiles; test mode
    // (CI smoke) just proves the machinery end to end.
    let run = if c.is_bench() {
        Duration::from_millis(1200)
    } else {
        Duration::from_millis(250)
    };

    // Phase 1: the steady tenant alone — the p99 everything else is
    // judged against.
    let (fleet, server) = start_server(&system, vec![TenantSpec::new("steady", 4)]);
    let baseline = steady_loop(&server, &shots, &direct, TenantId(0), run);
    server.shutdown();
    fleet.shutdown();
    let baseline_p99 = baseline.quantile(0.99);
    println!(
        "soak baseline: {} requests, p50 {:?}, p99 {:?}",
        baseline.count(),
        Duration::from_nanos(baseline.quantile(0.50)),
        Duration::from_nanos(baseline_p99),
    );

    // Phase 2: the same steady workload under adversarial load. The
    // flooder's quota keeps its backlog (and thus everyone's queue
    // depth) bounded; its weight-1 share is what DRR grants it.
    let (fleet, server) = start_server(
        &system,
        vec![
            TenantSpec::new("steady", 4),
            TenantSpec::new("bursty", 1).with_quota(4096),
            TenantSpec::new("flood", 1).with_quota(4096),
        ],
    );
    let stop = AtomicBool::new(false);
    let flooded = std::thread::scope(|scope| {
        let mut adversaries = Vec::new();
        for (tenant, bursty, salt) in [(TenantId(1), true, 1u64), (TenantId(2), false, 2)] {
            let (server, shots, stop) = (&server, &shots, &stop);
            adversaries.push(scope.spawn(move || {
                let mut chaos = Chaos::new(0x51_4B_50_AA).derive(salt);
                // Run longer than the steady loop so the attack never
                // lets up mid-measurement; `stop` cuts it off after.
                flood_loop(server, shots, tenant, &mut chaos, bursty, run * 4, stop)
            }));
        }
        // Let the adversaries saturate their queues before measuring.
        std::thread::sleep(Duration::from_millis(50));
        let hist = steady_loop(&server, &shots, &direct, TenantId(0), run);
        stop.store(true, Ordering::Relaxed);
        for handle in adversaries {
            let (answered, shed) = handle.join().expect("flooder thread");
            println!("soak adversary: {answered} answered, {shed} shed");
        }
        hist
    });
    let stats = fleet.stats();
    println!(
        "soak server:   {} requests, {} batches (mean {:.1} shots, {} expedited)",
        stats.requests,
        stats.batches,
        stats.mean_batch_shots(),
        stats.expedited_batches,
    );
    server.shutdown();
    fleet.shutdown();
    let flooded_p99 = flooded.quantile(0.99);
    println!(
        "soak flooded:  {} requests, p50 {:?}, p99 {:?}",
        flooded.count(),
        Duration::from_nanos(flooded.quantile(0.50)),
        Duration::from_nanos(flooded_p99),
    );
    // Isolation: the flooder must not move the steady tenant's tail by
    // more than 2×. The floor absorbs OS scheduling jitter — with more
    // runnable threads than cores (CI boxes run this on 1–2 CPUs) the
    // tail carries multi-millisecond CFS timeslices that no queueing
    // discipline can remove. The assert still catches the failure mode
    // it exists for: without fair intake, a backlogged flooder delays
    // the steady tenant by its whole quota (128 batches ≈ 50 ms+ here),
    // far past the floor.
    let bound = (2 * baseline_p99).max(25_000_000);
    if chaos_active() {
        println!("soak: KLINQ_CHAOS_SEED set, skipping latency/fairness assertions");
    } else {
        assert!(
            flooded_p99 <= bound,
            "steady p99 {flooded_p99} ns under flood exceeds {bound} ns \
             (2x solo baseline {baseline_p99} ns)"
        );
    }

    // Phase 3: three equal-weight backlogged flooders — DRR should split
    // service evenly, and the Jain index over achieved shots says so.
    let (fleet, server) = start_server(
        &system,
        vec![
            TenantSpec::new("a", 1).with_quota(4096),
            TenantSpec::new("b", 1).with_quota(4096),
            TenantSpec::new("c", 1).with_quota(4096),
        ],
    );
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for (t, salt) in [(0u32, 10u64), (1, 11), (2, 12)] {
            let (server, shots, stop) = (&server, &shots, &stop);
            scope.spawn(move || {
                let mut chaos = Chaos::new(0x51_4B_50_BB).derive(salt);
                flood_loop(server, shots, TenantId(t), &mut chaos, false, run, stop)
            });
        }
    });
    let per_tenant = fleet.tenant_stats();
    server.shutdown();
    fleet.shutdown();
    let achieved: Vec<f64> = per_tenant.iter().map(|t| t.shots as f64).collect();
    let jain = jain_index(&achieved);
    println!("soak fairness: achieved shots {achieved:?}, Jain index {jain:.4}");
    if !chaos_active() {
        assert!(
            jain >= 0.9,
            "Jain index {jain:.4} across equal-weight tenants below 0.9 ({achieved:?})"
        );
    }

    if c.is_bench() {
        criterion::record_measurement(ids[0], baseline_p99 as f64, None);
        criterion::record_measurement(ids[1], flooded_p99 as f64, None);
        // ns_per_iter carries the phase wall-clock (uninteresting); the
        // tracked figure is the index itself, higher is better.
        criterion::record_measurement(
            ids[2],
            run.as_nanos() as f64,
            Some((jain, "index")),
        );
    } else {
        println!("serving/soak_*: ok (test mode)");
    }
}

criterion_group!(benches, bench_soak);

fn main() {
    let mut criterion = Criterion::from_args();
    benches(&mut criterion);
    // Soak results belong in the inference trajectory file, next to the
    // other `serving/*` figures — which the `serving` bench binary owns,
    // so merge id-granular: the group-wholesale default would wipe its
    // entries whenever the soak runs alone.
    criterion::write_json_report_as_shared("inference");
}
