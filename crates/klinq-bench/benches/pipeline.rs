//! End-to-end pipeline benchmarks: trace generation and feature
//! extraction throughput (the readout-rate bound of a software
//! discriminator, contrasting the FPGA's fixed 32 ns).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use klinq_core::experiments::ExperimentConfig;
use klinq_core::KlinqSystem;
use klinq_sim::{FiveQubitDevice, ReadoutDataset, SimConfig};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let device = FiveQubitDevice::paper();
    let config = SimConfig::default();
    let mut group = c.benchmark_group("simulation");
    group.throughput(Throughput::Elements(32));
    group.bench_function("generate_32_shots_1us", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(ReadoutDataset::generate(&device, &config, 32, seed))
        });
    });
    group.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    let system = KlinqSystem::train(&ExperimentConfig::smoke()).expect("train smoke system");
    let shot = system.test_data().shot(0).clone();
    let mut group = c.benchmark_group("feature_pipeline");
    // FNN-A features (31-dim) and FNN-B features (201-dim).
    for (name, qb) in [("fnn_a", 0usize), ("fnn_b", 1usize)] {
        let pipe = &system.discriminator(qb).student().pipeline;
        let t = &shot.traces[qb];
        group.bench_function(name, |b| {
            b.iter(|| black_box(pipe.extract(black_box(&t.i), black_box(&t.q))));
        });
    }
    group.finish();
}

fn bench_batch_readout(c: &mut Criterion) {
    let system = KlinqSystem::train(&ExperimentConfig::smoke()).expect("train smoke system");
    let data = system.test_data();
    let mut group = c.benchmark_group("batch_readout");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("five_qubit_full_testset", |b| {
        b.iter(|| black_box(system.evaluate()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_feature_extraction,
    bench_batch_readout
);
criterion_main!(benches);
