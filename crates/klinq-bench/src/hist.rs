//! HDR-style latency histogram and the Jain fairness index — the
//! measurement kit behind the multi-tenant soak harness
//! (`benches/soak.rs`).
//!
//! [`LatencyHist`] buckets nanosecond samples logarithmically (constant
//! ~2.8% relative width per bucket), so recording is O(1) with a fixed
//! ~2 KB footprint however many samples a soak run produces, and any
//! quantile is recoverable to bucket precision afterwards — the same
//! trade HdrHistogram makes, scaled down to what the soak needs.

/// Log-bucketed latency histogram over `[1 ns, ~584 s]`.
///
/// Buckets split each power of two into `SUB_BUCKETS` (16) linear steps
/// (base-2 log-linear layout), giving every bucket the same relative
/// width: `2^(1/16) - 1` ≈ 4.4%. Quantiles report a bucket's upper
/// bound, so they over-estimate by at most one bucket width — fine for
/// p50/p99 comparisons with 2× assertion headroom.
#[derive(Debug, Clone)]
pub struct LatencyHist {
    counts: Vec<u64>,
    total: u64,
    max_ns: u64,
}

/// Linear steps per power of two.
const SUB_BUCKETS: u64 = 16;
/// log2(SUB_BUCKETS): bits of linear resolution below the leading bit.
const SUB_BITS: u32 = 4;
/// Bucket count: values below 2·SUB_BUCKETS map exactly (one bucket
/// each), then 16 sub-buckets per remaining exponent range up to the
/// top of u64 (exp ≤ 59 after the SUB_BITS shift).
const N_BUCKETS: usize = (60 * SUB_BUCKETS + SUB_BUCKETS) as usize;

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; N_BUCKETS],
            total: 0,
            max_ns: 0,
        }
    }

    fn bucket(ns: u64) -> usize {
        // Values below 2·SUB_BUCKETS index linearly (exact); above, the
        // leading bit picks the exponent range and the next SUB_BITS
        // bits the linear step within it.
        if ns < 2 * SUB_BUCKETS {
            return ns as usize;
        }
        let exp = (63 - ns.leading_zeros()) - SUB_BITS;
        let sub = (ns >> exp) - SUB_BUCKETS;
        (u64::from(exp) * SUB_BUCKETS + sub + SUB_BUCKETS) as usize
    }

    /// Upper bound of `bucket`'s value range, in ns.
    fn bucket_high(bucket: usize) -> u64 {
        let bucket = bucket as u64;
        if bucket < 2 * SUB_BUCKETS {
            return bucket;
        }
        let exp = bucket / SUB_BUCKETS - 1;
        let sub = bucket % SUB_BUCKETS + SUB_BUCKETS;
        // u128: the top bucket's bound is 2^64 - 1, whose intermediate
        // (sub+1) << exp does not fit in u64.
        let high = ((u128::from(sub) + 1) << exp) - 1;
        u64::try_from(high).unwrap_or(u64::MAX)
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The largest recorded sample, exact (not bucket-rounded).
    pub fn max(&self) -> u64 {
        self.max_ns
    }

    /// The latency at quantile `q` in `[0, 1]` (e.g. `0.99` for p99),
    /// reported as the containing bucket's upper bound. Returns 0 on an
    /// empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.total == 0 {
            return 0;
        }
        // Rank of the sample the quantile lands on (1-based, ceil —
        // p100 is the max, p0 the min).
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_high(bucket).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

/// Jain's fairness index over per-tenant allocations:
/// `(Σxᵢ)² / (n · Σxᵢ²)`. Ranges over `(0, 1]` — `1.0` is a perfectly
/// even split, `1/n` is one tenant taking everything. Returns 1.0 for
/// fewer than two allocations (nothing to be unfair between), and
/// treats an all-zero allocation vector as perfectly fair.
pub fn jain_index(allocations: &[f64]) -> f64 {
    if allocations.len() < 2 {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sq_sum: f64 = allocations.iter().map(|x| x * x).sum();
    if sq_sum == 0.0 {
        return 1.0;
    }
    (sum * sum) / (allocations.len() as f64 * sq_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHist::new();
        for ns in 0..16u64 {
            h.record(ns);
        }
        // Below SUB_BUCKETS every value gets its own bucket.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.count(), 16);
    }

    #[test]
    fn quantiles_are_within_one_bucket_width() {
        let mut h = LatencyHist::new();
        // A spread of realistic latencies: 10 µs .. 100 ms.
        let samples: Vec<u64> = (0..10_000u64).map(|i| 10_000 + i * 10_000).collect();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = samples[((q * samples.len() as f64).ceil() as usize - 1).min(9_999)];
            let got = h.quantile(q);
            assert!(
                got >= exact,
                "q{q}: bucket upper bound {got} below exact {exact}"
            );
            // One log-linear bucket is ≤ 1/16 relative width.
            assert!(
                (got as f64) <= exact as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64) + 1.0,
                "q{q}: {got} overshoots exact {exact} by more than a bucket"
            );
        }
    }

    #[test]
    fn max_is_exact_and_bounds_quantiles() {
        let mut h = LatencyHist::new();
        h.record(123_456_789);
        h.record(42);
        assert_eq!(h.max(), 123_456_789);
        assert_eq!(h.quantile(1.0), 123_456_789);
        assert!(h.quantile(0.25) >= 42);
    }

    #[test]
    fn merge_is_sum() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        a.record(1_000);
        b.record(2_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 2_000_000);
        assert!(a.quantile(1.0) >= 2_000_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn giant_values_saturate_instead_of_panicking() {
        let mut h = LatencyHist::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn jain_index_brackets() {
        // Perfectly even.
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One tenant takes everything: 1/n.
        assert!((jain_index(&[12.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        // 3:1 weighted split of two tenants: (4)²/(2·10) = 0.8.
        assert!((jain_index(&[3.0, 1.0]) - 0.8).abs() < 1e-12);
        // Degenerate inputs.
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[7.0]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }
}
