//! Benchmark harness for the KLiNQ reproduction.
//!
//! Two kinds of targets live here:
//!
//! - **Table/figure regeneration binaries** (`src/bin/table1` …
//!   `src/bin/table3`, `src/bin/fig4`, `src/bin/fig5`, and `src/bin/all`):
//!   train the systems and print the paper's tables side by side with the
//!   measured values. Each accepts a scale argument
//!   (`--scale smoke|quick|full`, default `quick`) and an optional
//!   `--json <path>` to dump the structured results.
//! - **Criterion micro-benchmarks** (`benches/`): inference latency of the
//!   student vs teacher vs bit-accurate FPGA datapath, feature-pipeline
//!   throughput, and fixed-point kernel costs.

#![forbid(unsafe_code)]

use klinq_core::experiments::ExperimentConfig;

pub mod hist;

/// Parses the common `--scale` / `--json` CLI arguments of the
/// regeneration binaries.
///
/// # Examples
///
/// ```
/// use klinq_bench::CliArgs;
/// let args = CliArgs::parse(["--scale", "smoke"].iter().map(|s| s.to_string()));
/// assert_eq!(args.scale_name, "smoke");
/// assert!(args.json_path.is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    /// The chosen scale name (`smoke`, `quick` or `full`).
    pub scale_name: String,
    /// Optional JSON output path.
    pub json_path: Option<String>,
}

impl CliArgs {
    /// Parses an argument iterator (excluding the program name).
    ///
    /// Unknown arguments abort with an explanatory message.
    pub fn parse<I: Iterator<Item = String>>(mut args: I) -> Self {
        let mut scale_name = "quick".to_string();
        let mut json_path = None;
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    scale_name = args.next().unwrap_or_else(|| {
                        eprintln!("--scale requires a value: smoke | quick | full");
                        std::process::exit(2);
                    });
                }
                "--json" => {
                    json_path = Some(args.next().unwrap_or_else(|| {
                        eprintln!("--json requires a path");
                        std::process::exit(2);
                    }));
                }
                "--help" | "-h" => {
                    println!("usage: [--scale smoke|quick|full] [--json <path>]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
        Self {
            scale_name,
            json_path,
        }
    }

    /// Reads the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The [`ExperimentConfig`] for the chosen scale.
    ///
    /// # Panics
    ///
    /// Panics if the scale name is unknown.
    pub fn config(&self) -> ExperimentConfig {
        match self.scale_name.as_str() {
            "smoke" => ExperimentConfig::smoke(),
            "quick" => ExperimentConfig::quick(),
            "full" => ExperimentConfig::full(),
            other => panic!("unknown scale '{other}', expected smoke | quick | full"),
        }
    }

    /// Writes `value` as pretty JSON to the `--json` path, if given.
    ///
    /// # Panics
    ///
    /// Panics if serialization or the write fails (regeneration binaries
    /// want loud failures).
    pub fn maybe_write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json_path {
            let json = serde_json::to_string_pretty(value).expect("results serialize");
            std::fs::write(path, json).expect("write results JSON");
            eprintln!("wrote {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CliArgs {
        CliArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_to_quick() {
        let a = parse(&[]);
        assert_eq!(a.scale_name, "quick");
        assert_eq!(a.config(), ExperimentConfig::quick());
    }

    #[test]
    fn parses_scale_and_json() {
        let a = parse(&["--scale", "full", "--json", "/tmp/out.json"]);
        assert_eq!(a.config(), ExperimentConfig::full());
        assert_eq!(a.json_path.as_deref(), Some("/tmp/out.json"));
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn bad_scale_panics_on_config() {
        let a = CliArgs {
            scale_name: "huge".into(),
            json_path: None,
        };
        let _ = a.config();
    }
}
