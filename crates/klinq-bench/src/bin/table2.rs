//! Regenerates Table II: KLiNQ fidelity vs readout-trace duration.

use klinq_bench::CliArgs;
use klinq_core::experiments::table2;

fn main() {
    let args = CliArgs::from_env();
    let config = args.config();
    eprintln!("[table2] training at scale '{}' …", args.scale_name);
    let start = std::time::Instant::now();
    let table = table2::run(&config).expect("table2 experiment");
    eprintln!("[table2] done in {:.1}s", start.elapsed().as_secs_f32());
    println!("{table}");
    args.maybe_write_json(&table);
}
