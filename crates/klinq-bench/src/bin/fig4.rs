//! Regenerates Fig. 4: accuracy vs duration, KLiNQ vs HERQULES.

use klinq_bench::CliArgs;
use klinq_core::experiments::fig4;

fn main() {
    let args = CliArgs::from_env();
    let config = args.config();
    eprintln!("[fig4] training at scale '{}' …", args.scale_name);
    let start = std::time::Instant::now();
    let fig = fig4::run(&config).expect("fig4 experiment");
    eprintln!("[fig4] done in {:.1}s", start.elapsed().as_secs_f32());
    println!("{fig}");
    args.maybe_write_json(&fig);
}
