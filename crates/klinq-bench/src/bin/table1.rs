//! Regenerates Table I: readout-fidelity comparison (independent readout).

use klinq_bench::CliArgs;
use klinq_core::experiments::table1;

fn main() {
    let args = CliArgs::from_env();
    let config = args.config();
    eprintln!("[table1] training at scale '{}' …", args.scale_name);
    let start = std::time::Instant::now();
    let table = table1::run(&config).expect("table1 experiment");
    eprintln!("[table1] done in {:.1}s", start.elapsed().as_secs_f32());
    println!("{table}");
    args.maybe_write_json(&table);
}
