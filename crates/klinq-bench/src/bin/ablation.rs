//! Runs the distillation ablation: α/temperature sweep vs pure-supervised
//! students (an analysis beyond the paper's tables, supporting its core
//! claim).

use klinq_bench::CliArgs;
use klinq_core::experiments::ablation;

fn main() {
    let args = CliArgs::from_env();
    let config = args.config();
    eprintln!("[ablation] training at scale '{}' …", args.scale_name);
    let start = std::time::Instant::now();
    let a = ablation::run(&config).expect("ablation experiment");
    eprintln!("[ablation] done in {:.1}s", start.elapsed().as_secs_f32());
    println!("{a}");
    args.maybe_write_json(&a);
}
