//! Runs the joint-vs-independent readout comparison (the paper's Table I
//! footnotes and Discussion, quantified on the simulator).

use klinq_bench::CliArgs;
use klinq_core::experiments::joint_readout;

fn main() {
    let args = CliArgs::from_env();
    let config = args.config();
    eprintln!("[joint] training at scale '{}' …", args.scale_name);
    let start = std::time::Instant::now();
    let cmp = joint_readout::run(&config).expect("joint experiment");
    eprintln!("[joint] done in {:.1}s", start.elapsed().as_secs_f32());
    println!("{cmp}");
    args.maybe_write_json(&cmp);
}
