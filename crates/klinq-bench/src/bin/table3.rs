//! Regenerates Table III: FPGA resources and latency per component.

use klinq_bench::CliArgs;
use klinq_core::experiments::table3;

fn main() {
    let args = CliArgs::from_env();
    let config = args.config();
    eprintln!("[table3] training at scale '{}' …", args.scale_name);
    let start = std::time::Instant::now();
    let table = table3::run(&config).expect("table3 experiment");
    eprintln!("[table3] done in {:.1}s", start.elapsed().as_secs_f32());
    println!("{table}");
    args.maybe_write_json(&table);
}
