//! Runs the whole evaluation: trains one system and regenerates every
//! table and figure from it (sharing the expensive teacher training).

use klinq_bench::CliArgs;
use klinq_core::experiments::{fig4, fig5, table1, table2, table3};
use klinq_core::KlinqSystem;

fn main() {
    let args = CliArgs::from_env();
    let config = args.config();
    eprintln!("[all] training at scale '{}' …", args.scale_name);
    let start = std::time::Instant::now();
    let system = KlinqSystem::train(&config).expect("system training");
    eprintln!("[all] system trained in {:.1}s", start.elapsed().as_secs_f32());

    let t1 = table1::run_with_system(&system, &config).expect("table1");
    println!("===== Table I =====\n{t1}\n");
    let t2 = table2::run_with_system(&system);
    println!("===== Table II =====\n{t2}\n");
    let f4 = fig4::run_with_system(&system, &config).expect("fig4");
    println!("===== Fig. 4 =====\n{f4}\n");
    let f5 = fig5::run();
    println!("===== Fig. 5 =====\n{f5}\n");
    let t3 = table3::run_with_system(&system);
    println!("===== Table III =====\n{t3}");
    eprintln!("[all] total {:.1}s", start.elapsed().as_secs_f32());

    #[derive(serde::Serialize)]
    struct All {
        table1: klinq_core::experiments::table1::Table1,
        table2: klinq_core::experiments::table2::Table2,
        fig4: klinq_core::experiments::fig4::Fig4,
        fig5: klinq_core::experiments::fig5::Fig5,
        table3: klinq_core::experiments::table3::Table3,
    }
    args.maybe_write_json(&All {
        table1: t1,
        table2: t2,
        fig4: f4,
        fig5: f5,
        table3: t3,
    });
}
