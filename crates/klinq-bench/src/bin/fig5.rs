//! Regenerates Fig. 5: parameter counts and compression rate (static).

use klinq_bench::CliArgs;
use klinq_core::experiments::fig5;

fn main() {
    let args = CliArgs::from_env();
    let fig = fig5::run();
    println!("{fig}");
    args.maybe_write_json(&fig);
}
