//! Property-based tests for the neural network library.

use klinq_nn::loss::{accuracy, bce_with_logits, distill_loss, mse, DistillParams};
use klinq_nn::{Activation, BatchScratch, FnnBuilder, InferenceScratch, Matrix};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn matmul_is_associative((a, b, c) in (matrix(3, 4), matrix(4, 5), matrix(5, 2))) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_distributes_over_addition((a, b, c) in (matrix(3, 4), matrix(4, 2), matrix(4, 2))) {
        let mut sum = b.clone();
        for (s, &x) in sum.data_mut().iter_mut().zip(c.data()) {
            *s += x;
        }
        let lhs = a.matmul(&sum);
        let mut rhs = a.matmul(&b);
        let rc = a.matmul(&c);
        for (r, &x) in rhs.data_mut().iter_mut().zip(rc.data()) {
            *r += x;
        }
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_kernels_agree_with_plain_matmul((a, b) in (matrix(4, 6), matrix(6, 3))) {
        // a.matmul(b) == a.matmul_bt(bᵀ-as-matrix) by building the
        // transpose explicitly.
        let mut bt = Matrix::zeros(b.cols(), b.rows());
        for r in 0..b.rows() {
            for c in 0..b.cols() {
                bt.set(c, r, b.get(r, c));
            }
        }
        let plain = a.matmul(&b);
        let fused = a.matmul_bt(&bt);
        for (x, y) in plain.data().iter().zip(fused.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn forward_is_deterministic_and_finite(x in prop::collection::vec(-10.0f32..10.0, 7)) {
        let net = FnnBuilder::new(7)
            .hidden(5, Activation::Relu)
            .hidden(3, Activation::Sigmoid)
            .output(1)
            .seed(42)
            .build();
        let a = net.logit(&x);
        let b = net.logit(&x);
        prop_assert_eq!(a, b);
        prop_assert!(a.is_finite());
    }

    #[test]
    fn scratch_and_gemm_inference_are_bitwise_identical(
        (in_dim, hidden, rows) in (1usize..24, 1usize..20, 1usize..12),
        data in prop::collection::vec(-3.0f32..3.0, 24 * 12),
        seed in 0u64..1000
    ) {
        // Random shapes cover lane-partial blocks (hidden < 16) and
        // multi-block layers; random batch sizes cover the x4/remainder
        // split of chunked callers.
        let net = FnnBuilder::new(in_dim)
            .hidden(hidden, Activation::Relu)
            .output(1)
            .seed(seed)
            .build();
        let x = Matrix::from_vec(rows, in_dim, data[..rows * in_dim].to_vec());
        let mut batch = BatchScratch::new();
        let mut single = InferenceScratch::new();
        let logits = net.logits_batch_with(&x, &mut batch).to_vec();
        prop_assert_eq!(logits.len(), rows);
        for (r, &l) in logits.iter().enumerate() {
            // Bitwise: the GEMM and scratch paths replay the exact
            // allocating summation order.
            prop_assert_eq!(l, net.logit(x.row(r)));
            prop_assert_eq!(l, net.logit_with(x.row(r), &mut single));
        }
    }

    #[test]
    fn relu_network_is_positive_homogeneous_in_first_layer(
        x in prop::collection::vec(-5.0f32..5.0, 4),
        scale in 0.1f32..3.0
    ) {
        // A single ReLU layer with zero bias satisfies f(s·x) = s·f(x) for
        // s > 0 — checks the activation wiring.
        use klinq_nn::Dense;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::new(4, 3, Activation::Relu, &mut rng); // zero bias init
        let scaled: Vec<f32> = x.iter().map(|&v| v * scale).collect();
        let mut out_a = [0.0f32; 3];
        let mut out_b = [0.0f32; 3];
        layer.forward_single(&x, &mut out_a);
        layer.forward_single(&scaled, &mut out_b);
        for (a, b) in out_a.iter().zip(&out_b) {
            prop_assert!((a * scale - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn bce_loss_is_nonnegative_and_grad_bounded(
        logits in prop::collection::vec(-30.0f32..30.0, 1..32),
        bits in prop::collection::vec(prop::bool::ANY, 32)
    ) {
        let targets: Vec<f32> = bits.iter().take(logits.len()).map(|&b| b as u8 as f32).collect();
        let (loss, grad) = bce_with_logits(&logits, &targets);
        prop_assert!(loss >= 0.0);
        let n = logits.len() as f32;
        for g in grad {
            // |σ(z) − y|/n ≤ 1/n.
            prop_assert!(g.abs() <= 1.0 / n + 1e-6);
        }
    }

    #[test]
    fn mse_zero_iff_equal(xs in prop::collection::vec(-10.0f32..10.0, 1..16)) {
        let (loss, grad) = mse(&xs, &xs);
        prop_assert_eq!(loss, 0.0);
        prop_assert!(grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn distill_loss_interpolates_between_terms(
        zs in prop::collection::vec(-5.0f32..5.0, 4..8),
        zt in prop::collection::vec(-5.0f32..5.0, 8),
        bits in prop::collection::vec(prop::bool::ANY, 8),
        alpha in 0.0f32..1.0
    ) {
        let n = zs.len();
        let zt = &zt[..n];
        let y: Vec<f32> = bits.iter().take(n).map(|&b| b as u8 as f32).collect();
        let t = 2.0f32;
        let (l_mix, _) = distill_loss(&zs, zt, &y, DistillParams { alpha, temperature: t });
        let (l_ce, _) = distill_loss(&zs, zt, &y, DistillParams { alpha: 1.0, temperature: t });
        let (l_kd, _) = distill_loss(&zs, zt, &y, DistillParams { alpha: 0.0, temperature: t });
        let expect = alpha * l_ce + (1.0 - alpha) * l_kd;
        prop_assert!((l_mix - expect).abs() < 1e-4, "{l_mix} vs {expect}");
    }

    #[test]
    fn accuracy_is_a_proportion(
        logits in prop::collection::vec(-5.0f32..5.0, 1..64),
        bits in prop::collection::vec(prop::bool::ANY, 64)
    ) {
        let targets: Vec<f32> = bits.iter().take(logits.len()).map(|&b| b as u8 as f32).collect();
        let acc = accuracy(&logits, &targets);
        prop_assert!((0.0..=1.0).contains(&acc));
        // Flipping every logit flips the accuracy.
        let flipped: Vec<f32> = logits.iter().map(|&z| -z).collect();
        let acc_f = accuracy(&flipped, &targets);
        // Zero logits classify as "ground" either way; exclude exact zeros.
        if logits.iter().all(|&z| z != 0.0) {
            prop_assert!((acc + acc_f - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn builder_param_count_formula(
        input in 1usize..32,
        h1 in 1usize..16,
        h2 in 1usize..16
    ) {
        let net = FnnBuilder::new(input)
            .hidden(h1, Activation::Relu)
            .hidden(h2, Activation::Relu)
            .output(1)
            .build();
        prop_assert_eq!(
            net.num_params(),
            input * h1 + h1 + h1 * h2 + h2 + h2 + 1
        );
    }
}
