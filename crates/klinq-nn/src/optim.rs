//! First-order optimizers: SGD with momentum and Adam.
//!
//! Optimizers are stateful per parameter tensor; tensors are identified by
//! a caller-assigned `param_id` (the network uses `2*layer` for weights and
//! `2*layer + 1` for biases). This keeps the optimizer decoupled from the
//! network structure.

use std::collections::HashMap;

/// A first-order gradient-descent optimizer.
///
/// Implementations update `params` in place from `grads`; both slices must
/// have the same length for a given `param_id` across all calls.
pub trait Optimizer {
    /// Applies one update step to the tensor identified by `param_id`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `params.len() != grads.len()` or if the
    /// tensor size changes between calls with the same id.
    fn step(&mut self, param_id: usize, params: &mut [f32], grads: &[f32]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
///
/// `v ← μ·v + g; p ← p − lr·v`
///
/// # Examples
///
/// ```
/// use klinq_nn::optim::{Optimizer, Sgd};
/// let mut opt = Sgd::new(0.1).with_momentum(0.9);
/// let mut p = [1.0f32];
/// opt.step(0, &mut p, &[1.0]);
/// assert!((p[0] - 0.9).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<usize, Vec<f32>>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Self {
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Adds classical momentum.
    ///
    /// # Panics
    ///
    /// Panics if `momentum ∉ [0, 1)`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, param_id: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        let v = self
            .velocity
            .entry(param_id)
            .or_insert_with(|| vec![0.0; params.len()]);
        assert_eq!(v.len(), params.len(), "tensor size changed for param_id {param_id}");
        for ((p, &g), vi) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
            *vi = self.momentum * *vi + g;
            *p -= self.lr * *vi;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    state: HashMap<usize, AdamState>,
}

#[derive(Debug, Clone)]
struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u32,
}

impl Adam {
    /// Creates Adam with the given learning rate and standard defaults
    /// (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }

    /// Overrides the moment-decay coefficients.
    ///
    /// # Panics
    ///
    /// Panics if either beta is outside `[0, 1)`.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, param_id: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        let st = self.state.entry(param_id).or_insert_with(|| AdamState {
            m: vec![0.0; params.len()],
            v: vec![0.0; params.len()],
            t: 0,
        });
        assert_eq!(st.m.len(), params.len(), "tensor size changed for param_id {param_id}");
        st.t += 1;
        let bc1 = 1.0 - self.beta1.powi(st.t as i32);
        let bc2 = 1.0 - self.beta2.powi(st.t as i32);
        for (((p, &g), m), v) in params
            .iter_mut()
            .zip(grads)
            .zip(st.m.iter_mut())
            .zip(st.v.iter_mut())
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(p) = (p − 3)² with gradient 2(p − 3).
    fn converges_to_three(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let mut p = [0.0f32];
        for _ in 0..iters {
            let g = [2.0 * (p[0] - 3.0)];
            opt.step(0, &mut p, &g);
        }
        p[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let p = converges_to_three(&mut opt, 200);
        assert!((p - 3.0).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn sgd_momentum_converges_faster() {
        let mut plain = Sgd::new(0.02);
        let mut mom = Sgd::new(0.02).with_momentum(0.9);
        let p_plain = converges_to_three(&mut plain, 40);
        let p_mom = converges_to_three(&mut mom, 40);
        assert!((p_mom - 3.0).abs() < (p_plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        let p = converges_to_three(&mut opt, 300);
        assert!((p - 3.0).abs() < 1e-2, "p = {p}");
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // With bias correction, the first Adam step is ≈ lr·sign(g).
        let mut opt = Adam::new(0.5);
        let mut p = [0.0f32];
        opt.step(0, &mut p, &[7.3]);
        assert!((p[0] + 0.5).abs() < 1e-4, "p = {}", p[0]);
    }

    #[test]
    fn per_tensor_state_is_independent() {
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        let mut a = [0.0f32];
        let mut b = [0.0f32; 2];
        opt.step(0, &mut a, &[1.0]);
        opt.step(1, &mut b, &[1.0, 2.0]); // different size, different id: fine
        opt.step(0, &mut a, &[1.0]);
        assert!(a[0] < -0.2); // momentum accumulated on id 0 only
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn step_rejects_mismatched_grads() {
        let mut opt = Sgd::new(0.1);
        let mut p = [0.0f32];
        opt.step(0, &mut p, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "tensor size changed")]
    fn step_rejects_resized_tensor() {
        let mut opt = Adam::new(0.1);
        let mut p = [0.0f32; 2];
        opt.step(0, &mut p, &[1.0, 1.0]);
        let mut q = [0.0f32; 3];
        opt.step(0, &mut q, &[1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn bad_lr_rejected() {
        let _ = Sgd::new(-0.1);
    }

    #[test]
    fn lr_schedule_hooks() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn bad_momentum_rejected() {
        let _ = Sgd::new(0.1).with_momentum(1.0);
    }
}
