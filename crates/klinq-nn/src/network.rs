//! The [`Fnn`] feed-forward network container and its builder.

use crate::layer::{Activation, Dense, LayerGrads};
use crate::matrix::Matrix;
use crate::optim::Optimizer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// A feed-forward neural network: a stack of [`Dense`] layers.
///
/// Built via [`FnnBuilder`]. The KLiNQ architectures are:
///
/// - teacher: `input → 1000 → 500 → 250 → 1` (ReLU hidden, identity out)
/// - student FNN-A: `31 → 16 → 8 → 1`
/// - student FNN-B: `201 → 16 → 8 → 1`
///
/// # Examples
///
/// ```
/// use klinq_nn::{FnnBuilder, Activation};
/// let net = FnnBuilder::new(31)
///     .hidden(16, Activation::Relu)
///     .hidden(8, Activation::Relu)
///     .output(1)
///     .seed(1)
///     .build();
/// assert_eq!(net.num_params(), 31 * 16 + 16 + 16 * 8 + 8 + 8 + 1);
/// let logit = net.logit(&vec![0.0; 31]);
/// assert!(logit.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fnn {
    layers: Vec<Dense>,
}

/// Cached intermediate values from a training forward pass.
///
/// `inputs[l]` is the input to layer `l` (so `inputs[0]` is the batch) and
/// `zs[l]` its pre-activation; `inputs.last()` is the network output.
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    inputs: Vec<Matrix>,
    zs: Vec<Matrix>,
}

impl ForwardTrace {
    /// The network output (activations of the last layer).
    pub fn output(&self) -> &Matrix {
        self.inputs.last().expect("trace always holds the input batch")
    }
}

/// Reusable buffers for allocation-free single-sample inference
/// ([`Fnn::forward_single_with`] / [`Fnn::logit_with`]).
///
/// One scratch serves any number of networks of any shape: buffers grow to
/// the widest layer seen and are reused afterwards, so the serving hot
/// path performs zero heap allocations after warmup.
#[derive(Debug, Clone, Default)]
pub struct InferenceScratch {
    a: Vec<f32>,
    b: Vec<f32>,
}

impl InferenceScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable matrices for allocation-free batched inference
/// ([`Fnn::logits_batch_with`]).
///
/// Like [`InferenceScratch`] but holding whole activation batches: the
/// GEMM-chunked serving path runs every layer of a chunk through these two
/// ping-pong matrices.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    a: Matrix,
    b: Matrix,
    /// Lane-blocked transposed weights of the layer currently executing
    /// (see `Dense::forward_infer_into`).
    wt: Vec<f32>,
}

impl BatchScratch {
    /// An empty scratch (matrices grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Fnn {
    /// Builds from explicit layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive dimensions don't chain.
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "an Fnn needs at least one layer");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].output_dim(),
                w[1].input_dim(),
                "layer dimension chain broken: {} -> {}",
                w[0].output_dim(),
                w[1].input_dim()
            );
        }
        Self { layers }
    }

    /// Network input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Network output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").output_dim()
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Dense::num_params).sum()
    }

    /// Batch forward pass returning only the output.
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        let mut a = x.clone();
        for layer in &self.layers {
            a = layer.forward(&a).1;
        }
        a
    }

    /// Batch forward pass caching everything backward needs.
    pub fn forward_trace(&self, x: &Matrix) -> ForwardTrace {
        let mut inputs = Vec::with_capacity(self.layers.len() + 1);
        let mut zs = Vec::with_capacity(self.layers.len());
        inputs.push(x.clone());
        for layer in &self.layers {
            let (z, a) = layer.forward(inputs.last().expect("pushed above"));
            zs.push(z);
            inputs.push(a);
        }
        ForwardTrace { inputs, zs }
    }

    /// Backpropagates `grad_output = ∂L/∂output` through the network,
    /// returning per-layer gradients (first layer first).
    ///
    /// # Panics
    ///
    /// Panics if the trace does not belong to this network (shape mismatch).
    pub fn backward(&self, trace: &ForwardTrace, grad_output: &Matrix) -> Vec<LayerGrads> {
        assert_eq!(trace.zs.len(), self.layers.len(), "trace/network depth mismatch");
        let mut grads = Vec::with_capacity(self.layers.len());
        let mut upstream = grad_output.clone();
        for (l, layer) in self.layers.iter().enumerate().rev() {
            let g = layer.backward(&trace.inputs[l], &trace.zs[l], &upstream);
            upstream = g.input.clone();
            grads.push(g);
        }
        grads.reverse();
        grads
    }

    /// Applies per-layer gradients with the given optimizer.
    ///
    /// Parameter-tensor ids are `2*layer` (weights) and `2*layer + 1`
    /// (bias), so one optimizer instance can train one network.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the layer count.
    pub fn apply_grads(&mut self, grads: &[LayerGrads], opt: &mut dyn Optimizer) {
        assert_eq!(grads.len(), self.layers.len(), "gradient count mismatch");
        for (l, (layer, g)) in self.layers.iter_mut().zip(grads).enumerate() {
            opt.step(2 * l, layer.weights_mut().data_mut(), g.weights.data());
            opt.step(2 * l + 1, layer.bias_mut(), &g.bias);
        }
    }

    /// Single-sample forward pass returning the full output vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn forward_single(&self, x: &[f32]) -> Vec<f32> {
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        for layer in &self.layers {
            next.resize(layer.output_dim(), 0.0);
            layer.forward_single(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Single-sample forward pass through reusable scratch buffers.
    ///
    /// Bitwise-identical to [`Self::forward_single`] (same per-layer
    /// kernel, same summation order) but allocation-free after the scratch
    /// has warmed up.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn forward_single_with<'s>(
        &self,
        x: &[f32],
        scratch: &'s mut InferenceScratch,
    ) -> &'s [f32] {
        scratch.a.clear();
        scratch.a.extend_from_slice(x);
        for layer in &self.layers {
            scratch.b.clear();
            scratch.b.resize(layer.output_dim(), 0.0);
            layer.forward_single(&scratch.a, &mut scratch.b);
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }
        &scratch.a
    }

    /// The scalar logit of a single-output network.
    ///
    /// # Panics
    ///
    /// Panics if the network has more than one output.
    pub fn logit(&self, x: &[f32]) -> f32 {
        assert_eq!(self.output_dim(), 1, "logit requires a single-output network");
        self.forward_single(x)[0]
    }

    /// The scalar logit through reusable scratch buffers (zero-allocation
    /// form of [`Self::logit`], bitwise-identical to it).
    ///
    /// # Panics
    ///
    /// Panics if the network has more than one output.
    pub fn logit_with(&self, x: &[f32], scratch: &mut InferenceScratch) -> f32 {
        assert_eq!(
            self.output_dim(),
            1,
            "logit_with requires a single-output network"
        );
        self.forward_single_with(x, scratch)[0]
    }

    /// Batched logits through reusable scratch matrices — the GEMM kernel
    /// of the chunked serving path.
    ///
    /// Every returned logit is bitwise-identical to [`Self::logit`] on the
    /// matching input row (see [`crate::layer::Dense::forward_infer_into`]
    /// for the summation-order argument), and nothing is allocated once
    /// the scratch has warmed up to this batch shape.
    ///
    /// # Panics
    ///
    /// Panics if the network has more than one output or
    /// `x.cols() != self.input_dim()`.
    pub fn logits_batch_with<'s>(&self, x: &Matrix, scratch: &'s mut BatchScratch) -> &'s [f32] {
        assert_eq!(
            self.output_dim(),
            1,
            "logits_batch_with requires a single-output network"
        );
        let (first, rest) = self.layers.split_first().expect("non-empty");
        first.forward_infer_into(x, &mut scratch.a, &mut scratch.wt);
        for layer in rest {
            std::mem::swap(&mut scratch.a, &mut scratch.b);
            layer.forward_infer_into(&scratch.b, &mut scratch.a, &mut scratch.wt);
        }
        scratch.a.data()
    }

    /// Logits for a batch (single-output networks).
    ///
    /// # Panics
    ///
    /// Panics if the network has more than one output.
    pub fn logits_batch(&self, x: &Matrix) -> Vec<f32> {
        assert_eq!(self.output_dim(), 1, "logits_batch requires a single-output network");
        self.forward_batch(x).data().to_vec()
    }

    /// The decision rule shared by every inference path: `true` (excited,
    /// label 1) if the logit exceeds 0.
    #[inline]
    pub fn decide(logit: f32) -> bool {
        logit > 0.0
    }

    /// Binary prediction: `true` (excited, label 1) if the logit exceeds 0.
    pub fn predict(&self, x: &[f32]) -> bool {
        Self::decide(self.logit(x))
    }

    /// Zero-allocation form of [`Self::predict`] (see [`Self::logit_with`]).
    pub fn predict_with(&self, x: &[f32], scratch: &mut InferenceScratch) -> bool {
        Self::decide(self.logit_with(x, scratch))
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O or serialization error.
    pub fn save_json(&self, path: &Path) -> Result<(), std::io::Error> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a network previously written by [`Self::save_json`].
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O or deserialization error.
    pub fn load_json(path: &Path) -> Result<Self, std::io::Error> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }
}

impl fmt::Display for Fnn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fnn({}", self.input_dim())?;
        for layer in &self.layers {
            write!(f, " → {}", layer.output_dim())?;
        }
        write!(f, "; {} params)", self.num_params())
    }
}

/// Builder for [`Fnn`] networks.
#[derive(Debug, Clone)]
pub struct FnnBuilder {
    input_dim: usize,
    specs: Vec<(usize, Activation)>,
    seed: u64,
}

impl FnnBuilder {
    /// Starts a builder for a network with the given input dimension.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` is zero.
    pub fn new(input_dim: usize) -> Self {
        assert!(input_dim > 0, "input dimension must be positive");
        Self {
            input_dim,
            specs: Vec::new(),
            seed: 0,
        }
    }

    /// Appends a hidden layer.
    pub fn hidden(mut self, neurons: usize, activation: Activation) -> Self {
        self.specs.push((neurons, activation));
        self
    }

    /// Appends the (identity-activation) output layer.
    pub fn output(mut self, neurons: usize) -> Self {
        self.specs.push((neurons, Activation::Identity));
        self
    }

    /// Sets the weight-initialization seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if no layers were added or any layer has zero neurons.
    pub fn build(self) -> Fnn {
        assert!(!self.specs.is_empty(), "network needs at least one layer");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut layers = Vec::with_capacity(self.specs.len());
        let mut in_dim = self.input_dim;
        for &(n, act) in &self.specs {
            layers.push(Dense::new(in_dim, n, act, &mut rng));
            in_dim = n;
        }
        Fnn::from_layers(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::bce_with_logits;

    fn small_net(seed: u64) -> Fnn {
        FnnBuilder::new(4)
            .hidden(6, Activation::Relu)
            .hidden(3, Activation::Relu)
            .output(1)
            .seed(seed)
            .build()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let net = small_net(0);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 1);
        assert_eq!(net.layers().len(), 3);
        assert_eq!(net.num_params(), 4 * 6 + 6 + 6 * 3 + 3 + 3 + 1);
    }

    #[test]
    fn paper_student_param_counts() {
        let fnn_a = FnnBuilder::new(31)
            .hidden(16, Activation::Relu)
            .hidden(8, Activation::Relu)
            .output(1)
            .build();
        assert_eq!(fnn_a.num_params(), 657);
        let fnn_b = FnnBuilder::new(201)
            .hidden(16, Activation::Relu)
            .hidden(8, Activation::Relu)
            .output(1)
            .build();
        assert_eq!(fnn_b.num_params(), 3377);
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(small_net(9), small_net(9));
        assert_ne!(small_net(9), small_net(10));
    }

    #[test]
    fn forward_single_matches_batch() {
        let net = small_net(4);
        let x = [0.5f32, -1.0, 0.25, 2.0];
        let batch = Matrix::from_rows(&[&x]);
        let out = net.forward_batch(&batch);
        let single = net.forward_single(&x);
        assert!((out.get(0, 0) - single[0]).abs() < 1e-6);
        assert!((net.logit(&x) - single[0]).abs() < 1e-6);
    }

    #[test]
    fn logits_batch_matches_per_sample() {
        let net = small_net(4);
        let rows: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..4).map(|j| (i * 4 + j) as f32 * 0.1 - 1.0).collect())
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let batch = Matrix::from_rows(&refs);
        let logits = net.logits_batch(&batch);
        for (row, &l) in rows.iter().zip(&logits) {
            assert!((net.logit(row) - l).abs() < 1e-5);
        }
    }

    #[test]
    fn scratch_paths_are_bitwise_identical_to_allocating_paths() {
        let net = small_net(4);
        let mut single = InferenceScratch::new();
        let mut batch = BatchScratch::new();
        let rows: Vec<Vec<f32>> = (0..9)
            .map(|i| (0..4).map(|j| ((i * 4 + j) as f32).sin()).collect())
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let logits = net.logits_batch_with(&x, &mut batch).to_vec();
        assert_eq!(logits.len(), rows.len());
        for (row, &l) in rows.iter().zip(&logits) {
            // Bitwise, not approximate: the scratch kernels replay the
            // exact single-sample summation order.
            assert_eq!(net.logit(row), l);
            assert_eq!(net.logit_with(row, &mut single), l);
            assert_eq!(net.forward_single_with(row, &mut single), &net.forward_single(row)[..]);
        }
    }

    #[test]
    fn scratch_is_reusable_across_network_shapes() {
        let narrow = small_net(1);
        let wide = FnnBuilder::new(8)
            .hidden(32, Activation::Relu)
            .output(1)
            .seed(2)
            .build();
        let mut scratch = InferenceScratch::new();
        let a = narrow.logit_with(&[0.1, 0.2, 0.3, 0.4], &mut scratch);
        let b = wide.logit_with(&[0.5; 8], &mut scratch);
        let c = narrow.logit_with(&[0.1, 0.2, 0.3, 0.4], &mut scratch);
        assert_eq!(a, c);
        assert_eq!(b, wide.logit(&[0.5; 8]));
    }

    #[test]
    #[should_panic(expected = "single-output")]
    fn logits_batch_with_requires_single_output() {
        let net = FnnBuilder::new(2).output(3).build();
        let x = Matrix::zeros(1, 2);
        let _ = net.logits_batch_with(&x, &mut BatchScratch::new());
    }

    #[test]
    fn end_to_end_gradient_check() {
        let mut net = small_net(7);
        let x = Matrix::from_vec(3, 4, vec![
            0.5, -1.0, 0.25, 2.0,
            1.5, 0.3, -0.7, -0.1,
            -0.9, 0.6, 1.1, 0.4,
        ]);
        let y = [1.0f32, 0.0, 1.0];

        let loss_of = |net: &Fnn| {
            let logits = net.logits_batch(&x);
            bce_with_logits(&logits, &y).0
        };

        let trace = net.forward_trace(&x);
        let logits: Vec<f32> = trace.output().data().to_vec();
        let (_, grad) = bce_with_logits(&logits, &y);
        let grad_m = Matrix::from_vec(3, 1, grad);
        let grads = net.backward(&trace, &grad_m);

        let eps = 1e-3f32;
        // Spot-check several weights in each layer. The index walks three
        // parallel structures (layers, grads, finite differences), so a
        // range loop is the clearest spelling.
        #[allow(clippy::needless_range_loop)]
        for l in 0..3 {
            let (r, c) = (0usize, 0usize);
            let orig = net.layers()[l].weights().get(r, c);
            net.layers[l].weights_mut().set(r, c, orig + eps);
            let lp = loss_of(&net);
            net.layers[l].weights_mut().set(r, c, orig - eps);
            let lm = loss_of(&net);
            net.layers[l].weights_mut().set(r, c, orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads[l].weights.get(r, c);
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + ana.abs()),
                "layer {l}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn training_step_reduces_loss() {
        use crate::optim::{Adam, Optimizer as _};
        let mut net = small_net(21);
        let x = Matrix::from_vec(4, 4, vec![
            1.0, 1.0, 0.0, 0.0,
            0.0, 0.0, 1.0, 1.0,
            1.0, 0.0, 1.0, 0.0,
            0.0, 1.0, 0.0, 1.0,
        ]);
        let y = [1.0f32, 0.0, 1.0, 0.0];
        let mut opt = Adam::new(0.01);
        let initial = {
            let logits = net.logits_batch(&x);
            bce_with_logits(&logits, &y).0
        };
        for _ in 0..200 {
            let trace = net.forward_trace(&x);
            let logits: Vec<f32> = trace.output().data().to_vec();
            let (_, grad) = bce_with_logits(&logits, &y);
            let grad_m = Matrix::from_vec(4, 1, grad);
            let grads = net.backward(&trace, &grad_m);
            net.apply_grads(&grads, &mut opt);
        }
        let final_loss = {
            let logits = net.logits_batch(&x);
            bce_with_logits(&logits, &y).0
        };
        assert!(final_loss < initial * 0.5, "{initial} → {final_loss}");
        let _ = opt.learning_rate();
    }

    #[test]
    fn save_load_round_trip() {
        let net = small_net(13);
        let dir = std::env::temp_dir().join("klinq_nn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.json");
        net.save_json(&path).unwrap();
        let loaded = Fnn::load_json(&path).unwrap();
        assert_eq!(net, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn display_shows_architecture() {
        let s = small_net(0).to_string();
        assert!(s.contains("Fnn(4 → 6 → 3 → 1"), "{s}");
    }

    #[test]
    #[should_panic(expected = "dimension chain broken")]
    fn from_layers_checks_chain() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let a = Dense::new(4, 6, Activation::Relu, &mut rng);
        let b = Dense::new(5, 1, Activation::Identity, &mut rng);
        let _ = Fnn::from_layers(vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "single-output")]
    fn logit_requires_single_output() {
        let net = FnnBuilder::new(2).output(3).build();
        let _ = net.logit(&[0.0, 0.0]);
    }
}
