//! Loss functions: BCE-with-logits, MSE, and the KLiNQ distillation loss.
//!
//! The distillation objective is the paper's composite loss
//! `L_distill = α·L_CE + (1−α)·L_KD` (Sec. III-C), where `L_CE` is binary
//! cross-entropy between the student's predictions and the ground-truth
//! labels and `L_KD` is the mean-squared error between the
//! temperature-softened logits of teacher and student.

use crate::layer::sigmoid;

/// Binary cross-entropy with logits, numerically stable.
///
/// Returns `(mean_loss, per_sample_dL/dlogit)`. The gradient of the mean
/// loss w.r.t. logit `z_i` is `(σ(z_i) − y_i) / n`.
///
/// # Panics
///
/// Panics if slices differ in length or are empty.
///
/// # Examples
///
/// ```
/// use klinq_nn::loss::bce_with_logits;
/// let (loss, grad) = bce_with_logits(&[10.0, -10.0], &[1.0, 0.0]);
/// assert!(loss < 1e-3);       // confident & correct → tiny loss
/// assert!(grad[0].abs() < 1e-3);
/// ```
pub fn bce_with_logits(logits: &[f32], targets: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(logits.len(), targets.len(), "logits/targets length mismatch");
    assert!(!logits.is_empty(), "bce_with_logits requires at least one sample");
    let n = logits.len() as f32;
    let mut loss = 0.0f32;
    let mut grad = Vec::with_capacity(logits.len());
    for (&z, &y) in logits.iter().zip(targets) {
        // max(z,0) − z·y + ln(1 + e^{−|z|})
        loss += z.max(0.0) - z * y + (-z.abs()).exp().ln_1p();
        grad.push((sigmoid(z) - y) / n);
    }
    (loss / n, grad)
}

/// Mean squared error. Returns `(mean_loss, per_sample_dL/dpred)` where the
/// gradient is `2(p_i − t_i)/n`.
///
/// # Panics
///
/// Panics if slices differ in length or are empty.
pub fn mse(pred: &[f32], target: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(pred.len(), target.len(), "pred/target length mismatch");
    assert!(!pred.is_empty(), "mse requires at least one sample");
    let n = pred.len() as f32;
    let mut loss = 0.0f32;
    let mut grad = Vec::with_capacity(pred.len());
    for (&p, &t) in pred.iter().zip(target) {
        let d = p - t;
        loss += d * d;
        grad.push(2.0 * d / n);
    }
    (loss / n, grad)
}

/// Hyper-parameters of the composite distillation loss.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DistillParams {
    /// Weight of the supervised (hard-label) term; `1 − alpha` weighs the
    /// distillation term.
    pub alpha: f32,
    /// Softening temperature applied to both teacher and student logits.
    pub temperature: f32,
}

impl Default for DistillParams {
    fn default() -> Self {
        // α = 0.3 leans on the teacher; T = 2.5 softens enough to expose
        // the teacher's confidence structure on a binary task.
        Self {
            alpha: 0.3,
            temperature: 2.5,
        }
    }
}

impl DistillParams {
    /// Validates the parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if `alpha ∉ [0, 1]` or `temperature ≤ 0`.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.alpha),
            "alpha must be in [0, 1], got {}",
            self.alpha
        );
        assert!(
            self.temperature > 0.0,
            "temperature must be positive, got {}",
            self.temperature
        );
    }
}

/// The KLiNQ composite distillation loss.
///
/// `L = α·BCE(z_s, y) + (1−α)·MSE(σ(z_s/T), σ(z_t/T))`
///
/// Returns `(loss, dL/dz_s)`. The soft labels `σ(z_t/T)` are treated as
/// constants (no gradient flows into the teacher).
///
/// # Panics
///
/// Panics on length mismatches, empty inputs, or invalid parameters.
///
/// # Examples
///
/// ```
/// use klinq_nn::loss::{distill_loss, DistillParams};
/// let params = DistillParams { alpha: 0.5, temperature: 2.0 };
/// // Student matching both labels and teacher → small loss.
/// let (loss, _) = distill_loss(&[8.0, -8.0], &[8.0, -8.0], &[1.0, 0.0], params);
/// assert!(loss < 1e-2);
/// ```
pub fn distill_loss(
    student_logits: &[f32],
    teacher_logits: &[f32],
    targets: &[f32],
    params: DistillParams,
) -> (f32, Vec<f32>) {
    params.validate();
    assert_eq!(
        student_logits.len(),
        teacher_logits.len(),
        "student/teacher length mismatch"
    );
    let (ce, ce_grad) = bce_with_logits(student_logits, targets);
    let t = params.temperature;
    let soft_s: Vec<f32> = student_logits.iter().map(|&z| sigmoid(z / t)).collect();
    let soft_t: Vec<f32> = teacher_logits.iter().map(|&z| sigmoid(z / t)).collect();
    let (kd, kd_grad_wrt_soft) = mse(&soft_s, &soft_t);
    let a = params.alpha;
    let loss = a * ce + (1.0 - a) * kd;
    let grad = ce_grad
        .iter()
        .zip(kd_grad_wrt_soft.iter().zip(&soft_s))
        .map(|(&g_ce, (&g_kd, &s))| {
            // dσ(z/T)/dz = σ'(z/T)/T = s(1−s)/T
            let dsoft_dz = s * (1.0 - s) / t;
            a * g_ce + (1.0 - a) * g_kd * dsoft_dz
        })
        .collect();
    (loss, grad)
}

/// Classification accuracy of logits against binary targets (threshold 0).
///
/// # Panics
///
/// Panics if slices differ in length or are empty.
pub fn accuracy(logits: &[f32], targets: &[f32]) -> f64 {
    assert_eq!(logits.len(), targets.len(), "logits/targets length mismatch");
    assert!(!logits.is_empty(), "accuracy requires at least one sample");
    let correct = logits
        .iter()
        .zip(targets)
        .filter(|(&z, &y)| (z > 0.0) == (y > 0.5))
        .count();
    correct as f64 / logits.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(
        f: &dyn Fn(&[f32]) -> f32,
        x: &[f32],
        analytic: &[f32],
        tol: f32,
    ) {
        let eps = 1e-3f32;
        let mut xv = x.to_vec();
        for i in 0..x.len() {
            let orig = xv[i];
            xv[i] = orig + eps;
            let lp = f(&xv);
            xv[i] = orig - eps;
            let lm = f(&xv);
            xv[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - analytic[i]).abs() < tol,
                "grad[{i}]: numeric {num} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn bce_reference_values() {
        // z = 0 → loss = ln 2 regardless of label.
        let (loss, _) = bce_with_logits(&[0.0], &[1.0]);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-6);
        // Confident wrong prediction → loss ≈ |z|.
        let (loss, _) = bce_with_logits(&[-10.0], &[1.0]);
        assert!((loss - 10.0).abs() < 1e-3);
    }

    #[test]
    fn bce_is_stable_for_huge_logits() {
        let (loss, grad) = bce_with_logits(&[500.0, -500.0], &[0.0, 1.0]);
        assert!(loss.is_finite());
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn bce_gradient_matches_finite_differences() {
        let z = [0.7f32, -1.3, 2.0, 0.0];
        let y = [1.0f32, 0.0, 0.0, 1.0];
        let (_, grad) = bce_with_logits(&z, &y);
        finite_diff_check(&|zv| bce_with_logits(zv, &y).0, &z, &grad, 1e-3);
    }

    #[test]
    fn mse_reference_and_gradient() {
        let (loss, grad) = mse(&[1.0, 3.0], &[0.0, 1.0]);
        assert!((loss - 2.5).abs() < 1e-6); // (1 + 4)/2
        assert_eq!(grad, vec![1.0, 2.0]); // 2d/n
        let p = [0.3f32, -0.9, 1.5];
        let t = [0.1f32, 0.2, -0.4];
        let (_, g) = mse(&p, &t);
        finite_diff_check(&|pv| mse(pv, &t).0, &p, &g, 1e-3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bce_rejects_mismatch() {
        let _ = bce_with_logits(&[0.0], &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn mse_rejects_empty() {
        let _ = mse(&[], &[]);
    }

    #[test]
    fn distill_gradient_matches_finite_differences() {
        let zs = [0.4f32, -0.8, 1.6, -2.2];
        let zt = [2.0f32, -1.0, 0.5, -3.0];
        let y = [1.0f32, 0.0, 1.0, 0.0];
        let params = DistillParams {
            alpha: 0.3,
            temperature: 2.5,
        };
        let (_, grad) = distill_loss(&zs, &zt, &y, params);
        finite_diff_check(
            &|z| distill_loss(z, &zt, &y, params).0,
            &zs,
            &grad,
            1e-3,
        );
    }

    #[test]
    fn alpha_extremes_reduce_to_components() {
        let zs = [0.4f32, -0.8];
        let zt = [2.0f32, -1.0];
        let y = [1.0f32, 0.0];
        // α = 1 → pure BCE.
        let (l1, g1) = distill_loss(&zs, &zt, &y, DistillParams { alpha: 1.0, temperature: 2.0 });
        let (ce, ce_g) = bce_with_logits(&zs, &y);
        assert!((l1 - ce).abs() < 1e-6);
        for (a, b) in g1.iter().zip(&ce_g) {
            assert!((a - b).abs() < 1e-6);
        }
        // α = 0 → pure KD: loss is zero iff student matches teacher.
        let (l0, _) = distill_loss(&zt, &zt, &y, DistillParams { alpha: 0.0, temperature: 2.0 });
        assert!(l0 < 1e-9);
    }

    #[test]
    fn temperature_softens_kd_gradients() {
        let zs = [3.0f32];
        let zt = [-3.0f32];
        let y = [0.0f32];
        let cold = distill_loss(&zs, &zt, &y, DistillParams { alpha: 0.0, temperature: 1.0 }).0;
        let hot = distill_loss(&zs, &zt, &y, DistillParams { alpha: 0.0, temperature: 10.0 }).0;
        // At high temperature both sigmoids approach 0.5 → smaller loss.
        assert!(hot < cold);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn distill_rejects_bad_alpha() {
        let _ = distill_loss(&[0.0], &[0.0], &[0.0], DistillParams { alpha: 1.5, temperature: 1.0 });
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn distill_rejects_bad_temperature() {
        let _ = distill_loss(&[0.0], &[0.0], &[0.0], DistillParams { alpha: 0.5, temperature: 0.0 });
    }

    #[test]
    fn accuracy_reference() {
        let acc = accuracy(&[1.0, -1.0, 2.0, -2.0], &[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(acc, 0.75);
    }
}
