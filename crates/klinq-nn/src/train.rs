//! Mini-batch training loops for supervised and distillation objectives.

use crate::loss::{accuracy, bce_with_logits, distill_loss, DistillParams};
use crate::matrix::Matrix;
use crate::network::Fnn;
use crate::optim::{Adam, Optimizer, Sgd};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A labelled binary-classification dataset (features + 0/1 targets).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    x: Matrix,
    y: Vec<f32>,
}

/// Error constructing a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// No samples were provided.
    Empty,
    /// Feature and label counts differ.
    LabelCountMismatch {
        /// Number of feature rows.
        features: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Feature rows are ragged.
    RaggedRows,
    /// A label is outside {0, 1} (within tolerance).
    InvalidLabel(usize),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "dataset has no samples"),
            Self::LabelCountMismatch { features, labels } => {
                write!(f, "feature rows ({features}) and labels ({labels}) differ")
            }
            Self::RaggedRows => write!(f, "feature rows have inconsistent dimensions"),
            Self::InvalidLabel(i) => write!(f, "label at index {i} is not 0 or 1"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Builds from feature rows and binary labels.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] on empty input, ragged rows, mismatched
    /// label count, or non-binary labels.
    pub fn from_rows(rows: &[Vec<f32>], labels: &[f32]) -> Result<Self, DatasetError> {
        if rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        if rows.len() != labels.len() {
            return Err(DatasetError::LabelCountMismatch {
                features: rows.len(),
                labels: labels.len(),
            });
        }
        let dim = rows[0].len();
        if rows.iter().any(|r| r.len() != dim) {
            return Err(DatasetError::RaggedRows);
        }
        for (i, &y) in labels.iter().enumerate() {
            if !(y == 0.0 || y == 1.0) {
                return Err(DatasetError::InvalidLabel(i));
            }
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Ok(Self {
            x: Matrix::from_rows(&refs),
            y: labels.to_vec(),
        })
    }

    /// Builds from an existing matrix and labels.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] on count mismatch or non-binary labels.
    pub fn from_matrix(x: Matrix, y: Vec<f32>) -> Result<Self, DatasetError> {
        if x.rows() == 0 {
            return Err(DatasetError::Empty);
        }
        if x.rows() != y.len() {
            return Err(DatasetError::LabelCountMismatch {
                features: x.rows(),
                labels: y.len(),
            });
        }
        for (i, &v) in y.iter().enumerate() {
            if !(v == 0.0 || v == 1.0) {
                return Err(DatasetError::InvalidLabel(i));
            }
        }
        Ok(Self { x, y })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// `true` if the dataset has no samples (cannot occur post-construction).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// The feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.x
    }

    /// The labels.
    pub fn labels(&self) -> &[f32] {
        &self.y
    }

    /// Extracts the rows at `indices` as a `(features, labels)` batch.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn batch(&self, indices: &[usize]) -> (Matrix, Vec<f32>) {
        let rows: Vec<&[f32]> = indices.iter().map(|&i| self.x.row(i)).collect();
        let labels: Vec<f32> = indices.iter().map(|&i| self.y[i]).collect();
        (Matrix::from_rows(&rows), labels)
    }
}

/// Which optimizer a [`TrainConfig`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// SGD with the given momentum.
    Sgd {
        /// Classical momentum coefficient in `[0, 1)`.
        momentum: f32,
    },
    /// Adam with default betas.
    Adam,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Optimizer learning rate.
    pub learning_rate: f32,
    /// L2 weight decay applied to weight matrices (never biases).
    /// Essential for the raw-trace teacher, whose input dimension rivals
    /// the shot count.
    pub weight_decay: f32,
    /// Optimizer selection.
    pub optimizer: OptimizerKind,
    /// Shuffle seed (training is fully deterministic given the seed).
    pub shuffle_seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 20,
            batch_size: 64,
            learning_rate: 1e-3,
            weight_decay: 0.0,
            optimizer: OptimizerKind::Adam,
            shuffle_seed: 0,
        }
    }
}

impl TrainConfig {
    fn make_optimizer(&self) -> Box<dyn Optimizer> {
        match self.optimizer {
            OptimizerKind::Sgd { momentum } => {
                Box::new(Sgd::new(self.learning_rate).with_momentum(momentum))
            }
            OptimizerKind::Adam => Box::new(Adam::new(self.learning_rate)),
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training-set accuracy after the final epoch.
    pub final_train_accuracy: f64,
}

impl TrainReport {
    /// Loss of the final epoch (NaN if no epochs ran).
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Trains `net` on `data` with binary cross-entropy.
///
/// # Panics
///
/// Panics if the dataset dimension differs from the network input
/// dimension, or the network is not single-output.
pub fn train_supervised(net: &mut Fnn, data: &Dataset, cfg: &TrainConfig) -> TrainReport {
    train_inner(net, data, cfg, None)
}

/// Trains `net` with the KLiNQ distillation objective.
///
/// `teacher_logits[i]` must be the teacher's logit for sample `i` of
/// `data`, computed once by the caller (the teacher is frozen during
/// distillation).
///
/// # Panics
///
/// Panics if `teacher_logits.len() != data.len()` or on the same dimension
/// mismatches as [`train_supervised`].
pub fn train_distilled(
    net: &mut Fnn,
    data: &Dataset,
    teacher_logits: &[f32],
    params: DistillParams,
    cfg: &TrainConfig,
) -> TrainReport {
    assert_eq!(
        teacher_logits.len(),
        data.len(),
        "teacher logits must cover the training set"
    );
    train_inner(net, data, cfg, Some((teacher_logits, params)))
}

fn train_inner(
    net: &mut Fnn,
    data: &Dataset,
    cfg: &TrainConfig,
    distill: Option<(&[f32], DistillParams)>,
) -> TrainReport {
    assert_eq!(
        data.dim(),
        net.input_dim(),
        "dataset dimension {} does not match network input {}",
        data.dim(),
        net.input_dim()
    );
    assert_eq!(net.output_dim(), 1, "training requires a single-output network");
    assert!(cfg.epochs > 0, "epochs must be positive");
    assert!(cfg.batch_size > 0, "batch size must be positive");

    let mut opt = cfg.make_optimizer();
    let mut rng = StdRng::seed_from_u64(cfg.shuffle_seed);
    let mut indices: Vec<usize> = (0..data.len()).collect();
    let batch_size = cfg.batch_size.min(data.len());
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for _ in 0..cfg.epochs {
        indices.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in indices.chunks(batch_size) {
            let (bx, by) = data.batch(chunk);
            let trace = net.forward_trace(&bx);
            let logits: Vec<f32> = trace.output().data().to_vec();
            let (loss, grad) = match distill {
                None => bce_with_logits(&logits, &by),
                Some((teacher, params)) => {
                    let bt: Vec<f32> = chunk.iter().map(|&i| teacher[i]).collect();
                    distill_loss(&logits, &bt, &by, params)
                }
            };
            let grad_m = Matrix::from_vec(grad.len(), 1, grad);
            let mut grads = net.backward(&trace, &grad_m);
            if cfg.weight_decay > 0.0 {
                for (g, layer) in grads.iter_mut().zip(net.layers()) {
                    for (gw, &w) in g.weights.data_mut().iter_mut().zip(layer.weights().data()) {
                        *gw += cfg.weight_decay * w;
                    }
                }
            }
            net.apply_grads(&grads, opt.as_mut());
            epoch_loss += loss as f64;
            batches += 1;
        }
        epoch_losses.push((epoch_loss / batches.max(1) as f64) as f32);
    }

    let final_train_accuracy = evaluate_accuracy(net, data);
    TrainReport {
        epoch_losses,
        final_train_accuracy,
    }
}

/// Classification accuracy of `net` on `data`.
///
/// # Panics
///
/// Panics if dimensions mismatch.
pub fn evaluate_accuracy(net: &Fnn, data: &Dataset) -> f64 {
    let logits = net.logits_batch(data.features());
    accuracy(&logits, data.labels())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::network::FnnBuilder;

    /// Two well-separated Gaussian-ish blobs in 2D (deterministic).
    fn blobs(n: usize) -> Dataset {
        let mut rows = Vec::with_capacity(2 * n);
        let mut labels = Vec::with_capacity(2 * n);
        for k in 0..n {
            let jitter = ((k * 37 % 17) as f32 - 8.0) * 0.05;
            rows.push(vec![1.5 + jitter, 1.0 - jitter]);
            labels.push(1.0);
            rows.push(vec![-1.5 - jitter, -1.0 + jitter]);
            labels.push(0.0);
        }
        Dataset::from_rows(&rows, &labels).unwrap()
    }

    fn classifier(seed: u64) -> Fnn {
        FnnBuilder::new(2)
            .hidden(8, Activation::Relu)
            .output(1)
            .seed(seed)
            .build()
    }

    #[test]
    fn dataset_validation() {
        assert_eq!(Dataset::from_rows(&[], &[]), Err(DatasetError::Empty));
        assert_eq!(
            Dataset::from_rows(&[vec![0.0]], &[]),
            Err(DatasetError::LabelCountMismatch {
                features: 1,
                labels: 0
            })
        );
        assert_eq!(
            Dataset::from_rows(&[vec![0.0], vec![0.0, 1.0]], &[0.0, 1.0]),
            Err(DatasetError::RaggedRows)
        );
        assert_eq!(
            Dataset::from_rows(&[vec![0.0]], &[0.5]),
            Err(DatasetError::InvalidLabel(0))
        );
        let err = DatasetError::RaggedRows;
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn dataset_accessors_and_batching() {
        let d = blobs(4);
        assert_eq!(d.len(), 8);
        assert!(!d.is_empty());
        assert_eq!(d.dim(), 2);
        let (bx, by) = d.batch(&[0, 3, 5]);
        assert_eq!(bx.rows(), 3);
        assert_eq!(by.len(), 3);
        assert_eq!(bx.row(0), d.features().row(0));
        assert_eq!(by[1], d.labels()[3]);
    }

    #[test]
    fn supervised_training_learns_blobs() {
        let data = blobs(64);
        let mut net = classifier(3);
        let cfg = TrainConfig {
            epochs: 60,
            batch_size: 16,
            learning_rate: 0.01,
            ..TrainConfig::default()
        };
        let report = train_supervised(&mut net, &data, &cfg);
        // klinq-lint: allow(stat-floor-locality) klinq-nn sits upstream of klinq-core and cannot import its stat_floors; NN-local training floor
        assert!(report.final_train_accuracy > 0.98, "{report:?}");
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn sgd_also_learns() {
        let data = blobs(64);
        let mut net = classifier(5);
        let cfg = TrainConfig {
            epochs: 80,
            batch_size: 16,
            learning_rate: 0.05,
            optimizer: OptimizerKind::Sgd { momentum: 0.9 },
            ..TrainConfig::default()
        };
        let report = train_supervised(&mut net, &data, &cfg);
        // klinq-lint: allow(stat-floor-locality) klinq-nn sits upstream of klinq-core and cannot import its stat_floors; NN-local training floor
        assert!(report.final_train_accuracy > 0.95, "{report:?}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = blobs(32);
        let cfg = TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        };
        let mut a = classifier(1);
        let mut b = classifier(1);
        let ra = train_supervised(&mut a, &data, &cfg);
        let rb = train_supervised(&mut b, &data, &cfg);
        assert_eq!(a, b);
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
    }

    #[test]
    fn distillation_transfers_teacher_behaviour() {
        let data = blobs(64);
        // Train a "teacher".
        let mut teacher = FnnBuilder::new(2)
            .hidden(16, Activation::Relu)
            .hidden(8, Activation::Relu)
            .output(1)
            .seed(11)
            .build();
        let cfg = TrainConfig {
            epochs: 60,
            batch_size: 16,
            learning_rate: 0.01,
            ..TrainConfig::default()
        };
        train_supervised(&mut teacher, &data, &cfg);
        let teacher_logits = teacher.logits_batch(data.features());

        // Distill into a smaller student.
        let mut student = FnnBuilder::new(2)
            .hidden(4, Activation::Relu)
            .output(1)
            .seed(12)
            .build();
        let report = train_distilled(
            &mut student,
            &data,
            &teacher_logits,
            DistillParams::default(),
            &cfg,
        );
        // klinq-lint: allow(stat-floor-locality) klinq-nn sits upstream of klinq-core and cannot import its stat_floors; NN-local training floor
        assert!(report.final_train_accuracy > 0.95, "{report:?}");
    }

    #[test]
    #[should_panic(expected = "teacher logits must cover")]
    fn distillation_checks_logit_count() {
        let data = blobs(8);
        let mut net = classifier(0);
        let _ = train_distilled(
            &mut net,
            &data,
            &[0.0; 3],
            DistillParams::default(),
            &TrainConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "does not match network input")]
    fn training_checks_dimensions() {
        let data = blobs(8);
        let mut net = FnnBuilder::new(3).output(1).build();
        let _ = train_supervised(&mut net, &data, &TrainConfig::default());
    }

    #[test]
    fn weight_decay_shrinks_weight_norms() {
        let data = blobs(64);
        let cfg_plain = TrainConfig {
            epochs: 60,
            batch_size: 16,
            learning_rate: 0.01,
            ..TrainConfig::default()
        };
        let cfg_decay = TrainConfig {
            weight_decay: 0.01,
            ..cfg_plain
        };
        let mut plain = classifier(6);
        let mut decayed = classifier(6);
        train_supervised(&mut plain, &data, &cfg_plain);
        train_supervised(&mut decayed, &data, &cfg_decay);
        let norm = |net: &Fnn| -> f32 {
            net.layers()
                .iter()
                .map(|l| l.weights().frobenius_norm())
                .sum()
        };
        assert!(norm(&decayed) < norm(&plain));
        // Biases are untouched by decay in expectation: the decayed model
        // still learns the task.
        // klinq-lint: allow(stat-floor-locality) klinq-nn sits upstream of klinq-core and cannot import its stat_floors; NN-local training floor
        assert!(evaluate_accuracy(&decayed, &data) > 0.9);
    }

    #[test]
    fn batch_size_larger_than_dataset_is_clamped() {
        let data = blobs(4);
        let mut net = classifier(2);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 1000,
            ..TrainConfig::default()
        };
        let report = train_supervised(&mut net, &data, &cfg);
        assert_eq!(report.epoch_losses.len(), 2);
    }
}
