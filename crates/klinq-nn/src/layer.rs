//! Dense layers and activation functions.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation function applied element-wise after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Activation {
    /// No non-linearity (used on output/logit layers).
    #[default]
    Identity,
    /// Rectified linear unit, `max(0, x)` — the paper's hidden-layer
    /// activation (it maps to a sign-bit check in hardware).
    Relu,
    /// Logistic sigmoid (used to form soft labels, not in the FPGA path).
    Sigmoid,
}

impl Activation {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Self::Identity => x,
            Self::Relu => x.max(0.0),
            Self::Sigmoid => sigmoid(x),
        }
    }

    /// Derivative with respect to the pre-activation, given the
    /// pre-activation value `z`.
    #[inline]
    pub fn derivative(self, z: f32) -> f32 {
        match self {
            Self::Identity => 1.0,
            Self::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Self::Sigmoid => {
                let s = sigmoid(z);
                s * (1.0 - s)
            }
        }
    }

    /// Applies in place over a matrix.
    pub fn apply_matrix(self, m: &mut Matrix) {
        if self == Self::Identity {
            return;
        }
        for x in m.data_mut() {
            *x = self.apply(*x);
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// A fully connected layer `y = act(W·x + b)` with `W` stored as
/// `output_dim × input_dim` (each row is one neuron's weights, matching the
/// FPGA's per-neuron weight memories).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f32>,
    activation: Activation,
}

impl Dense {
    /// Creates a layer with He-uniform initialized weights and zero biases.
    ///
    /// He initialization (`±sqrt(6/fan_in)`) suits the ReLU hidden layers;
    /// it also behaves fine for the identity output layer at these sizes.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(input_dim: usize, output_dim: usize, activation: Activation, rng: &mut StdRng) -> Self {
        assert!(input_dim > 0 && output_dim > 0, "layer dimensions must be positive");
        let bound = (6.0 / input_dim as f32).sqrt();
        let data: Vec<f32> = (0..input_dim * output_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self {
            weights: Matrix::from_vec(output_dim, input_dim, data),
            bias: vec![0.0; output_dim],
            activation,
        }
    }

    /// Builds a layer from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weights.rows()`.
    pub fn from_parts(weights: Matrix, bias: Vec<f32>, activation: Activation) -> Self {
        assert_eq!(bias.len(), weights.rows(), "bias length must equal output dim");
        Self {
            weights,
            bias,
            activation,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimension (neuron count).
    pub fn output_dim(&self) -> usize {
        self.weights.rows()
    }

    /// The activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Weight matrix (`output_dim × input_dim`).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutable weight matrix (for the optimizer).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias vector (for the optimizer).
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Parameter count (`weights + biases`).
    pub fn num_params(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    /// Batch forward pass. Returns `(z, a)`: pre-activations and
    /// activations, both `batch × output_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, Matrix) {
        let mut z = x.matmul_bt(&self.weights);
        z.add_row_broadcast(&self.bias);
        let mut a = z.clone();
        self.activation.apply_matrix(&mut a);
        (z, a)
    }

    /// Single-sample forward pass into a caller buffer (inference hot path).
    ///
    /// # Panics
    ///
    /// Panics if buffer sizes do not match the layer dimensions.
    pub fn forward_single(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        assert_eq!(out.len(), self.output_dim(), "output buffer mismatch");
        for (o, (w_row, &b)) in out
            .iter_mut()
            .zip(self.weights.iter_rows().zip(&self.bias))
        {
            let mut acc = b;
            for (&wi, &xi) in w_row.iter().zip(x) {
                acc += wi * xi;
            }
            *o = self.activation.apply(acc);
        }
    }

    /// Batched inference forward pass into a caller matrix (resized to
    /// `x.rows() × output_dim`) — the GEMM stage of the serving path.
    ///
    /// Runs the whole batch as one register-blocked
    /// [`Matrix::gemm_block`] (`batch × in × out`, four rows per packed
    /// weight pass) and applies the activation element-wise afterwards.
    /// `wt` is the reusable packed-weight scratch. Every accumulator sums
    /// in exactly the single-sample order (bias first, then products in
    /// input order), so each output row is **bitwise-identical** to
    /// [`Self::forward_single`] on the matching input row, for any batch
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim`.
    pub fn forward_infer_into(&self, x: &Matrix, out: &mut Matrix, wt: &mut Vec<f32>) {
        assert_eq!(x.cols(), self.input_dim(), "input dimension mismatch");
        x.gemm_block(&self.weights, &self.bias, out, wt);
        self.activation.apply_matrix(out);
    }

    /// Backward pass.
    ///
    /// Given the cached input `x`, pre-activation `z`, and the upstream
    /// gradient `grad_out = ∂L/∂a` (all batch-major), computes:
    /// - `grad_w = ∂L/∂W`, `grad_b = ∂L/∂b` (averaged over the batch is the
    ///   caller's choice — this returns sums; trainers divide by batch),
    /// - `grad_in = ∂L/∂x` for the previous layer.
    pub fn backward(
        &self,
        x: &Matrix,
        z: &Matrix,
        grad_out: &Matrix,
    ) -> LayerGrads {
        // dZ = dA ⊙ act'(Z)
        let mut dz = grad_out.clone();
        if self.activation != Activation::Identity {
            for (g, &zv) in dz.data_mut().iter_mut().zip(z.data()) {
                *g *= self.activation.derivative(zv);
            }
        }
        let grad_w = dz.matmul_at(x); // (out × batch)·(batch × in) = out × in
        let grad_b = dz.col_sums();
        let grad_in = dz.matmul(&self.weights); // (batch × out)·(out × in)
        LayerGrads {
            weights: grad_w,
            bias: grad_b,
            input: grad_in,
        }
    }
}

/// Gradients produced by [`Dense::backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGrads {
    /// `∂L/∂W`, summed over the batch.
    pub weights: Matrix,
    /// `∂L/∂b`, summed over the batch.
    pub bias: Vec<f32>,
    /// `∂L/∂x`, per-sample.
    pub input: Matrix,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn activations_reference_values() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Identity.apply(-7.5), -7.5);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-7);
        assert!(Activation::Sigmoid.apply(20.0) > 0.999_99);
        assert!(Activation::Sigmoid.apply(-20.0) < 1e-5);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(-200.0), 0.0);
        assert_eq!(sigmoid(200.0), 1.0);
        assert!(sigmoid(-200.0).is_finite());
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for act in [Activation::Identity, Activation::Relu, Activation::Sigmoid] {
            for z in [-2.0f32, -0.5, 0.3, 1.7] {
                let num = (act.apply(z + eps) - act.apply(z - eps)) / (2.0 * eps);
                let ana = act.derivative(z);
                assert!(
                    (num - ana).abs() < 1e-2,
                    "{act:?} at {z}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn forward_matches_manual_computation() {
        let w = Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]);
        let layer = Dense::from_parts(w, vec![1.0, -1.0], Activation::Relu);
        let x = Matrix::from_vec(1, 3, vec![2.0, 3.0, 4.0]);
        let (z, a) = layer.forward(&x);
        // z0 = 2 - 4 + 1 = -1 → relu 0; z1 = 1 + 1.5 + 2 - 1 = 3.5.
        assert_eq!(z.row(0), &[-1.0, 3.5]);
        assert_eq!(a.row(0), &[0.0, 3.5]);
    }

    #[test]
    fn forward_single_matches_batch() {
        let mut rng = StdRng::seed_from_u64(11);
        let layer = Dense::new(5, 3, Activation::Relu, &mut rng);
        let x = [0.3f32, -0.7, 1.2, 0.0, -2.5];
        let xm = Matrix::from_rows(&[&x]);
        let (_, a) = layer.forward(&xm);
        let mut out = [0.0f32; 3];
        layer.forward_single(&x, &mut out);
        for (s, b) in out.iter().zip(a.row(0)) {
            assert!((s - b).abs() < 1e-6);
        }
    }

    #[test]
    fn forward_infer_into_is_bitwise_identical_to_forward_single() {
        let mut rng = StdRng::seed_from_u64(17);
        let layer = Dense::new(11, 5, Activation::Relu, &mut rng);
        // Cover lane-partial outputs and assorted batch sizes.
        let mut wt = Vec::new();
        for rows in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 21] {
            let data: Vec<f32> = (0..rows * 11).map(|i| ((i * 37) as f32 * 0.01).sin()).collect();
            let x = Matrix::from_vec(rows, 11, data);
            let mut out = Matrix::zeros(0, 0);
            layer.forward_infer_into(&x, &mut out, &mut wt);
            assert_eq!(out.rows(), rows);
            let mut reference = vec![0.0f32; 5];
            for r in 0..rows {
                layer.forward_single(x.row(r), &mut reference);
                assert_eq!(out.row(r), &reference[..], "row {r} of {rows} diverged");
            }
        }
        // Multi-block outputs (37 neurons spans two full lane blocks plus
        // a partial one).
        let wide = Dense::new(7, 37, Activation::Identity, &mut rng);
        let x = Matrix::from_vec(3, 7, (0..21).map(|i| (i as f32 * 0.3).cos()).collect());
        let mut out = Matrix::zeros(0, 0);
        wide.forward_infer_into(&x, &mut out, &mut wt);
        let mut reference = vec![0.0f32; 37];
        for r in 0..3 {
            wide.forward_single(x.row(r), &mut reference);
            assert_eq!(out.row(r), &reference[..], "wide row {r} diverged");
        }
    }

    #[test]
    fn he_init_is_bounded_and_seeded() {
        let mut rng = StdRng::seed_from_u64(3);
        let l1 = Dense::new(100, 10, Activation::Relu, &mut rng);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(l1.weights().data().iter().all(|&w| w.abs() <= bound));
        assert!(l1.bias().iter().all(|&b| b == 0.0));
        // Same seed → same weights.
        let mut rng2 = StdRng::seed_from_u64(3);
        let l2 = Dense::new(100, 10, Activation::Relu, &mut rng2);
        assert_eq!(l1.weights(), l2.weights());
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Dense::new(31, 16, Activation::Relu, &mut rng);
        assert_eq!(l.num_params(), 31 * 16 + 16);
    }

    /// Numerical gradient check of the full layer backward pass.
    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut layer = Dense::new(4, 3, Activation::Relu, &mut rng);
        let x = Matrix::from_vec(2, 4, vec![0.5, -1.0, 2.0, 0.3, -0.2, 0.8, -1.5, 1.1]);

        // Scalar loss L = sum(a). Then dL/da = 1.
        let loss = |layer: &Dense, x: &Matrix| -> f32 {
            let (_, a) = layer.forward(x);
            a.data().iter().sum()
        };

        let (z, a) = layer.forward(&x);
        let ones = Matrix::from_vec(a.rows(), a.cols(), vec![1.0; a.rows() * a.cols()]);
        let grads = layer.backward(&x, &z, &ones);

        let eps = 1e-3f32;
        // Check a few weight entries.
        for (r, c) in [(0usize, 0usize), (1, 2), (2, 3)] {
            let orig = layer.weights().get(r, c);
            layer.weights_mut().set(r, c, orig + eps);
            let lp = loss(&layer, &x);
            layer.weights_mut().set(r, c, orig - eps);
            let lm = loss(&layer, &x);
            layer.weights_mut().set(r, c, orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.weights.get(r, c);
            assert!((num - ana).abs() < 2e-2, "w[{r},{c}]: {num} vs {ana}");
        }
        // Check biases.
        for i in 0..3 {
            let orig = layer.bias()[i];
            layer.bias_mut()[i] = orig + eps;
            let lp = loss(&layer, &x);
            layer.bias_mut()[i] = orig - eps;
            let lm = loss(&layer, &x);
            layer.bias_mut()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grads.bias[i]).abs() < 2e-2, "b[{i}]");
        }
    }

    #[test]
    fn backward_input_grads_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Dense::new(3, 2, Activation::Sigmoid, &mut rng);
        let mut xv = vec![0.2f32, -0.4, 0.9];
        let loss = |layer: &Dense, xv: &[f32]| -> f32 {
            let (_, a) = layer.forward(&Matrix::from_rows(&[xv]));
            a.data().iter().sum()
        };
        let x = Matrix::from_rows(&[&xv]);
        let (z, a) = layer.forward(&x);
        let ones = Matrix::from_vec(1, a.cols(), vec![1.0; a.cols()]);
        let grads = layer.backward(&x, &z, &ones);
        let eps = 1e-3f32;
        for i in 0..3 {
            let orig = xv[i];
            xv[i] = orig + eps;
            let lp = loss(&layer, &xv);
            xv[i] = orig - eps;
            let lm = loss(&layer, &xv);
            xv[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grads.input.get(0, i)).abs() < 1e-2, "x[{i}]");
        }
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Dense::new(0, 4, Activation::Relu, &mut rng);
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn from_parts_checks_bias_len() {
        let _ = Dense::from_parts(Matrix::zeros(2, 3), vec![0.0; 3], Activation::Relu);
    }
}
