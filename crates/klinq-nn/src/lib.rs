//! A from-scratch feed-forward neural network library for KLiNQ.
//!
//! The KLiNQ paper trains a large teacher FNN on raw readout traces and
//! distills it into per-qubit student FNNs small enough for an FPGA. This
//! crate provides everything those steps need, with no external ML
//! dependencies:
//!
//! - [`matrix`] — a minimal row-major `f32` matrix with the GEMM variants
//!   the forward/backward passes require.
//! - [`layer`] — dense layers and activations (ReLU, sigmoid, identity).
//! - [`loss`] — binary cross-entropy with logits, MSE, and the paper's
//!   composite distillation loss `α·L_CE + (1−α)·L_KD`.
//! - [`optim`] — SGD with momentum and Adam.
//! - [`network`] — the [`Fnn`] container with forward,
//!   backward, prediction and serde persistence.
//! - [`train`] — mini-batch trainers for supervised and distillation
//!   objectives, plus dataset containers.
//!
//! # Examples
//!
//! Train a tiny network on XOR:
//!
//! ```
//! use klinq_nn::network::FnnBuilder;
//! use klinq_nn::layer::Activation;
//! use klinq_nn::train::{Dataset, TrainConfig, train_supervised};
//!
//! let x = vec![
//!     vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0],
//! ];
//! let y = vec![0.0, 1.0, 1.0, 0.0];
//! let data = Dataset::from_rows(&x, &y)?;
//! let mut net = FnnBuilder::new(2)
//!     .hidden(8, Activation::Relu)
//!     .output(1)
//!     .seed(1)
//!     .build();
//! let cfg = TrainConfig { epochs: 800, batch_size: 4, learning_rate: 0.1, ..TrainConfig::default() };
//! train_supervised(&mut net, &data, &cfg);
//! assert!(net.predict(&[0.0, 1.0]));
//! assert!(!net.predict(&[1.0, 1.0]));
//! # Ok::<(), klinq_nn::train::DatasetError>(())
//! ```

#![forbid(unsafe_code)]

pub mod layer;
pub mod loss;
pub mod matrix;
pub mod multi;
pub mod network;
pub mod optim;
pub mod train;

pub use layer::{Activation, Dense};
pub use matrix::Matrix;
pub use multi::{train_supervised_multi, MultiDataset};
pub use network::{BatchScratch, Fnn, FnnBuilder, InferenceScratch};
pub use optim::{Adam, Optimizer, Sgd};
pub use train::{Dataset, TrainConfig, TrainReport};
