//! Minimal row-major `f32` matrix with the GEMM variants training needs.
//!
//! Three multiply kernels cover every pass of backpropagation without ever
//! materializing a transpose:
//!
//! - [`Matrix::matmul`]: `C = A · B` (forward with pre-transposed weights)
//! - [`Matrix::matmul_bt`]: `C = A · Bᵀ` (forward: `X · Wᵀ`; input grads)
//! - [`Matrix::matmul_at`]: `C = Aᵀ · B` (weight grads: `dZᵀ · X`)
//!
//! All kernels use i-k-j loop order over row-major storage so the inner
//! loop streams contiguously.
//!
//! A fourth kernel, [`Matrix::gemm_block`], is the inference-serving GEMM:
//! a register-blocked `C = A · Bᵀ + bias` that processes
//! [`ROW_BLOCK`] × [`LANES`] output tiles per pass so a whole batch runs
//! as one `B × in × out` multiply instead of `B` independent GEMVs, while
//! every accumulator keeps the exact bias-first, input-order summation of
//! the single-sample path.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Neuron-lane width of the blocked inference GEMM: 16 `f32` accumulator
/// lanes — two AVX2 registers — per output tile column block.
pub const LANES: usize = 16;

/// Row-block height of the blocked inference GEMM micro-kernel: four
/// batch rows share each packed-weight load.
pub const ROW_BLOCK: usize = 4;

/// A dense row-major `f32` matrix.
///
/// # Examples
///
/// ```
/// use klinq_nn::Matrix;
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Wraps a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows in from_rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Iterator over mutable row slices.
    pub fn iter_rows_mut(&mut self) -> impl Iterator<Item = &mut [f32]> {
        self.data.chunks_exact_mut(self.cols)
    }

    /// Reshapes in place to `rows × cols`, zero-filled, keeping any
    /// existing allocation (the inference hot path reuses one matrix
    /// across batches).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// `C = A · B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != b.rows`.
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, b.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, b.rows, b.cols
        );
        let mut c = Matrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let c_row = &mut c.data[i * b.cols..(i + 1) * b.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &b.data[k * b.cols..(k + 1) * b.cols];
                for (c_ij, &b_kj) in c_row.iter_mut().zip(b_row) {
                    *c_ij += a_ik * b_kj;
                }
            }
        }
        c
    }

    /// `C = A · Bᵀ` — the forward-pass kernel (`X · Wᵀ`) and the input-grad
    /// kernel, without materializing `Bᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != b.cols`.
    pub fn matmul_bt(&self, b: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, b.cols,
            "matmul_bt shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, b.rows, b.cols
        );
        let mut c = Matrix::zeros(self.rows, b.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let c_row = &mut c.data[i * b.rows..(i + 1) * b.rows];
            for (j, c_ij) in c_row.iter_mut().enumerate() {
                let b_row = &b.data[j * b.cols..(j + 1) * b.cols];
                let mut acc = 0.0f32;
                for (&x, &w) in a_row.iter().zip(b_row) {
                    acc += x * w;
                }
                *c_ij = acc;
            }
        }
        c
    }

    /// `C = Aᵀ · B` — the weight-gradient kernel (`dZᵀ · X`), without
    /// materializing `Aᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != b.rows`.
    pub fn matmul_at(&self, b: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, b.rows,
            "matmul_at shape mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, b.rows, b.cols
        );
        let mut c = Matrix::zeros(self.cols, b.cols);
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let b_row = &b.data[k * b.cols..(k + 1) * b.cols];
            for (i, &a_ki) in a_row.iter().enumerate() {
                if a_ki == 0.0 {
                    continue;
                }
                let c_row = &mut c.data[i * b.cols..(i + 1) * b.cols];
                for (c_ij, &b_kj) in c_row.iter_mut().zip(b_row) {
                    *c_ij += a_ki * b_kj;
                }
            }
        }
        c
    }

    /// Register-blocked inference GEMM: `C = A · Bᵀ + bias`, with the bias
    /// broadcast across rows and **seeded first** into every accumulator.
    ///
    /// `b` (e.g. a layer's `output_dim × input_dim` weights) is packed once
    /// per call into `packed` in lane-blocked, input-major order; the
    /// micro-kernel then computes [`ROW_BLOCK`] × [`LANES`] output tiles,
    /// so one pass over the packed weights serves four batch rows and the
    /// whole product runs `rows × in × out` instead of `rows` independent
    /// GEMVs. Every output element still accumulates in exactly the
    /// single-sample order — bias first, then products in input order — so
    /// each `C[i][j]` is bitwise-identical to a scalar
    /// `bias[j] + Σ_k A[i][k]·B[j][k]` loop, for any batch size. (Note
    /// this differs bitwise from [`Self::matmul_bt`] followed by
    /// [`Self::add_row_broadcast`], which adds the bias last.)
    ///
    /// `out` is resized to `self.rows × b.rows`; `packed` is a reusable
    /// scratch that grows to `b`'s padded size.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != b.cols` or `bias.len() != b.rows`.
    pub fn gemm_block(&self, b: &Matrix, bias: &[f32], out: &mut Matrix, packed: &mut Vec<f32>) {
        assert_eq!(
            self.cols, b.cols,
            "gemm_block shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, b.rows, b.cols
        );
        assert_eq!(bias.len(), b.rows, "gemm_block bias length mismatch");
        let (k_dim, n) = (self.cols, b.rows);
        out.resize(self.rows, n);

        // Lane-blocked transpose: packed[(jb·k_dim + k)·LANES + l] holds
        // B[jb·LANES + l][k] (zero in the padding lanes of the last
        // block). One pass over B, amortized over every row of the batch.
        let blocks = n.div_ceil(LANES);
        packed.clear();
        packed.resize(blocks * k_dim * LANES, 0.0);
        for (j, b_row) in b.iter_rows().enumerate() {
            let (jb, l) = (j / LANES, j % LANES);
            let block = &mut packed[jb * k_dim * LANES..(jb + 1) * k_dim * LANES];
            for (k, &w) in b_row.iter().enumerate() {
                block[k * LANES + l] = w;
            }
        }

        let mut i = 0;
        while i + ROW_BLOCK <= self.rows {
            self.gemm_row_block::<ROW_BLOCK>(i, bias, packed, out);
            i += ROW_BLOCK;
        }
        while i < self.rows {
            self.gemm_row_block::<1>(i, bias, packed, out);
            i += 1;
        }
    }

    /// One `M × n` slab of the blocked GEMM: rows `i..i + M` of `A`
    /// against every packed lane block.
    #[inline]
    fn gemm_row_block<const M: usize>(&self, i: usize, bias: &[f32], packed: &[f32], out: &mut Matrix) {
        let (k_dim, n) = (self.cols, out.cols);
        let a: [&[f32]; M] = std::array::from_fn(|r| &self.data[(i + r) * k_dim..(i + r + 1) * k_dim]);
        for jb in 0..n.div_ceil(LANES) {
            let live = (n - jb * LANES).min(LANES);
            let block = &packed[jb * k_dim * LANES..(jb + 1) * k_dim * LANES];
            let bias_lane = &bias[jb * LANES..jb * LANES + live];
            let acc = gemm_micro::<M>(&a, block, bias_lane);
            for (r, acc_row) in acc.iter().enumerate() {
                let row = (i + r) * n + jb * LANES;
                out.data[row..row + live].copy_from_slice(&acc_row[..live]);
            }
        }
    }

    /// Adds `v` to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols`.
    pub fn add_row_broadcast(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.cols, "broadcast length mismatch");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (x, &b) in row.iter_mut().zip(v) {
                *x += b;
            }
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for row in self.data.chunks_exact(self.cols) {
            for (s, &x) in sums.iter_mut().zip(row) {
                *s += x;
            }
        }
        sums
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// The `M × LANES` register tile of [`Matrix::gemm_block`]: `M`
/// independent accumulator rows over one packed lane block, each seeded
/// with the bias and summing products in input order (the exact
/// single-sample order). Padding lanes accumulate zeros and are discarded
/// by the caller.
#[inline]
fn gemm_micro<const M: usize>(a: &[&[f32]; M], block: &[f32], bias_lane: &[f32]) -> [[f32; LANES]; M] {
    let mut acc = [[0.0f32; LANES]; M];
    for acc_row in &mut acc {
        acc_row[..bias_lane.len()].copy_from_slice(bias_lane);
    }
    for (k, w) in block.chunks_exact(LANES).enumerate() {
        for (acc_row, a_row) in acc.iter_mut().zip(a) {
            let x = a_row[k];
            for (slot, &wl) in acc_row.iter_mut().zip(w) {
                *slot += x * wl;
            }
        }
    }
    acc
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix (useful as a lazily-grown scratch buffer).
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            write!(f, "  [")?;
            let rc = self.cols.min(8);
            for c in 0..rc {
                write!(f, "{:>10.4}", self.get(r, c))?;
                if c + 1 < rc {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    fn test_matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        for _ in 0..rows * cols {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            data.push(((s >> 8) as f32 / (1u32 << 24) as f32) - 0.5);
        }
        Matrix::from_vec(rows, cols, data)
    }

    fn assert_close(a: &Matrix, b: &Matrix) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = test_matrix(5, 5, 1);
        assert_close(&a.matmul(&Matrix::identity(5)), &a);
        assert_close(&Matrix::identity(5).matmul(&a), &a);
    }

    #[test]
    fn matmul_matches_naive() {
        let a = test_matrix(7, 13, 2);
        let b = test_matrix(13, 5, 3);
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b));
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = test_matrix(6, 10, 4);
        let b = test_matrix(9, 10, 5);
        // Build Bᵀ explicitly.
        let mut bt = Matrix::zeros(10, 9);
        for r in 0..9 {
            for c in 0..10 {
                bt.set(c, r, b.get(r, c));
            }
        }
        assert_close(&a.matmul_bt(&b), &naive_matmul(&a, &bt));
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = test_matrix(12, 4, 6);
        let b = test_matrix(12, 7, 7);
        let mut at = Matrix::zeros(4, 12);
        for r in 0..12 {
            for c in 0..4 {
                at.set(c, r, a.get(r, c));
            }
        }
        assert_close(&a.matmul_at(&b), &naive_matmul(&at, &b));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let _ = test_matrix(2, 3, 0).matmul(&test_matrix(2, 3, 1));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_bt_rejects_bad_shapes() {
        let _ = test_matrix(2, 3, 0).matmul_bt(&test_matrix(2, 4, 1));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_at_rejects_bad_shapes() {
        let _ = test_matrix(2, 3, 0).matmul_at(&test_matrix(3, 4, 1));
    }

    /// Scalar reference for `gemm_block`: bias-first, input-order
    /// accumulation per output element.
    fn naive_gemm_bias_first(a: &Matrix, b: &Matrix, bias: &[f32]) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for (j, &bj) in bias.iter().enumerate() {
                let mut acc = bj;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(j, k);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    #[test]
    fn gemm_block_is_bitwise_identical_to_scalar_bias_first() {
        // Row counts around the ROW_BLOCK boundary, output widths around
        // the LANES boundary (including multi-block), assorted depths.
        let mut packed = Vec::new();
        let mut out = Matrix::default();
        for &rows in &[1usize, 2, 3, 4, 5, 7, 8, 9, 16, 21] {
            for &(n, k) in &[(1usize, 5usize), (5, 11), (16, 7), (17, 31), (37, 13)] {
                let a = test_matrix(rows, k, (rows * 31 + n) as u32);
                let b = test_matrix(n, k, (n * 17 + k) as u32);
                let bias: Vec<f32> = (0..n).map(|j| (j as f32 * 0.7).sin()).collect();
                a.gemm_block(&b, &bias, &mut out, &mut packed);
                let reference = naive_gemm_bias_first(&a, &b, &bias);
                assert_eq!(out.rows(), rows);
                assert_eq!(out.cols(), n);
                // Bitwise, not approximate: the tile kernel replays the
                // exact scalar summation order per accumulator.
                assert_eq!(out.data(), reference.data(), "rows={rows} n={n} k={k}");
            }
        }
    }

    #[test]
    fn gemm_block_handles_empty_batch() {
        let b = test_matrix(3, 4, 1);
        let mut out = Matrix::default();
        Matrix::zeros(0, 4).gemm_block(&b, &[0.0; 3], &mut out, &mut Vec::new());
        assert_eq!(out.rows(), 0);
        assert_eq!(out.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn gemm_block_rejects_bad_shapes() {
        let mut out = Matrix::default();
        test_matrix(2, 3, 0).gemm_block(&test_matrix(2, 4, 1), &[0.0; 2], &mut out, &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "bias length mismatch")]
    fn gemm_block_rejects_bad_bias() {
        let mut out = Matrix::default();
        test_matrix(2, 3, 0).gemm_block(&test_matrix(2, 3, 1), &[0.0; 3], &mut out, &mut Vec::new());
    }

    #[test]
    fn broadcast_and_scale() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        m.add_row_broadcast(&[10.0, 20.0, 30.0]);
        assert_eq!(m.row(0), &[11.0, 22.0, 33.0]);
        assert_eq!(m.row(1), &[14.0, 25.0, 36.0]);
        m.scale(0.5);
        assert_eq!(m.get(0, 0), 5.5);
    }

    #[test]
    fn col_sums_reference() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.col_sums(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn from_rows_round_trip() {
        let r0 = [1.0f32, 2.0];
        let r1 = [3.0f32, 4.0];
        let m = Matrix::from_rows(&[&r0, &r1]);
        assert_eq!(m.row(0), &r0);
        assert_eq!(m.row(1), &r1);
        assert_eq!(m.iter_rows().count(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let r0 = [1.0f32, 2.0];
        let r1 = [3.0f32];
        let _ = Matrix::from_rows(&[&r0, &r1]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_len() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn frobenius_norm_reference() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    fn display_is_nonempty_and_truncates() {
        let m = test_matrix(10, 12, 9);
        let s = m.to_string();
        assert!(s.contains("Matrix 10x12"));
        assert!(s.contains('…'));
    }
}
