//! Multi-output (multi-label) training: one network, one logit per qubit.
//!
//! The original Lienhard et al. discriminator — the paper's reference \[3\]
//! — reads *all five qubits simultaneously* with a single network whose
//! input is the multiplexed trace and whose five outputs are per-qubit
//! logits. The joint model can learn cross-qubit structure (crosstalk
//! compensation), which is why the paper reports it beating every
//! independent scheme (F5Q 0.912) while noting it cannot serve mid-circuit
//! measurement. This module adds the multi-label dataset and trainer the
//! joint baseline needs.

use crate::loss::bce_with_logits;
use crate::matrix::Matrix;
use crate::network::Fnn;
use crate::train::{OptimizerKind, TrainConfig, TrainReport};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// Error constructing a [`MultiDataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiDatasetError {
    /// No samples.
    Empty,
    /// Feature and label row counts differ.
    RowMismatch {
        /// Feature rows.
        features: usize,
        /// Label rows.
        labels: usize,
    },
    /// A label is outside {0, 1}.
    InvalidLabel {
        /// Sample index.
        row: usize,
        /// Output index.
        output: usize,
    },
}

impl fmt::Display for MultiDatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "multi-label dataset has no samples"),
            Self::RowMismatch { features, labels } => {
                write!(f, "feature rows ({features}) and label rows ({labels}) differ")
            }
            Self::InvalidLabel { row, output } => {
                write!(f, "label at sample {row}, output {output} is not 0 or 1")
            }
        }
    }
}

impl std::error::Error for MultiDatasetError {}

/// A multi-label binary dataset: features plus a `samples × outputs` label
/// matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiDataset {
    x: Matrix,
    y: Matrix,
}

impl MultiDataset {
    /// Builds from a feature matrix and a label matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MultiDatasetError`] on empty input, mismatched row
    /// counts, or non-binary labels.
    pub fn from_matrices(x: Matrix, y: Matrix) -> Result<Self, MultiDatasetError> {
        if x.rows() == 0 {
            return Err(MultiDatasetError::Empty);
        }
        if x.rows() != y.rows() {
            return Err(MultiDatasetError::RowMismatch {
                features: x.rows(),
                labels: y.rows(),
            });
        }
        for r in 0..y.rows() {
            for c in 0..y.cols() {
                let v = y.get(r, c);
                if !(v == 0.0 || v == 1.0) {
                    return Err(MultiDatasetError::InvalidLabel { row: r, output: c });
                }
            }
        }
        Ok(Self { x, y })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// `true` if empty (cannot occur post-construction).
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Number of binary outputs.
    pub fn outputs(&self) -> usize {
        self.y.cols()
    }

    /// The feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.x
    }

    /// The label matrix.
    pub fn labels(&self) -> &Matrix {
        &self.y
    }

    fn batch(&self, indices: &[usize]) -> (Matrix, Vec<f32>) {
        let rows: Vec<&[f32]> = indices.iter().map(|&i| self.x.row(i)).collect();
        let mut labels = Vec::with_capacity(indices.len() * self.y.cols());
        for &i in indices {
            labels.extend_from_slice(self.y.row(i));
        }
        (Matrix::from_rows(&rows), labels)
    }
}

/// Trains a multi-output network with per-output binary cross-entropy
/// (mean over outputs and samples).
///
/// # Panics
///
/// Panics if the dataset dimensions do not match the network.
pub fn train_supervised_multi(
    net: &mut Fnn,
    data: &MultiDataset,
    cfg: &TrainConfig,
) -> TrainReport {
    assert_eq!(data.dim(), net.input_dim(), "dataset/network input mismatch");
    assert_eq!(
        data.outputs(),
        net.output_dim(),
        "dataset/network output mismatch"
    );
    assert!(cfg.epochs > 0, "epochs must be positive");

    let mut opt: Box<dyn crate::optim::Optimizer> = match cfg.optimizer {
        OptimizerKind::Sgd { momentum } => Box::new(
            crate::optim::Sgd::new(cfg.learning_rate).with_momentum(momentum),
        ),
        OptimizerKind::Adam => Box::new(crate::optim::Adam::new(cfg.learning_rate)),
    };
    let mut rng = StdRng::seed_from_u64(cfg.shuffle_seed);
    let mut indices: Vec<usize> = (0..data.len()).collect();
    let batch_size = cfg.batch_size.min(data.len()).max(1);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for _ in 0..cfg.epochs {
        indices.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in indices.chunks(batch_size) {
            let (bx, by) = data.batch(chunk);
            let trace = net.forward_trace(&bx);
            let logits: Vec<f32> = trace.output().data().to_vec();
            let (loss, grad) = bce_with_logits(&logits, &by);
            let grad_m = Matrix::from_vec(chunk.len(), data.outputs(), grad);
            let mut grads = net.backward(&trace, &grad_m);
            if cfg.weight_decay > 0.0 {
                for (g, layer) in grads.iter_mut().zip(net.layers()) {
                    for (gw, &w) in g.weights.data_mut().iter_mut().zip(layer.weights().data()) {
                        *gw += cfg.weight_decay * w;
                    }
                }
            }
            net.apply_grads(&grads, opt.as_mut());
            epoch_loss += loss as f64;
            batches += 1;
        }
        epoch_losses.push((epoch_loss / batches.max(1) as f64) as f32);
    }

    let final_train_accuracy = evaluate_multi_accuracy(net, data)
        .iter()
        .sum::<f64>()
        / data.outputs() as f64;
    TrainReport {
        epoch_losses,
        final_train_accuracy,
    }
}

/// Per-output classification accuracy of a multi-output network.
///
/// # Panics
///
/// Panics if dimensions mismatch.
pub fn evaluate_multi_accuracy(net: &Fnn, data: &MultiDataset) -> Vec<f64> {
    assert_eq!(data.dim(), net.input_dim(), "dataset/network input mismatch");
    let out = net.forward_batch(data.features());
    let k = data.outputs();
    let mut correct = vec![0usize; k];
    for r in 0..data.len() {
        for (c, corr) in correct.iter_mut().enumerate() {
            if (out.get(r, c) > 0.0) == (data.labels().get(r, c) == 1.0) {
                *corr += 1;
            }
        }
    }
    correct
        .into_iter()
        .map(|c| c as f64 / data.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::network::FnnBuilder;

    /// Two outputs with different linear rules over 3 features.
    fn toy() -> MultiDataset {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for k in 0..96 {
            let a = ((k * 37 % 19) as f32 - 9.0) / 9.0;
            let b = ((k * 53 % 17) as f32 - 8.0) / 8.0;
            let c = ((k * 29 % 13) as f32 - 6.0) / 6.0;
            xs.extend_from_slice(&[a, b, c]);
            ys.push((a + b > 0.0) as u8 as f32);
            ys.push((b - c > 0.0) as u8 as f32);
        }
        MultiDataset::from_matrices(Matrix::from_vec(96, 3, xs), Matrix::from_vec(96, 2, ys))
            .unwrap()
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            MultiDataset::from_matrices(Matrix::zeros(0, 3), Matrix::zeros(0, 2)),
            Err(MultiDatasetError::Empty)
        );
        assert_eq!(
            MultiDataset::from_matrices(Matrix::zeros(2, 3), Matrix::zeros(3, 2)),
            Err(MultiDatasetError::RowMismatch {
                features: 2,
                labels: 3
            })
        );
        let bad = Matrix::from_vec(1, 2, vec![0.0, 0.5]);
        let err =
            MultiDataset::from_matrices(Matrix::zeros(1, 3), bad).unwrap_err();
        assert_eq!(err, MultiDatasetError::InvalidLabel { row: 0, output: 1 });
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn joint_network_learns_both_outputs() {
        let data = toy();
        let mut net = FnnBuilder::new(3)
            .hidden(16, Activation::Relu)
            .output(2)
            .seed(3)
            .build();
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 16,
            learning_rate: 0.01,
            ..TrainConfig::default()
        };
        let report = train_supervised_multi(&mut net, &data, &cfg);
        let acc = evaluate_multi_accuracy(&net, &data);
        // klinq-lint: allow(stat-floor-locality) klinq-nn sits upstream of klinq-core and cannot import its stat_floors; NN-local training floor
        assert!(acc[0] > 0.95, "output 0: {acc:?}");
        assert!(acc[1] > 0.95, "output 1: {acc:?}");
        // klinq-lint: allow(stat-floor-locality) klinq-nn sits upstream of klinq-core and cannot import its stat_floors; NN-local training floor
        assert!(report.final_train_accuracy > 0.95);
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn accessors_and_batching() {
        let data = toy();
        assert_eq!(data.len(), 96);
        assert!(!data.is_empty());
        assert_eq!(data.dim(), 3);
        assert_eq!(data.outputs(), 2);
        let (bx, by) = data.batch(&[0, 5]);
        assert_eq!(bx.rows(), 2);
        assert_eq!(by.len(), 4);
        assert_eq!(by[2], data.labels().get(5, 0));
    }

    #[test]
    #[should_panic(expected = "output mismatch")]
    fn trainer_checks_output_dim() {
        let data = toy();
        let mut net = FnnBuilder::new(3).output(1).build();
        let _ = train_supervised_multi(&mut net, &data, &TrainConfig::default());
    }
}
