//! Shard supervision: health states, heartbeat watchdog, restart.
//!
//! A production fleet treats a dead shard as a routine, observable,
//! recoverable event — never a process-wide failure. This module is the
//! machinery behind that contract:
//!
//! - **Panic quarantine** (in the collector, [`crate::ReadoutServer`]):
//!   micro-batch classification runs under `catch_unwind`. When a batch
//!   panics, every request in it replays *solo* — the batched engine is
//!   bitwise-identical for any batch composition, so solo replays
//!   produce exactly the states the batch would have. A request whose
//!   solo replay panics again is the culprit: it is answered with a
//!   typed [`crate::ServeError::Poisoned`] and never re-batched, while
//!   everyone else gets their states. One hostile request costs one
//!   extra classification pass, not the server.
//! - **Health state machine** ([`ShardHealth`]): every shard is
//!   `Healthy`, `Degraded` (a recent caught panic; serving normally,
//!   promoted back to `Healthy` after a run of clean batches), `Down`
//!   (collector dead or its heartbeat stale), or `Restarting`.
//! - **Heartbeat watchdog** (the crate-internal `Supervisor`): the
//!   collector stamps a
//!   heartbeat on every scheduling wakeup; a fleet-level watchdog
//!   thread detects dead collectors (thread finished) immediately and
//!   stuck ones (stale heartbeat) within
//!   [`SuperviseConfig::heartbeat_timeout`], marks the shard `Down`,
//!   and restarts it after [`SuperviseConfig::restart_backoff`]: the
//!   device's [`KlinqSystem`] is reloaded from the deploy bundle (or
//!   the retained in-memory system when the fleet was started from
//!   systems, or has hot-swapped since deploy) and a fresh collector
//!   resumes on the *same* counters — [`crate::ServeStats`] is
//!   monotonic over the shard's lifetime, never reset by a restart.
//! - **Health-aware intake** (in [`crate::ReadoutClient`]): submitting
//!   to a `Down`/`Restarting` shard answers a typed
//!   [`crate::ServeError::ShardDown`], or — when the request opts in
//!   with [`crate::RequestOptions::allow_failover`] — routes to a
//!   healthy peer shard.
//!
//! Nothing here is speculative recovery: in-flight requests owned by a
//! dead collector are answered `ShardDown` (the reply guard fires when
//! the collector's queues unwind), never silently dropped and never
//! resubmitted by the server — classification is pure, so *callers*
//! retry safely, and the wire client surfaces the typed error for
//! exactly that purpose.

use crate::server::ReadoutServer;
use klinq_core::{persist, KlinqSystem};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One shard's position in the health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    Healthy,
    /// Serving, but a micro-batch panicked recently (the quarantine
    /// caught it). Promoted back to [`Self::Healthy`] after a run of
    /// clean batches. Requests still route here.
    Degraded,
    /// The collector is dead (thread exited) or stuck (heartbeat older
    /// than [`SuperviseConfig::heartbeat_timeout`]). Requests answer
    /// [`crate::ServeError::ShardDown`] or fail over.
    Down,
    /// The watchdog is bringing a fresh collector up. Routes like
    /// [`Self::Down`]; the window is typically sub-millisecond.
    Restarting,
}

impl ShardHealth {
    /// Wire encoding (see [`crate::wire`]'s health query).
    pub(crate) fn to_wire(self) -> u8 {
        match self {
            Self::Healthy => 0,
            Self::Degraded => 1,
            Self::Down => 2,
            Self::Restarting => 3,
        }
    }

    /// Decodes the wire byte; `None` for an unknown value.
    pub(crate) fn from_wire(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(Self::Healthy),
            1 => Some(Self::Degraded),
            2 => Some(Self::Down),
            3 => Some(Self::Restarting),
            _ => None,
        }
    }
}

/// Supervision tuning (part of [`crate::ServeConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperviseConfig {
    /// How stale a collector's heartbeat may grow before the watchdog
    /// declares the shard [`ShardHealth::Down`]. Must comfortably
    /// exceed the longest single micro-batch classification; the
    /// default is conservative. Dead collectors (thread exited) are
    /// detected immediately regardless.
    pub heartbeat_timeout: Duration,
    /// How often the watchdog sweeps the fleet.
    pub watchdog_interval: Duration,
    /// How long a shard stays [`ShardHealth::Down`] before a restart
    /// attempt — and between failed attempts (a crash-looping shard
    /// must not spin the watchdog). Tests widen this to observe the
    /// `Down` window deterministically.
    pub restart_backoff: Duration,
}

impl Default for SuperviseConfig {
    /// 5 s heartbeat timeout, 25 ms watchdog sweep, 100 ms restart
    /// backoff.
    fn default() -> Self {
        Self {
            heartbeat_timeout: Duration::from_secs(5),
            watchdog_interval: Duration::from_millis(25),
            restart_backoff: Duration::from_millis(100),
        }
    }
}

/// One shard's health as reported over the wire health query
/// ([`crate::WireClient::fleet_health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealthReport {
    /// The shard's current health state.
    pub health: ShardHealth,
    /// Completed restarts over the shard's lifetime (monotonic).
    pub restarts: u64,
    /// Transitions into [`ShardHealth::Down`] over the shard's lifetime
    /// (monotonic).
    pub downs: u64,
}

/// Panic payload for injected crashes ([`crate::chaos::CrashFaults`]
/// and [`crate::ShardedReadoutServer::kill_shard`]). Teardown swallows
/// panics carrying this marker — an injected crash is an exercised
/// recovery path, not a bug to re-raise on the owner.
pub(crate) struct ChaosCrash;

/// Consecutive clean micro-batches that promote a [`ShardHealth::Degraded`]
/// shard back to [`ShardHealth::Healthy`].
const DEGRADED_CLEAN_BATCHES: u64 = 32;

const STATE_HEALTHY: u8 = 0;
const STATE_DEGRADED: u8 = 1;
const STATE_DOWN: u8 = 2;
const STATE_RESTARTING: u8 = 3;

/// One shard's live health record: the state machine, the collector's
/// heartbeat, and the monotonic supervision counters. Lives inside the
/// shard's shared counter block, so it survives collector restarts by
/// construction — exactly like the serving counters.
#[derive(Debug)]
pub(crate) struct ShardMonitor {
    state: AtomicU8,
    /// Orderly shutdown: submissions answer `Closed`, not `ShardDown`,
    /// and the watchdog leaves the shard alone.
    stopped: AtomicBool,
    /// Time zero for the `*_us` stamps below.
    epoch: Instant,
    heartbeat_us: AtomicU64,
    down_since_us: AtomicU64,
    /// Collector panics the quarantine caught (transient or poisoned).
    panics: AtomicU64,
    /// Requests answered [`crate::ServeError::Poisoned`].
    poisoned: AtomicU64,
    /// Transitions into [`ShardHealth::Down`].
    downs: AtomicU64,
    /// Completed restarts (`Restarting → Healthy`).
    restarts: AtomicU64,
    /// Requests rerouted to a healthy peer while this shard was down.
    failovers: AtomicU64,
    /// Requests answered [`crate::ServeError::ShardDown`].
    shard_down_rejections: AtomicU64,
    /// Duration of the most recent `Down → Healthy` recovery, in µs.
    recovery_us: AtomicU64,
    clean_batches: AtomicU64,
}

impl Default for ShardMonitor {
    fn default() -> Self {
        Self {
            state: AtomicU8::new(STATE_HEALTHY),
            stopped: AtomicBool::new(false),
            epoch: Instant::now(),
            heartbeat_us: AtomicU64::new(0),
            down_since_us: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            downs: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            shard_down_rejections: AtomicU64::new(0),
            recovery_us: AtomicU64::new(0),
            clean_batches: AtomicU64::new(0),
        }
    }
}

impl ShardMonitor {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    pub(crate) fn health(&self) -> ShardHealth {
        match self.state.load(Ordering::Relaxed) {
            STATE_DEGRADED => ShardHealth::Degraded,
            STATE_DOWN => ShardHealth::Down,
            STATE_RESTARTING => ShardHealth::Restarting,
            _ => ShardHealth::Healthy,
        }
    }

    /// Routes here — `Healthy` or `Degraded` shards still serve.
    pub(crate) fn is_serving(&self) -> bool {
        matches!(self.health(), ShardHealth::Healthy | ShardHealth::Degraded)
    }

    pub(crate) fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::Relaxed)
    }

    pub(crate) fn mark_stopped(&self) {
        self.stopped.store(true, Ordering::Relaxed);
    }

    /// The collector stamps this on every scheduling wakeup.
    pub(crate) fn beat(&self) {
        self.heartbeat_us.store(self.now_us(), Ordering::Relaxed);
    }

    pub(crate) fn heartbeat_age(&self) -> Duration {
        Duration::from_micros(
            self.now_us().saturating_sub(self.heartbeat_us.load(Ordering::Relaxed)),
        )
    }

    /// How long the shard has been in its current `Down` spell.
    pub(crate) fn down_for(&self) -> Duration {
        Duration::from_micros(
            self.now_us().saturating_sub(self.down_since_us.load(Ordering::Relaxed)),
        )
    }

    /// A caught micro-batch panic: count it and degrade a healthy
    /// shard. A run of clean batches promotes it back.
    pub(crate) fn note_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
        self.clean_batches.store(0, Ordering::Relaxed);
        let _ = self.state.compare_exchange(
            STATE_HEALTHY,
            STATE_DEGRADED,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// A micro-batch that classified without a panic.
    pub(crate) fn note_clean_batch(&self) {
        if self.state.load(Ordering::Relaxed) != STATE_DEGRADED {
            return;
        }
        if self.clean_batches.fetch_add(1, Ordering::Relaxed) + 1 >= DEGRADED_CLEAN_BATCHES {
            let _ = self.state.compare_exchange(
                STATE_DEGRADED,
                STATE_HEALTHY,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    pub(crate) fn note_poisoned(&self) {
        self.poisoned.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_shard_down_rejection(&self) {
        self.shard_down_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// The watchdog (or a degraded bundle boot) declares the shard
    /// down.
    pub(crate) fn mark_down(&self) {
        self.downs.fetch_add(1, Ordering::Relaxed);
        self.down_since_us.store(self.now_us(), Ordering::Relaxed);
        self.state.store(STATE_DOWN, Ordering::Relaxed);
    }

    pub(crate) fn mark_restarting(&self) {
        self.state.store(STATE_RESTARTING, Ordering::Relaxed);
    }

    /// A restart attempt that could not produce a system: back to
    /// `Down` (same spell — `downs` counts transitions, not attempts).
    pub(crate) fn restart_failed(&self) {
        self.state.store(STATE_DOWN, Ordering::Relaxed);
    }

    /// A fresh collector is serving: record the recovery and go
    /// `Healthy`.
    pub(crate) fn mark_recovered(&self) {
        let spell = self.now_us().saturating_sub(self.down_since_us.load(Ordering::Relaxed));
        self.recovery_us.store(spell, Ordering::Relaxed);
        self.restarts.fetch_add(1, Ordering::Relaxed);
        self.clean_batches.store(0, Ordering::Relaxed);
        self.beat();
        self.state.store(STATE_HEALTHY, Ordering::Relaxed);
    }

    pub(crate) fn report(&self) -> ShardHealthReport {
        ShardHealthReport {
            health: self.health(),
            restarts: self.restarts.load(Ordering::Relaxed),
            downs: self.downs.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn panics_count(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    pub(crate) fn poisoned_count(&self) -> u64 {
        self.poisoned.load(Ordering::Relaxed)
    }

    pub(crate) fn downs_count(&self) -> u64 {
        self.downs.load(Ordering::Relaxed)
    }

    pub(crate) fn restarts_count(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    pub(crate) fn failovers_count(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    pub(crate) fn shard_down_rejections_count(&self) -> u64 {
        self.shard_down_rejections.load(Ordering::Relaxed)
    }

    pub(crate) fn recovery_us_value(&self) -> u64 {
        self.recovery_us.load(Ordering::Relaxed)
    }
}

/// Where a restart gets the shard's [`KlinqSystem`].
///
/// A bundle-deployed shard that has never hot-swapped reloads from the
/// bundle artifact (a true cold reload, through the checksum-verified
/// persistence path). A shard started from an in-memory system — or one
/// that has hot-swapped since deploy — restarts from the retained
/// in-memory system, which tracks every applied swap/promotion.
#[derive(Debug)]
pub(crate) struct RestartSource {
    retained: Mutex<Option<Arc<KlinqSystem>>>,
    bundle: Option<PathBuf>,
    device: usize,
    /// A hot swap or canary promotion happened: the bundle no longer
    /// describes what this shard serves.
    swapped: AtomicBool,
}

impl RestartSource {
    pub(crate) fn from_system(system: Arc<KlinqSystem>) -> Self {
        Self {
            retained: Mutex::new(Some(system)),
            bundle: None,
            device: 0,
            swapped: AtomicBool::new(false),
        }
    }

    /// `system` is `None` for a device whose artifact was quarantined
    /// at load — the shard boots `Down` and the watchdog keeps retrying
    /// the bundle.
    pub(crate) fn from_bundle(
        bundle: PathBuf,
        device: usize,
        system: Option<Arc<KlinqSystem>>,
    ) -> Self {
        Self {
            retained: Mutex::new(system),
            bundle: Some(bundle),
            device,
            swapped: AtomicBool::new(false),
        }
    }

    /// Records a hot swap/promotion: future restarts resume from this
    /// system, not the (now stale) bundle.
    pub(crate) fn retain_swapped(&self, system: Arc<KlinqSystem>) {
        // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
        *self.retained.lock().unwrap() = Some(system);
        self.swapped.store(true, Ordering::Relaxed);
    }

    /// The system a restart should serve, or `None` when no source is
    /// currently loadable (stays `Down`, retried next backoff).
    fn resolve(&self) -> Option<Arc<KlinqSystem>> {
        if let Some(path) = &self.bundle {
            if !self.swapped.load(Ordering::Relaxed) {
                if let Ok(devices) = persist::load_device_bundle_quarantined(path) {
                    if let Some(Ok(system)) = devices.into_iter().nth(self.device) {
                        let system = Arc::new(system);
                        // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
                        *self.retained.lock().unwrap() = Some(Arc::clone(&system));
                        return Some(system);
                    }
                }
            }
        }
        // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
        self.retained.lock().unwrap().clone()
    }
}

/// The fleet watchdog: one thread sweeping every shard's health.
#[derive(Debug)]
pub(crate) struct Supervisor {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Supervisor {
    pub(crate) fn spawn(
        shards: Arc<Vec<Mutex<ReadoutServer>>>,
        sources: Arc<Vec<RestartSource>>,
        config: SuperviseConfig,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("klinq-supervise-watchdog".into())
            .spawn(move || watchdog_loop(&shards, &sources, config, &flag))
            // klinq-lint: allow(no-panic-serve) watchdog spawn happens once at startup; failing to start is fatal by design
            .expect("spawn supervision watchdog");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sweep and joins the watchdog. Called before shard
    /// teardown so no restart races a shutdown.
    pub(crate) fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop();
    }
}

fn watchdog_loop(
    shards: &[Mutex<ReadoutServer>],
    sources: &[RestartSource],
    config: SuperviseConfig,
    stop: &AtomicBool,
) {
    let mut last_attempt: Vec<Option<Instant>> = vec![None; shards.len()];
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(config.watchdog_interval);
        if stop.load(Ordering::Relaxed) {
            return;
        }
        for (device, slot) in shards.iter().enumerate() {
            // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
            let mut shard = slot.lock().unwrap();
            if shard.monitor().is_stopped() {
                continue;
            }
            match shard.monitor().health() {
                ShardHealth::Healthy | ShardHealth::Degraded => {
                    if shard.collector_finished()
                        || shard.monitor().heartbeat_age() > config.heartbeat_timeout
                    {
                        shard.monitor().mark_down();
                        last_attempt[device] = None;
                    }
                }
                ShardHealth::Down => {
                    let due = match last_attempt[device] {
                        Some(at) => at.elapsed() >= config.restart_backoff,
                        None => shard.monitor().down_for() >= config.restart_backoff,
                    };
                    if due {
                        last_attempt[device] = Some(Instant::now());
                        shard.monitor().mark_restarting();
                        match sources[device].resolve() {
                            Some(system) => {
                                shard.respawn(system);
                                shard.monitor().mark_recovered();
                            }
                            None => shard.monitor().restart_failed(),
                        }
                    }
                }
                // Only this thread sets `Restarting`, and only
                // transiently under the slot lock.
                ShardHealth::Restarting => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_promotes_back_after_clean_batches() {
        let m = ShardMonitor::default();
        assert_eq!(m.health(), ShardHealth::Healthy);
        m.note_panic();
        assert_eq!(m.health(), ShardHealth::Degraded);
        for _ in 0..DEGRADED_CLEAN_BATCHES - 1 {
            m.note_clean_batch();
            assert_eq!(m.health(), ShardHealth::Degraded);
        }
        m.note_clean_batch();
        assert_eq!(m.health(), ShardHealth::Healthy);
        assert_eq!(m.panics_count(), 1);
    }

    #[test]
    fn a_panic_resets_the_clean_run() {
        let m = ShardMonitor::default();
        m.note_panic();
        for _ in 0..DEGRADED_CLEAN_BATCHES - 1 {
            m.note_clean_batch();
        }
        m.note_panic();
        m.note_clean_batch();
        assert_eq!(m.health(), ShardHealth::Degraded, "clean run must restart after a panic");
    }

    #[test]
    fn down_restart_recovery_counts_are_monotonic() {
        let m = ShardMonitor::default();
        m.mark_down();
        assert_eq!(m.health(), ShardHealth::Down);
        m.mark_restarting();
        assert_eq!(m.health(), ShardHealth::Restarting);
        m.restart_failed();
        assert_eq!(m.health(), ShardHealth::Down);
        assert_eq!(m.downs_count(), 1, "a failed attempt is the same Down spell");
        m.mark_restarting();
        m.mark_recovered();
        assert_eq!(m.health(), ShardHealth::Healthy);
        assert_eq!(m.restarts_count(), 1);
        assert_eq!(m.report().downs, 1);
    }

    #[test]
    fn health_wire_round_trip() {
        for h in [
            ShardHealth::Healthy,
            ShardHealth::Degraded,
            ShardHealth::Down,
            ShardHealth::Restarting,
        ] {
            assert_eq!(ShardHealth::from_wire(h.to_wire()), Some(h));
        }
        assert_eq!(ShardHealth::from_wire(250), None);
    }
}
