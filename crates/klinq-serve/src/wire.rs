//! The wire protocol: out-of-process clients over plain TCP.
//!
//! PR 3's server is in-process only — clients are threads holding a
//! channel handle. A readout *service* needs clients that live in other
//! processes (control-stack software, calibration daemons, other hosts),
//! so this module adds a small length-prefixed binary protocol over
//! [`std::net::TcpStream`] — std threads only, matching the rest of the
//! serving stack; no async runtime.
//!
//! The [`WireServer`] front end decodes each request and submits it
//! through an ordinary [`ReadoutClient`] bound to the request's device
//! shard, so **wire requests take exactly the in-process coalescing
//! path**: responses are bitwise-identical to a local
//! [`ReadoutClient::classify_shots`] call, and wire traffic coalesces
//! into the same micro-batches as in-process traffic. I/Q samples travel
//! as IEEE-754 little-endian bits, so no value is ever re-quantized in
//! transit.
//!
//! # Framing
//!
//! Every message is one frame: a `u32` little-endian payload length,
//! then the payload. A payload starts with a fixed header — magic
//! (`0x514B`, `"KQ"`), protocol version, message type — followed by the
//! type-specific body:
//!
//! | type | body |
//! |------|------|
//! | `1` request  | device `u16`, priority `u8`, shot count `u32`, shots (per shot: trace count `u16`; per trace: I count `u32`, I samples `f32`×nᵢ, Q count `u32`, Q samples `f32`×n_q) |
//! | `2` response | shot count `u32`, one `u8` five-qubit state mask per shot |
//! | `3` error    | kind `u8` ([`ServeError`] variant), message (`u32` length + UTF-8) |
//!
//! I and Q carry separate counts so that even a ragged trace (I and Q
//! lengths differing — which intake validation rejects) crosses the
//! wire intact and earns the same typed [`ServeError::InvalidRequest`]
//! an in-process client gets, instead of corrupting the frame.
//!
//! Malformed bytes produce typed [`WireError`]s — bad magic, unsupported
//! version, truncation, oversized frames — and never panic the decoder:
//! every count is bounds-checked against the bytes actually present (and
//! the shot count additionally against [`MAX_REQUEST_SHOTS`]) before
//! anything is allocated, so a hostile frame cannot amplify its own size
//! into a huge allocation.

use crate::server::{Priority, ReadoutClient, ServeError};
use crate::shard::ShardedReadoutServer;
use klinq_core::ShotStates;
use klinq_sim::device::NUM_QUBITS;
use klinq_sim::trajectory::StateEvolution;
use klinq_sim::{IqTrace, Shot};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Frame payload magic: `"KQ"` little-endian.
const MAGIC: u16 = 0x514B;
/// Protocol version this build speaks.
const WIRE_VERSION: u8 = 1;
/// Refuse frames larger than this (256 MiB): a garbage length prefix
/// must produce a typed error, not a giant allocation.
const MAX_FRAME: u32 = 256 * 1024 * 1024;
/// Refuse requests declaring more shots than this (1 Mi). Decoded
/// `Shot` structs cost tens of bytes beyond their wire backing (a shot
/// can declare zero traces in two bytes), so without a cap a hostile
/// frame could amplify its size ~50× in allocations before intake
/// validation ever sees it. Far above any sane request — batching
/// budgets sit orders of magnitude below.
pub const MAX_REQUEST_SHOTS: u32 = 1 << 20;

const MSG_REQUEST: u8 = 1;
const MSG_RESPONSE: u8 = 2;
const MSG_ERROR: u8 = 3;

/// Why bytes could not be read or decoded as a protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The underlying transport failed.
    Io(String),
    /// The payload does not start with the protocol magic.
    BadMagic(u16),
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// The header's message type is unknown.
    UnknownMessage(u8),
    /// The frame ended before its declared contents: `expected` bytes
    /// were needed, only `have` were present.
    Truncated {
        /// Bytes the declared contents required.
        expected: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The length prefix exceeds the frame-size bound.
    FrameTooLarge(u32),
    /// The payload parsed but violates the message grammar (bad
    /// priority byte, state mask with non-qubit bits, non-UTF-8 error
    /// text, trailing bytes, …).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(msg) => write!(f, "wire I/O failed: {msg}"),
            Self::BadMagic(got) => write!(f, "bad frame magic {got:#06x} (expected {MAGIC:#06x})"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported wire protocol version {v} (this build speaks {WIRE_VERSION})")
            }
            Self::UnknownMessage(t) => write!(f, "unknown wire message type {t}"),
            Self::Truncated { expected, have } => {
                write!(f, "truncated frame: needs {expected} bytes, only {have} present")
            }
            Self::FrameTooLarge(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte bound")
            }
            Self::Malformed(msg) => write!(f, "malformed wire message: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One decoded protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Client → server: classify these shots on a device's shard.
    Request {
        /// Device shard the request routes to.
        device: u16,
        /// Scheduling lane (see [`Priority`]).
        priority: Priority,
        /// The shots to classify. Decoded shots carry only traces (the
        /// wire sends no labels); `prepared`/`evolutions` are defaulted.
        shots: Vec<Shot>,
    },
    /// Server → client: one five-qubit state row per requested shot.
    Response {
        /// Per-shot states, in request order.
        states: Vec<ShotStates>,
    },
    /// Server → client: the request failed with a serve-layer error.
    Error(ServeError),
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn header(msg_type: u8, out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(WIRE_VERSION);
    out.push(msg_type);
}

/// Encodes a classification request payload.
pub fn encode_request(device: u16, priority: Priority, shots: &[Shot]) -> Vec<u8> {
    let samples: usize = shots
        .iter()
        .flat_map(|s| s.traces.iter())
        .map(|t| t.i.len() + t.q.len())
        .sum();
    let mut out = Vec::with_capacity(16 + shots.len() * 8 + samples * 4);
    header(MSG_REQUEST, &mut out);
    out.extend_from_slice(&device.to_le_bytes());
    out.push(match priority {
        Priority::Throughput => 0,
        Priority::Latency => 1,
    });
    out.extend_from_slice(&(shots.len() as u32).to_le_bytes());
    for shot in shots {
        out.extend_from_slice(&(shot.traces.len() as u16).to_le_bytes());
        for trace in &shot.traces {
            // Separate counts per channel: a ragged trace must survive
            // the trip and be rejected typed at intake, not corrupt the
            // frame.
            out.extend_from_slice(&(trace.i.len() as u32).to_le_bytes());
            for &v in &trace.i {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&(trace.q.len() as u32).to_le_bytes());
            for &v in &trace.q {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    out
}

/// Encodes a response payload: one five-qubit state mask per shot.
pub fn encode_response(states: &[ShotStates]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + states.len());
    header(MSG_RESPONSE, &mut out);
    out.extend_from_slice(&(states.len() as u32).to_le_bytes());
    for row in states {
        let mut mask = 0u8;
        for (qb, &state) in row.iter().enumerate() {
            mask |= (state as u8) << qb;
        }
        out.push(mask);
    }
    out
}

/// Encodes an error payload from a serve-layer error.
pub fn encode_error(error: &ServeError) -> Vec<u8> {
    let (kind, msg): (u8, &str) = match error {
        ServeError::Closed => (0, ""),
        ServeError::InvalidRequest(msg) => (1, msg),
        ServeError::Overloaded => (2, ""),
        ServeError::Protocol(msg) => (3, msg),
    };
    let mut out = Vec::with_capacity(9 + msg.len());
    header(MSG_ERROR, &mut out);
    out.push(kind);
    out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    out.extend_from_slice(msg.as_bytes());
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked reader over a frame payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Checks that `count` items of at least `min_bytes` each can still
    /// be backed by the remaining bytes — BEFORE allocating `count`
    /// slots, so a hostile count fails typed instead of allocating.
    fn check_backing(&self, count: usize, min_bytes: usize) -> Result<(), WireError> {
        let needed = count.saturating_mul(min_bytes);
        if needed > self.remaining() {
            return Err(WireError::Truncated {
                expected: self.pos + needed,
                have: self.bytes.len(),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let have = self.bytes.len() - self.pos;
        if n > have {
            return Err(WireError::Truncated {
                expected: self.pos + n,
                have: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, WireError> {
        // `take` bounds-checks n*4 against the remaining bytes *before*
        // this allocates, so a hostile count cannot force a huge alloc.
        let raw = self.take(n.checked_mul(4).ok_or(WireError::Malformed(
            "sample count overflows".to_string(),
        ))?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
}

/// Decodes one frame payload into a [`WireMessage`].
///
/// # Errors
///
/// Returns a typed [`WireError`] for any byte sequence that is not a
/// complete well-formed message; never panics, whatever the input.
pub fn decode_message(payload: &[u8]) -> Result<WireMessage, WireError> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    let magic = cur.u16()?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = cur.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let msg_type = cur.u8()?;
    let message = match msg_type {
        MSG_REQUEST => {
            let device = cur.u16()?;
            let priority = match cur.u8()? {
                0 => Priority::Throughput,
                1 => Priority::Latency,
                other => {
                    return Err(WireError::Malformed(format!("unknown priority byte {other}")))
                }
            };
            let n_shots = cur.u32()?;
            if n_shots > MAX_REQUEST_SHOTS {
                return Err(WireError::Malformed(format!(
                    "request declares {n_shots} shots (limit {MAX_REQUEST_SHOTS})"
                )));
            }
            let n_shots = n_shots as usize;
            // Every declared shot needs at least its trace-count field.
            cur.check_backing(n_shots, 2)?;
            let mut shots = Vec::with_capacity(n_shots);
            for _ in 0..n_shots {
                let n_traces = cur.u16()? as usize;
                // Every declared trace needs at least its two counts.
                cur.check_backing(n_traces, 8)?;
                let mut traces = Vec::with_capacity(n_traces);
                for _ in 0..n_traces {
                    let n_i = cur.u32()? as usize;
                    let i = cur.f32s(n_i)?;
                    let n_q = cur.u32()? as usize;
                    let q = cur.f32s(n_q)?;
                    traces.push(IqTrace { i, q });
                }
                // The wire carries no labels — classification needs none.
                shots.push(Shot {
                    prepared: [false; NUM_QUBITS],
                    evolutions: [StateEvolution::Ground; NUM_QUBITS],
                    traces,
                });
            }
            WireMessage::Request {
                device,
                priority,
                shots,
            }
        }
        MSG_RESPONSE => {
            let n_shots = cur.u32()? as usize;
            let masks = cur.take(n_shots)?;
            let states = masks
                .iter()
                .map(|&mask| {
                    if mask >= 1 << NUM_QUBITS {
                        return Err(WireError::Malformed(format!(
                            "state mask {mask:#04x} sets non-qubit bits"
                        )));
                    }
                    Ok(std::array::from_fn(|qb| mask & (1 << qb) != 0))
                })
                .collect::<Result<Vec<ShotStates>, _>>()?;
            WireMessage::Response { states }
        }
        MSG_ERROR => {
            let kind = cur.u8()?;
            let len = cur.u32()? as usize;
            let msg = String::from_utf8(cur.take(len)?.to_vec())
                .map_err(|_| WireError::Malformed("error text is not UTF-8".to_string()))?;
            let error = match kind {
                0 => ServeError::Closed,
                1 => ServeError::InvalidRequest(msg),
                2 => ServeError::Overloaded,
                3 => ServeError::Protocol(msg),
                other => {
                    return Err(WireError::Malformed(format!("unknown error kind {other}")))
                }
            };
            WireMessage::Error(error)
        }
        other => return Err(WireError::UnknownMessage(other)),
    };
    if cur.pos != payload.len() {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after the message",
            payload.len() - cur.pos
        )));
    }
    Ok(message)
}

// ---------------------------------------------------------------------
// Framing over a byte stream
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame and flushes.
///
/// The prefix and payload go out as a *single* write: a separate
/// prefix write would put every exchange into the classic
/// write-write-read pattern, where Nagle holds the payload until the
/// peer's delayed ACK (~40 ms) acknowledges the prefix segment —
/// observed as a ~7 K shots/s wire ceiling before this was fused.
///
/// # Errors
///
/// Propagates the transport's I/O error; a payload over the frame-size
/// bound is refused with [`io::ErrorKind::InvalidInput`] before any
/// byte is sent — a `usize` length silently cast to `u32` would wrap
/// for ≥ 4 GiB payloads and desync the peer.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte bound",
                payload.len()
            ),
        ));
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one length-prefixed frame payload. Returns `Ok(None)` on a
/// clean end-of-stream at a frame boundary (the peer closed between
/// messages).
///
/// # Errors
///
/// [`WireError::Truncated`] if the stream ends mid-frame,
/// [`WireError::FrameTooLarge`] for an oversized length prefix, and
/// [`WireError::Io`] for transport failures.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf)? {
        0 => return Ok(None),
        4 => {}
        got => {
            return Err(WireError::Truncated {
                expected: 4,
                have: got,
            })
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_exact_or_eof(r, &mut payload)?;
    if got != payload.len() {
        return Err(WireError::Truncated {
            expected: payload.len(),
            have: got,
        });
    }
    Ok(Some(payload))
}

/// Fills `buf` from the reader, returning how many bytes arrived before
/// end-of-stream (a short count means EOF, not an error).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(got)
}

// ---------------------------------------------------------------------
// Server front end
// ---------------------------------------------------------------------

/// A TCP front end over a [`ShardedReadoutServer`]'s device fleet.
///
/// One acceptor thread plus one handler thread per connection; each
/// handler submits decoded requests through in-process
/// [`ReadoutClient`]s, so wire traffic coalesces with in-process traffic
/// in the same micro-batches and the responses are bitwise-identical.
#[derive(Debug)]
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<Connection>>>,
    acceptor: Option<JoinHandle<()>>,
}

/// One live connection's shutdown handles: a duplicated stream (to
/// unblock the handler's read) and the handler's join handle.
#[derive(Debug)]
struct Connection {
    stream: TcpStream,
    handler: JoinHandle<()>,
}

impl WireServer {
    /// Starts serving the fleet on `listener`. The sharded server keeps
    /// its ownership — shut the wire front end down first, then the
    /// fleet (a fleet shut down first simply answers wire requests with
    /// [`ServeError::Closed`]).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the listener's local address cannot be
    /// read or the acceptor thread cannot spawn.
    pub fn start(fleet: &ShardedReadoutServer, listener: TcpListener) -> io::Result<Self> {
        let clients: Vec<ReadoutClient> = (0..fleet.devices()).map(|d| fleet.client(d)).collect();
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<Connection>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("klinq-wire-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        // Reap finished connections on every iteration —
                        // including error ones — so a long-lived server
                        // doesn't accumulate dead socket fds and join
                        // handles without bound (and so an fd-exhausted
                        // accept loop can actually recover the fds of
                        // connections that have since closed).
                        reap_finished(&conns);
                        let stream = match stream {
                            Ok(stream) => stream,
                            Err(_) => {
                                // Persistent accept errors (EMFILE, …)
                                // must not busy-spin a core.
                                std::thread::sleep(std::time::Duration::from_millis(10));
                                continue;
                            }
                        };
                        // Replies are single small frames: send them
                        // immediately instead of letting Nagle wait on
                        // the client's delayed ACK.
                        let _ = stream.set_nodelay(true);
                        // The duplicated stream lets shutdown unblock
                        // the handler's blocking read deterministically.
                        let Ok(clone) = stream.try_clone() else { continue };
                        let clients = clients.clone();
                        let Ok(handler) = std::thread::Builder::new()
                            .name("klinq-wire-conn".into())
                            .spawn(move || handle_connection(stream, &clients))
                        else {
                            continue;
                        };
                        conns.lock().expect("conns lock").push(Connection {
                            stream: clone,
                            handler,
                        });
                    }
                })?
        };
        Ok(Self {
            addr,
            stop,
            conns,
            acceptor: Some(acceptor),
        })
    }

    /// The address the server accepts connections on (useful with a
    /// `127.0.0.1:0` listener, whose port the OS assigns).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and closes every live connection's read side:
    /// idle connections see EOF and wind down immediately, while a
    /// handler with a request in flight still delivers its reply once
    /// the fleet answers (its thread finishes in the background — a
    /// blocking wait here would deadlock on batches that only the
    /// fleet's own shutdown can close, e.g. unfilled batches under a
    /// huge linger).
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Unblock the acceptor's `incoming()` with a throwaway
        // connection; it sees the stop flag and exits.
        let _ = TcpStream::connect(self.addr);
        let _ = acceptor.join();
        // Shut down only the READ side: an idle handler's blocking
        // `read_frame` returns EOF and exits, while a handler mid-cycle
        // can still write its computed reply before it loops back to
        // the closed read — in-flight requests are answered, never
        // dropped with a broken pipe.
        for conn in self.conns.lock().expect("conns lock").drain(..) {
            let _ = conn.stream.shutdown(Shutdown::Read);
            // Join only handlers that have already finished. A handler
            // can legitimately be parked waiting for its micro-batch to
            // close (e.g. an unfilled batch under a huge linger, which
            // only the FLEET's shutdown resolves) — a blocking join here
            // would deadlock the documented wire-then-fleet shutdown
            // order. Unfinished handlers run on detached threads: they
            // deliver (or fail typed) once the fleet answers, then exit.
            if conn.handler.is_finished() {
                let _ = conn.handler.join();
            }
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.close();
    }
}

/// Joins and drops every connection whose handler has exited, closing
/// the duplicated socket fd shutdown kept for it.
fn reap_finished(conns: &Mutex<Vec<Connection>>) {
    let mut conns = conns.lock().expect("conns lock");
    let mut kept = Vec::with_capacity(conns.len());
    for conn in conns.drain(..) {
        if conn.handler.is_finished() {
            let _ = conn.handler.join();
        } else {
            kept.push(conn);
        }
    }
    *conns = kept;
}

/// One connection's serve loop: read frame → decode → classify through
/// the device's in-process client → write response or typed error.
fn handle_connection(mut stream: TcpStream, clients: &[ReadoutClient]) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            // Clean disconnect, or transport trouble nothing can fix.
            Ok(None) | Err(WireError::Io(_)) => return,
            Err(e) => {
                // Tell the peer why before hanging up: after a framing
                // error the stream position is unreliable, so the
                // connection cannot continue.
                let _ = write_frame(
                    &mut stream,
                    &encode_error(&ServeError::Protocol(e.to_string())),
                );
                return;
            }
        };
        let (reply, hang_up) = match decode_message(&payload) {
            Ok(WireMessage::Request {
                device,
                priority,
                shots,
            }) => match clients.get(device as usize) {
                Some(client) => match client.classify_shots_with_priority(priority, shots) {
                    Ok(states) => (encode_response(&states), false),
                    // Serve-layer rejections (invalid shots, overload,
                    // shutdown) are per-request: the connection stays up.
                    Err(e) => (encode_error(&e), false),
                },
                None => (
                    encode_error(&ServeError::InvalidRequest(format!(
                        "unknown device {device}: this fleet serves {} devices",
                        clients.len()
                    ))),
                    false,
                ),
            },
            // A peer that sends undecodable payloads (or messages in the
            // wrong direction) cannot be trusted to frame correctly
            // either: answer with the typed error, then hang up.
            Ok(_) => (
                encode_error(&ServeError::Protocol(
                    "expected a request message".to_string(),
                )),
                true,
            ),
            Err(e) => (encode_error(&ServeError::Protocol(e.to_string())), true),
        };
        if write_frame(&mut stream, &reply).is_err() || hang_up {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A blocking wire client bound to one device shard at connect time —
/// the same call surface as the in-process [`ReadoutClient`]
/// (`classify_shots` / `classify_shot` / `classify_shots_with_priority`),
/// returning the same [`ServeError`]s.
///
/// One request is in flight per connection at a time (methods take
/// `&mut self`); open one client per concurrent request stream.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    device: u16,
}

impl WireClient {
    /// Connects to a [`WireServer`] and binds this handle to `device`'s
    /// shard (the routing decision, made once at intake).
    ///
    /// # Errors
    ///
    /// Propagates the TCP connect error.
    pub fn connect(addr: impl ToSocketAddrs, device: u16) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // One small request frame per classification: latency matters
        // more than segment packing.
        stream.set_nodelay(true)?;
        Ok(Self { stream, device })
    }

    /// Classifies a batch of shots over the wire at
    /// [`Priority::Throughput`]; response index `i` is shot `i`'s
    /// states, bitwise-identical to an in-process
    /// [`ReadoutClient::classify_shots`] call against the same shard.
    ///
    /// # Errors
    ///
    /// The server's own [`ServeError`]s pass through (`Closed`,
    /// `Overloaded`, `InvalidRequest`); transport failures surface as
    /// [`ServeError::Closed`] and protocol violations (undecodable or
    /// wrong-length replies) as [`ServeError::Protocol`].
    pub fn classify_shots(&mut self, shots: &[Shot]) -> Result<Vec<ShotStates>, ServeError> {
        self.classify_shots_with_priority(Priority::Throughput, shots)
    }

    /// Like [`Self::classify_shots`], with an explicit [`Priority`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::classify_shots`].
    pub fn classify_shots_with_priority(
        &mut self,
        priority: Priority,
        shots: &[Shot],
    ) -> Result<Vec<ShotStates>, ServeError> {
        if shots.is_empty() {
            return Ok(Vec::new());
        }
        let request = encode_request(self.device, priority, shots);
        write_frame(&mut self.stream, &request).map_err(|e| {
            if e.kind() == io::ErrorKind::InvalidInput {
                // Over the frame-size bound: the request itself is the
                // problem, not the transport.
                ServeError::InvalidRequest(e.to_string())
            } else {
                ServeError::Closed
            }
        })?;
        let payload = match read_frame(&mut self.stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Err(ServeError::Closed),
            Err(WireError::Io(_)) => return Err(ServeError::Closed),
            Err(e) => return Err(ServeError::Protocol(e.to_string())),
        };
        match decode_message(&payload) {
            Ok(WireMessage::Response { states }) => {
                // Same contract as the in-process client: a short reply
                // is a typed protocol error, never a client panic.
                if states.len() != shots.len() {
                    return Err(ServeError::Protocol(format!(
                        "reply carries {} shot states for a {}-shot request",
                        states.len(),
                        shots.len()
                    )));
                }
                Ok(states)
            }
            Ok(WireMessage::Error(error)) => Err(error),
            Ok(WireMessage::Request { .. }) => Err(ServeError::Protocol(
                "server sent a request message".to_string(),
            )),
            Err(e) => Err(ServeError::Protocol(e.to_string())),
        }
    }

    /// Classifies one shot over the wire.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::classify_shots`].
    pub fn classify_shot(&mut self, shot: &Shot) -> Result<ShotStates, ServeError> {
        let states = self.classify_shots(std::slice::from_ref(shot))?;
        // `classify_shots` already rejected length mismatches.
        Ok(states[0])
    }
}
