//! Multi-device sharding: several [`KlinqSystem`]s behind one intake.
//!
//! One readout service rarely fronts one device: a dilution fridge hosts
//! several 5-qubit chips, each with its own trained discriminator fleet.
//! [`ShardedReadoutServer`] owns one coalescing collector per device
//! (each an ordinary [`ReadoutServer`], so every per-server guarantee —
//! bitwise-identical coalescing, backpressure, priority lanes — holds
//! per shard) and routes each request to its device's collector **at
//! intake**: [`ShardedReadoutServer::client`] hands out a plain
//! [`ReadoutClient`] bound to the chosen device, so the request path
//! after routing is exactly the single-server path and sharding adds
//! zero per-request overhead.
//!
//! # Self-healing supervision
//!
//! The fleet runs under a [`supervise`](crate::supervise) watchdog: a
//! shard whose collector dies (panic) or stalls (missed heartbeats) is
//! marked `Down`, its in-flight requests answer typed
//! [`ServeError::ShardDown`](crate::server::ServeError::ShardDown)
//! through their reply guards, and the watchdog restarts the collector
//! from the shard's restart source — the retained in-memory system
//! (tracking every hot swap and canary promotion), or a cold reload of
//! the deployment bundle through the checksum-verified persistence
//! path. Counters are shared across the restart, so every
//! [`ServeStats`] field stays monotonic: a restart never resets a
//! number.
//!
//! While a shard is down, client handles from [`Self::client`] route
//! health-aware: a request whose
//! [`RequestOptions::failover`](crate::sched::RequestOptions::failover)
//! permits it fails over to a healthy peer shard; one that does not
//! answers `ShardDown` immediately instead of queueing into a dead
//! collector.
//!
//! Fleets deploy from a single multi-device artifact
//! ([`klinq_core::persist::save_device_bundle`]) via
//! [`ShardedReadoutServer::load_bundle`]. A bundle whose artifacts are
//! *partially* corrupt boots **degraded**: every loadable device serves
//! normally, each quarantined device's shard starts `Down` (visible in
//! [`Self::shard_health`]), and the watchdog keeps retrying its
//! artifact — replacing the file on disk heals the shard without a
//! fleet restart.

use crate::server::{ReadoutClient, ReadoutServer, Router, ServeConfig, ServeError, ServeStats};
use crate::supervise::{RestartSource, ShardHealth, ShardHealthReport, Supervisor};
use klinq_core::{persist, KlinqError, KlinqSystem};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

/// A fleet of per-device coalescing servers behind one handle, under a
/// supervision watchdog.
///
/// Shutting the fleet down (explicitly or by drop) stops the watchdog
/// first — no restart races teardown — then shuts every shard down; a
/// *genuine* panic on any shard's collector (one the watchdog had not
/// already recovered) is re-raised on the owner, exactly like a single
/// [`ReadoutServer`].
#[derive(Debug)]
pub struct ShardedReadoutServer {
    /// Shared with the watchdog thread, which needs `&mut` access to a
    /// shard to respawn its collector — hence the per-slot `Mutex`.
    /// Request traffic does not touch these locks: clients talk to the
    /// shard's [`ShardLink`](crate::server) directly.
    shards: Arc<Vec<Mutex<ReadoutServer>>>,
    /// Health-aware failover routing table, shared by every client
    /// handle this fleet hands out.
    router: Arc<Router>,
    /// Where each shard restarts from, kept current across hot swaps
    /// and canary promotions.
    sources: Arc<Vec<RestartSource>>,
    /// The canary candidate staged on each shard, if any — retained so
    /// a *promotion* can update the shard's restart source with the
    /// exact promoted system.
    staged: Vec<Mutex<Option<Arc<KlinqSystem>>>>,
    supervisor: Supervisor,
}

impl ShardedReadoutServer {
    /// Starts one collector per system; `systems[i]` serves device `i`.
    /// Every shard runs the same `config` (backend, batching, intake
    /// bound, supervision).
    ///
    /// # Panics
    ///
    /// Panics if `systems` is empty or the configuration is unusable
    /// (same contract as [`ReadoutServer::start`]).
    pub fn start(systems: Vec<Arc<KlinqSystem>>, config: ServeConfig) -> Self {
        assert!(!systems.is_empty(), "a sharded server needs at least one device");
        let mut shards = Vec::with_capacity(systems.len());
        let mut sources = Vec::with_capacity(systems.len());
        for system in systems {
            sources.push(RestartSource::from_system(Arc::clone(&system)));
            shards.push(ReadoutServer::start(system, config.clone()));
        }
        Self::assemble(shards, sources, &config)
    }

    /// Loads a device fleet from a multi-device bundle artifact (see
    /// [`klinq_core::persist::load_device_bundle`]) and starts one shard
    /// per stored device, in bundle order.
    ///
    /// Per-device integrity is enforced per device: a corrupt artifact
    /// quarantines *its* device — the shard boots `Down` and the
    /// watchdog retries the bundle — while every intact device serves.
    /// Only a bundle with **no** loadable device (or an unreadable /
    /// malformed envelope) is a load error.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`KlinqError`] if the bundle cannot be
    /// read, its envelope fails validation, or every stored device is
    /// corrupt.
    pub fn load_bundle(path: &Path, config: ServeConfig) -> Result<Self, KlinqError> {
        let devices = persist::load_device_bundle_quarantined(path)?;
        if let Some(first_err) = devices.iter().find_map(|d| d.as_ref().err()) {
            if devices.iter().all(Result::is_err) {
                return Err(KlinqError::Artifact(format!(
                    "no loadable device in bundle {}: {first_err}",
                    path.display()
                )));
            }
        }
        let mut shards = Vec::with_capacity(devices.len());
        let mut sources = Vec::with_capacity(devices.len());
        for (device, loaded) in devices.into_iter().enumerate() {
            match loaded {
                Ok(system) => {
                    let system = Arc::new(system);
                    sources.push(RestartSource::from_bundle(
                        path.to_path_buf(),
                        device,
                        Some(Arc::clone(&system)),
                    ));
                    shards.push(ReadoutServer::start(system, config.clone()));
                }
                Err(_) => {
                    sources.push(RestartSource::from_bundle(path.to_path_buf(), device, None));
                    shards.push(ReadoutServer::vacant(config.clone()));
                }
            }
        }
        Ok(Self::assemble(shards, sources, &config))
    }

    fn assemble(
        shards: Vec<ReadoutServer>,
        sources: Vec<RestartSource>,
        config: &ServeConfig,
    ) -> Self {
        let staged = shards.iter().map(|_| Mutex::new(None)).collect();
        let router = Arc::new(Router::new(shards.iter().map(ReadoutServer::link).collect()));
        let shards = Arc::new(shards.into_iter().map(Mutex::new).collect::<Vec<_>>());
        let sources = Arc::new(sources);
        let supervisor =
            Supervisor::spawn(Arc::clone(&shards), Arc::clone(&sources), config.supervise);
        Self {
            shards,
            router,
            sources,
            staged,
            supervisor,
        }
    }

    /// Number of device shards.
    pub fn devices(&self) -> usize {
        self.shards.len()
    }

    /// A client handle bound to `device`'s shard — the routing decision.
    /// The returned handle is an ordinary [`ReadoutClient`]; everything
    /// downstream of intake is the single-server path, except that a
    /// request submitted while the shard is `Down` fails over to a
    /// healthy peer when
    /// [`RequestOptions::failover`](crate::sched::RequestOptions::failover)
    /// permits it (and answers [`ServeError::ShardDown`] otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.devices()`: binding a handle to a
    /// device that does not exist is a deployment bug, not a runtime
    /// condition (the wire front end validates device ids from
    /// untrusted requests before calling this).
    pub fn client(&self, device: usize) -> ReadoutClient {
        self.shard(device).client_with_router(Arc::clone(&self.router), device)
    }

    /// One shard's current health state.
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.devices()`.
    pub fn health(&self, device: usize) -> ShardHealth {
        self.shard(device).health()
    }

    /// Per-shard health, restart and down counts, in device order —
    /// the same report the wire health query serves.
    pub fn shard_health(&self) -> Vec<ShardHealthReport> {
        self.shards
            .iter()
            // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
            .map(|slot| slot.lock().unwrap().monitor().report())
            .collect()
    }

    /// Crash-fault injection: makes `device`'s collector abort
    /// mid-stream without draining its queues, exactly as a genuine
    /// panic would. Admitted requests on that shard die with the thread
    /// and answer [`ServeError::ShardDown`] through their reply guards;
    /// the watchdog then restarts the shard. Chaos harnesses use this
    /// to exercise the full `Down → Restarting → Healthy` cycle under
    /// live traffic.
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.devices()`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the shard already shut down,
    /// or [`ServeError::ShardDown`] if its collector is already dead.
    pub fn kill_shard(&self, device: usize) -> Result<(), ServeError> {
        self.shard(device).inject_kill()
    }

    /// Blue/green hot swap on one shard: atomically replaces `device`'s
    /// serving [`KlinqSystem`] between micro-batches and returns the
    /// shard's new model version. Other shards are untouched — a fleet
    /// rolls a new model device by device, watching each shard's canary
    /// report before moving on. Same guarantees as
    /// [`ReadoutServer::swap_model`]; the shard's restart source tracks
    /// the swap, so a later crash restarts the *new* model.
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.devices()` (same contract as
    /// [`Self::client`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`ReadoutServer::swap_model`].
    pub fn swap_model(
        &self,
        device: usize,
        system: Arc<KlinqSystem>,
    ) -> Result<u64, ServeError> {
        let version = self.shard(device).swap_model(Arc::clone(&system))?;
        self.sources[device].retain_swapped(system);
        Ok(version)
    }

    /// Stages a canary candidate on one shard (see
    /// [`ReadoutServer::stage_canary`]).
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.devices()`.
    ///
    /// # Errors
    ///
    /// Same contract as [`ReadoutServer::stage_canary`].
    pub fn stage_canary(
        &self,
        device: usize,
        system: Arc<KlinqSystem>,
        fraction: f64,
    ) -> Result<(), ServeError> {
        self.shard(device).stage_canary(Arc::clone(&system), fraction)?;
        // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
        *self.staged[device].lock().unwrap() = Some(system);
        Ok(())
    }

    /// Promotes one shard's staged canary to primary (see
    /// [`ReadoutServer::promote_canary`]). The shard's restart source
    /// tracks the promotion, so a later crash restarts the promoted
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.devices()`.
    ///
    /// # Errors
    ///
    /// Same contract as [`ReadoutServer::promote_canary`].
    pub fn promote_canary(&self, device: usize) -> Result<u64, ServeError> {
        let version = self.shard(device).promote_canary()?;
        // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
        if let Some(system) = self.staged[device].lock().unwrap().take() {
            self.sources[device].retain_swapped(system);
        }
        Ok(version)
    }

    /// Drops one shard's staged canary, if any (see
    /// [`ReadoutServer::abort_canary`]).
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.devices()`.
    ///
    /// # Errors
    ///
    /// Same contract as [`ReadoutServer::abort_canary`].
    pub fn abort_canary(&self, device: usize) -> Result<bool, ServeError> {
        let aborted = self.shard(device).abort_canary()?;
        // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
        *self.staged[device].lock().unwrap() = None;
        Ok(aborted)
    }

    /// One shard's serving model version.
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.devices()`.
    pub fn model_version(&self, device: usize) -> u64 {
        self.shard(device).model_version()
    }

    fn shard(&self, device: usize) -> MutexGuard<'_, ReadoutServer> {
        assert!(
            device < self.shards.len(),
            "device {device} out of range: this fleet serves {} devices",
            self.shards.len()
        );
        // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
        self.shards[device].lock().unwrap()
    }

    /// Per-device counter snapshots, in shard order.
    pub fn shard_stats(&self) -> Vec<ServeStats> {
        self.shards
            .iter()
            // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
            .map(|slot| slot.lock().unwrap().stats())
            .collect()
    }

    /// Fleet-wide counters: per-shard stats merged (sums, with
    /// `largest_batch` and `recovery_us` taking the max). The health
    /// gauges aggregate — `shards_healthy + shards_degraded +
    /// shards_down + shards_restarting == shards`.
    pub fn stats(&self) -> ServeStats {
        self.shard_stats()
            .iter()
            .fold(ServeStats::default(), |acc, s| acc.merge(s))
    }

    /// Fleet-wide per-tenant counters: each shard's
    /// [`ReadoutServer::tenant_stats`] merged positionally (every shard
    /// runs the same [`SchedPolicy`](crate::sched::SchedPolicy), so
    /// tenant `i` is the same tenant on every shard).
    pub fn tenant_stats(&self) -> Vec<crate::sched::TenantStats> {
        let mut merged: Vec<crate::sched::TenantStats> = Vec::new();
        for slot in self.shards.iter() {
            // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
            let stats = slot.lock().unwrap().tenant_stats();
            if merged.is_empty() {
                merged = stats;
            } else {
                for (acc, s) in merged.iter_mut().zip(&stats) {
                    *acc = acc.merge(s);
                }
            }
        }
        merged
    }

    /// Shuts the fleet down: stops the supervision watchdog first (so
    /// no restart races teardown), then shuts every shard down
    /// (draining each in-flight batch) and returns the final fleet-wide
    /// counters.
    pub fn shutdown(self) -> ServeStats {
        let Self {
            shards,
            router: _router,
            sources: _sources,
            staged: _staged,
            mut supervisor,
        } = self;
        supervisor.stop();
        // The joined watchdog was the only other owner of the shard
        // vector, so unwrapping the `Arc` cannot fail.
        let shards = Arc::try_unwrap(shards)
            // klinq-lint: allow(no-panic-serve) the joined watchdog released the only other shard-vector handle
            .expect("the stopped watchdog released the only other shard-vector handle");
        shards
            .into_iter()
            // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
            .map(|slot| slot.into_inner().unwrap().shutdown())
            .fold(ServeStats::default(), |acc, s| acc.merge(&s))
    }
}
