//! Multi-device sharding: several [`KlinqSystem`]s behind one intake.
//!
//! One readout service rarely fronts one device: a dilution fridge hosts
//! several 5-qubit chips, each with its own trained discriminator fleet.
//! [`ShardedReadoutServer`] owns one coalescing collector per device
//! (each an ordinary [`ReadoutServer`], so every per-server guarantee —
//! bitwise-identical coalescing, backpressure, priority lanes — holds
//! per shard) and routes each request to its device's collector **at
//! intake**: [`ShardedReadoutServer::client`] hands out a plain
//! [`ReadoutClient`] bound to the chosen device, so the request path
//! after routing is exactly the single-server path and sharding adds
//! zero per-request overhead.
//!
//! Fleets deploy from a single multi-device artifact
//! ([`klinq_core::persist::save_device_bundle`]) via [`ShardedReadoutServer::load_bundle`].

use crate::server::{ReadoutClient, ReadoutServer, ServeConfig, ServeStats};
use klinq_core::{persist, KlinqError, KlinqSystem};
use std::path::Path;
use std::sync::Arc;

/// A fleet of per-device coalescing servers behind one handle.
///
/// Shutting the fleet down (explicitly or by drop) shuts every shard
/// down; a panic on any shard's collector is re-raised on the owner,
/// exactly like a single [`ReadoutServer`].
#[derive(Debug)]
pub struct ShardedReadoutServer {
    shards: Vec<ReadoutServer>,
}

impl ShardedReadoutServer {
    /// Starts one collector per system; `systems[i]` serves device `i`.
    /// Every shard runs the same `config` (backend, batching, intake
    /// bound).
    ///
    /// # Panics
    ///
    /// Panics if `systems` is empty or the configuration is unusable
    /// (same contract as [`ReadoutServer::start`]).
    pub fn start(systems: Vec<Arc<KlinqSystem>>, config: ServeConfig) -> Self {
        assert!(!systems.is_empty(), "a sharded server needs at least one device");
        Self {
            shards: systems
                .into_iter()
                .map(|system| ReadoutServer::start(system, config.clone()))
                .collect(),
        }
    }

    /// Loads a device fleet from a multi-device bundle artifact (see
    /// [`klinq_core::persist::load_device_bundle`]) and starts one shard
    /// per stored device, in bundle order.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`KlinqError`] if the bundle cannot be
    /// read or fails its consistency checks.
    pub fn load_bundle(path: &Path, config: ServeConfig) -> Result<Self, KlinqError> {
        let systems = persist::load_device_bundle(path)?;
        Ok(Self::start(systems.into_iter().map(Arc::new).collect(), config))
    }

    /// Number of device shards.
    pub fn devices(&self) -> usize {
        self.shards.len()
    }

    /// A client handle bound to `device`'s shard — the routing decision.
    /// The returned handle is an ordinary [`ReadoutClient`]; everything
    /// downstream of intake is the single-server path.
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.devices()`: binding a handle to a
    /// device that does not exist is a deployment bug, not a runtime
    /// condition (the wire front end validates device ids from
    /// untrusted requests before calling this).
    pub fn client(&self, device: usize) -> ReadoutClient {
        assert!(
            device < self.shards.len(),
            "device {device} out of range: this fleet serves {} devices",
            self.shards.len()
        );
        self.shards[device].client()
    }

    /// Blue/green hot swap on one shard: atomically replaces `device`'s
    /// serving [`KlinqSystem`] between micro-batches and returns the
    /// shard's new model version. Other shards are untouched — a fleet
    /// rolls a new model device by device, watching each shard's canary
    /// report before moving on. Same guarantees as
    /// [`ReadoutServer::swap_model`].
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.devices()` (same contract as
    /// [`Self::client`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`ReadoutServer::swap_model`].
    pub fn swap_model(
        &self,
        device: usize,
        system: Arc<KlinqSystem>,
    ) -> Result<u64, crate::server::ServeError> {
        self.shard(device).swap_model(system)
    }

    /// Stages a canary candidate on one shard (see
    /// [`ReadoutServer::stage_canary`]).
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.devices()`.
    ///
    /// # Errors
    ///
    /// Same contract as [`ReadoutServer::stage_canary`].
    pub fn stage_canary(
        &self,
        device: usize,
        system: Arc<KlinqSystem>,
        fraction: f64,
    ) -> Result<(), crate::server::ServeError> {
        self.shard(device).stage_canary(system, fraction)
    }

    /// Promotes one shard's staged canary to primary (see
    /// [`ReadoutServer::promote_canary`]).
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.devices()`.
    ///
    /// # Errors
    ///
    /// Same contract as [`ReadoutServer::promote_canary`].
    pub fn promote_canary(&self, device: usize) -> Result<u64, crate::server::ServeError> {
        self.shard(device).promote_canary()
    }

    /// Drops one shard's staged canary, if any (see
    /// [`ReadoutServer::abort_canary`]).
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.devices()`.
    ///
    /// # Errors
    ///
    /// Same contract as [`ReadoutServer::abort_canary`].
    pub fn abort_canary(&self, device: usize) -> Result<bool, crate::server::ServeError> {
        self.shard(device).abort_canary()
    }

    /// One shard's serving model version.
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.devices()`.
    pub fn model_version(&self, device: usize) -> u64 {
        self.shard(device).model_version()
    }

    fn shard(&self, device: usize) -> &ReadoutServer {
        assert!(
            device < self.shards.len(),
            "device {device} out of range: this fleet serves {} devices",
            self.shards.len()
        );
        &self.shards[device]
    }

    /// Per-device counter snapshots, in shard order.
    pub fn shard_stats(&self) -> Vec<ServeStats> {
        self.shards.iter().map(ReadoutServer::stats).collect()
    }

    /// Fleet-wide counters: per-shard stats merged (sums, with
    /// `largest_batch` taking the max).
    pub fn stats(&self) -> ServeStats {
        self.shard_stats()
            .iter()
            .fold(ServeStats::default(), |acc, s| acc.merge(s))
    }

    /// Fleet-wide per-tenant counters: each shard's
    /// [`ReadoutServer::tenant_stats`] merged positionally (every shard
    /// runs the same [`SchedPolicy`](crate::sched::SchedPolicy), so
    /// tenant `i` is the same tenant on every shard).
    pub fn tenant_stats(&self) -> Vec<crate::sched::TenantStats> {
        let mut merged: Vec<crate::sched::TenantStats> = Vec::new();
        for shard in &self.shards {
            let stats = shard.tenant_stats();
            if merged.is_empty() {
                merged = stats;
            } else {
                for (acc, s) in merged.iter_mut().zip(&stats) {
                    *acc = acc.merge(s);
                }
            }
        }
        merged
    }

    /// Shuts every shard down (draining each in-flight batch) and
    /// returns the final fleet-wide counters.
    pub fn shutdown(self) -> ServeStats {
        self.shards
            .into_iter()
            .map(ReadoutServer::shutdown)
            .fold(ServeStats::default(), |acc, s| acc.merge(&s))
    }
}
