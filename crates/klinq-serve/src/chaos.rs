//! Deterministic fault injection for the wire serving stack.
//!
//! A reactor that has only ever seen clean peers and full-size reads is
//! not production-ready: real networks deliver one byte at a time, stall
//! sockets mid-frame, hang up halfway through a request, and wake event
//! loops late. This module injects exactly those faults — *inside* the
//! reactor and codec paths, where the state machines live — from a
//! seeded deterministic PRNG, so a failing soak run reproduces from its
//! seed.
//!
//! Enable injection server-side with [`crate::WireConfig::chaos_seed`]
//! or, fleet-wide (CI does this), with the
//! `KLINQ_CHAOS_SEED` environment variable. Every fault is
//! **correctness-transparent**: short reads and writes are legal
//! outcomes of non-blocking I/O, a skipped readiness event is re-fired
//! by level-triggered readiness (or the next poll-loop sweep), and a
//! deferred completion drain re-wakes itself — so the entire test suite
//! must pass unchanged with chaos enabled. What injection buys is
//! *coverage*: frame reassembly across arbitrary split points, partial
//! flushes under `EPOLLOUT` re-arming, and completion delivery racing
//! connection close.
//!
//! [`Chaos`] is public so tests can drive *peer-side* faults from the
//! same deterministic stream: byte-dribbling writers, mid-frame
//! hang-ups, stalled readers.
//!
//! Beyond I/O faults, [`CrashFaults`] injects *crash* faults into the
//! collector itself — seeded transient batch panics and content-keyed
//! poisoned requests — exercising the panic quarantine and shard
//! supervision machinery in [`crate::supervise`]. Transient panics are
//! correctness-transparent (the replay answers every request) and are
//! enabled fleet-wide in CI with `KLINQ_CHAOS_CRASH=<pct>`.

/// A deterministic fault stream (SplitMix64 — tiny, seedable, and good
/// enough to decorrelate fault sites; this is not a statistics-grade
/// generator and does not need to be).
#[derive(Debug, Clone)]
pub struct Chaos {
    state: u64,
}

impl Chaos {
    /// A fault stream from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Self {
            // Scramble so small seeds (0, 1, 2…) still start far apart.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// A decorrelated child stream (e.g. one per connection, salted by
    /// its token) so every connection sees its own fault schedule.
    pub fn derive(&self, salt: u64) -> Self {
        let mut child = Self::new(self.state ^ salt.wrapping_mul(0xA24B_AED4_963E_E407));
        child.next_u64();
        child
    }

    /// The next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.next_u64() % 100 < percent
    }

    /// A draw in `0..bound` (`0` when `bound` is 0).
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Skip this readable event entirely (a stalled read). Safe because
    /// readiness is level-triggered (and the poll loop sweeps): the
    /// bytes are still reported next iteration.
    pub(crate) fn stall_read(&mut self) -> bool {
        self.chance(10)
    }

    /// Shrinks a read request: sometimes to a single byte (the classic
    /// frame-boundary torture), sometimes to a small random chunk.
    pub(crate) fn clamp_read(&mut self, want: usize) -> usize {
        if want <= 1 {
            return want;
        }
        if self.chance(20) {
            1
        } else if self.chance(25) {
            1 + self.below(want - 1)
        } else {
            want
        }
    }

    /// Caps one readable event's total budget, simulating data that
    /// simply hasn't arrived yet (mid-frame stalls).
    pub(crate) fn read_budget(&mut self, budget: usize) -> usize {
        if self.chance(15) {
            1 + self.below(64.min(budget))
        } else {
            budget
        }
    }

    /// Skip this flush opportunity (a stalled write): `EPOLLOUT`
    /// interest (or the next sweep) retries it.
    pub(crate) fn stall_write(&mut self) -> bool {
        self.chance(10)
    }

    /// Shrinks a write, forcing short writes through the outbound
    /// buffer's resume path. Never returns 0 — a zero-length write is
    /// indistinguishable from a dead socket.
    pub(crate) fn clamp_write(&mut self, want: usize) -> usize {
        if want <= 1 {
            return want;
        }
        if self.chance(20) {
            1
        } else if self.chance(25) {
            1 + self.below(want - 1)
        } else {
            want
        }
    }

    /// Defer this completion drain one loop iteration (a delayed
    /// wakeup). The caller must re-arm its own wake so the deferral is a
    /// delay, never a hang.
    pub(crate) fn defer_completions(&mut self) -> bool {
        self.chance(12)
    }
}

/// Crash-fault injection for the collector thread (the supervision
/// story's test hook — see [`crate::supervise`]).
///
/// Two fault classes, both deterministic from the seed:
///
/// - **Transient batch panics** (`batch_panic_pct`): a fraction of
///   micro-batches panic mid-classification as if the collector hit a
///   transient bug. No request caused the panic, so the per-request
///   replay answers everyone — these faults are correctness-transparent
///   and safe to enable suite-wide (CI does, via `KLINQ_CHAOS_CRASH`).
/// - **Poisoned requests** (`poison_pct`): a fraction of requests —
///   chosen by a content-keyed draw, so the *same request* panics every
///   time it is classified — deterministically panic the batch they
///   join. The quarantine answers them [`crate::ServeError::Poisoned`]
///   and replays the rest of the batch. Not correctness-transparent
///   (the poisoned request never gets states), so it is a per-server
///   config knob only, never an environment default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFaults {
    /// Seed for the fault schedule. Equal seeds reproduce equal fault
    /// sequences for the same traffic.
    pub seed: u64,
    /// Percentage (0–100) of micro-batches hit by a transient panic.
    pub batch_panic_pct: u64,
    /// Percentage (0–100) of requests that deterministically panic
    /// classification (content-keyed, so replays re-panic and the
    /// request is quarantined).
    pub poison_pct: u64,
}

impl CrashFaults {
    /// No faults, from a seed; enable classes with the builders.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            batch_panic_pct: 0,
            poison_pct: 0,
        }
    }

    /// Sets the transient batch-panic rate (percent of micro-batches).
    #[must_use]
    pub fn batch_panics(mut self, pct: u64) -> Self {
        self.batch_panic_pct = pct;
        self
    }

    /// Sets the poisoned-request rate (percent of requests,
    /// content-keyed).
    #[must_use]
    pub fn poison(mut self, pct: u64) -> Self {
        self.poison_pct = pct;
        self
    }
}

/// The fleet-wide injection seed from `KLINQ_CHAOS_SEED`, if set and
/// parseable as `u64`. An unparseable value is ignored (chaos off)
/// rather than failing server startup.
pub(crate) fn env_seed() -> Option<u64> {
    std::env::var("KLINQ_CHAOS_SEED").ok()?.trim().parse().ok()
}

/// Fleet-wide transient crash faults from `KLINQ_CHAOS_CRASH` (a
/// percentage of micro-batches), seeded from `KLINQ_CHAOS_SEED` (or a
/// fixed default). Only the correctness-transparent transient class is
/// reachable from the environment — poisoned-request injection changes
/// observable results, so it stays an explicit [`CrashFaults`] config.
pub(crate) fn env_crash() -> Option<CrashFaults> {
    let pct: u64 = std::env::var("KLINQ_CHAOS_CRASH").ok()?.trim().parse().ok()?;
    if pct == 0 {
        return None;
    }
    Some(CrashFaults::new(env_seed().unwrap_or(0x006b_6c69_6e71)).batch_panics(pct.min(100)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_reproduce_the_stream() {
        let mut a = Chaos::new(42);
        let mut b = Chaos::new(42);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ_from_parent_and_siblings() {
        let parent = Chaos::new(7);
        let mut kids: Vec<u64> = (0..8).map(|salt| parent.derive(salt).next_u64()).collect();
        kids.sort_unstable();
        kids.dedup();
        assert_eq!(kids.len(), 8, "sibling streams collide");
    }

    #[test]
    fn clamps_stay_in_bounds_and_nonzero() {
        let mut ch = Chaos::new(3);
        for want in [1usize, 2, 7, 64 * 1024] {
            for _ in 0..200 {
                let r = ch.clamp_read(want);
                assert!(r >= 1 && r <= want, "clamp_read({want}) = {r}");
                let w = ch.clamp_write(want);
                assert!(w >= 1 && w <= want, "clamp_write({want}) = {w}");
                let b = ch.read_budget(want);
                assert!(b >= 1 && b <= want, "read_budget({want}) = {b}");
            }
        }
    }
}
