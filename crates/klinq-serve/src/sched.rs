//! Multi-tenant QoS scheduling: weighted fair intake with quotas and
//! deadlines.
//!
//! FIFO intake has a fairness hole: one greedy client saturating the
//! queue starves every other tenant behind it. This module closes it
//! with **deficit round-robin (DRR) weighted fair queueing** — the
//! layer between the wire and the micro-batcher:
//!
//! - Every request carries a [`TenantId`] (see [`RequestOptions`])
//!   naming a tenant declared in [`SchedPolicy::tenants`].
//! - Each tenant owns a **bounded queue**: admitting a request past the
//!   tenant's [`TenantSpec::max_queued_shots`] quota sheds it with
//!   [`crate::ServeError::Overloaded`] carrying a retry-after hint
//!   (estimated from the tenant's backlog and the measured service
//!   rate), while every other tenant keeps flowing.
//! - Micro-batches are assembled by **DRR**: each round, a tenant's
//!   deficit grows by `quantum_shots × weight` and it may dequeue
//!   requests until the deficit is spent. Over time every backlogged
//!   tenant receives a throughput share proportional to its weight, no
//!   matter how aggressively another tenant floods.
//! - Closing is **deadline-aware**: a batch closes early when the
//!   oldest queued request's deadline (minus
//!   [`SchedPolicy::deadline_slack`]) nears, and a request whose
//!   deadline has already passed is answered with
//!   [`crate::ServeError::DeadlineExceeded`] instead of stale work —
//!   at admission, while queued, and again at delivery, so an expired
//!   request never yields an `Ok`.
//!
//! Batches may mix tenants freely: the batched engine's results are
//! bitwise-identical for every batch composition, so fairness
//! scheduling never changes what any request's answer *is*, only when
//! it arrives.
//!
//! # Examples
//!
//! Declaring a policy — a paying tenant with 4× the weight of two
//! best-effort tenants, each best-effort tenant capped at 4096 queued
//! shots:
//!
//! ```
//! use klinq_serve::{SchedPolicy, TenantSpec};
//!
//! let policy = SchedPolicy::new(vec![
//!     TenantSpec::new("paid", 4),
//!     TenantSpec::new("best-effort-a", 1).with_quota(4096),
//!     TenantSpec::new("best-effort-b", 1).with_quota(4096),
//! ]);
//! assert_eq!(policy.tenants.len(), 3);
//! ```
//!
//! Serving under it — tenants are addressed by their index in the
//! policy via [`RequestOptions`]:
//!
//! ```no_run
//! use klinq_serve::{
//!     ReadoutServer, RequestOptions, SchedPolicy, ServeConfig, TenantId, TenantSpec,
//! };
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! # fn system() -> Arc<klinq_core::KlinqSystem> { unimplemented!() }
//! let config = ServeConfig {
//!     sched: SchedPolicy::new(vec![
//!         TenantSpec::new("paid", 4),
//!         TenantSpec::new("best-effort", 1).with_quota(4096),
//!     ]),
//!     ..ServeConfig::default()
//! };
//! let server = ReadoutServer::start(system(), config);
//! let client = server.client();
//! let opts = RequestOptions::new()
//!     .tenant(TenantId(1))
//!     .deadline(Duration::from_millis(5));
//! let states = client.classify_shots_opts(opts, vec![/* shots */])?;
//! for tenant in server.tenant_stats() {
//!     println!("{}: {} shots, {} shed", tenant.name, tenant.shots, tenant.shed);
//! }
//! # Ok::<(), klinq_serve::ServeError>(())
//! ```

use crate::server::Priority;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Identifies a tenant: an index into [`SchedPolicy::tenants`].
///
/// Tenant ids travel the wire verbatim (protocol v3), so they are plain
/// `u32`s rather than handles — an unknown id is rejected with a typed
/// [`crate::ServeError::UnknownTenant`] at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The default tenant (index 0) — the whole story for single-tenant
    /// deployments, which is why [`RequestOptions::default`] uses it.
    pub const DEFAULT: TenantId = TenantId(0);
}

/// One tenant's share contract: its scheduling weight and intake quota.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Operator-facing name, surfaced in [`TenantStats`].
    pub name: String,
    /// Relative throughput share under contention: a weight-4 tenant
    /// receives 4× the shots of a weight-1 tenant while both are
    /// backlogged. Must be ≥ 1.
    pub weight: u32,
    /// Quota on queued shots: a request that would push the tenant's
    /// backlog past this bound is shed with
    /// [`crate::ServeError::Overloaded`] (retry-after hint included)
    /// instead of queued. `usize::MAX` means "no per-tenant bound" —
    /// the global [`crate::ServeConfig::max_pending`] still applies.
    pub max_queued_shots: usize,
}

impl TenantSpec {
    /// A tenant with the given name and weight, and no per-tenant quota.
    pub fn new(name: &str, weight: u32) -> Self {
        Self {
            name: name.to_string(),
            weight,
            max_queued_shots: usize::MAX,
        }
    }

    /// Caps the tenant's backlog at `max_queued_shots` queued shots.
    #[must_use]
    pub fn with_quota(mut self, max_queued_shots: usize) -> Self {
        self.max_queued_shots = max_queued_shots;
        self
    }
}

/// The scheduling policy of a server: its tenant table and the DRR /
/// deadline tuning knobs. Part of [`crate::ServeConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedPolicy {
    /// The tenant table. [`TenantId`] `n` is `tenants[n]`; requests
    /// naming an id outside the table fail typed with
    /// [`crate::ServeError::UnknownTenant`].
    pub tenants: Vec<TenantSpec>,
    /// DRR quantum, in shots: how much deficit a weight-1 tenant earns
    /// per scheduling round. Smaller quanta interleave tenants more
    /// finely; the default (64) keeps scheduling overhead negligible
    /// against classification cost.
    pub quantum_shots: usize,
    /// How far ahead of the oldest queued deadline a lingering batch
    /// closes — budget for the classification itself, so the answer
    /// lands *before* the deadline, not at it.
    pub deadline_slack: Duration,
}

impl SchedPolicy {
    /// A policy over the given tenants with default tuning.
    pub fn new(tenants: Vec<TenantSpec>) -> Self {
        Self {
            tenants,
            ..Self::default()
        }
    }
}

impl Default for SchedPolicy {
    /// A single unconstrained tenant named `default` — byte-for-byte
    /// the pre-QoS FIFO behaviour.
    fn default() -> Self {
        Self {
            tenants: vec![TenantSpec::new("default", 1)],
            quantum_shots: 64,
            deadline_slack: Duration::from_micros(200),
        }
    }
}

/// Per-request submission options: scheduling lane, tenant, deadline.
///
/// `Default` is a [`Priority::Throughput`] request on the default
/// tenant with no deadline — exactly what the plain `classify_shots`
/// entry points submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestOptions {
    /// Scheduling lane (see [`Priority`]).
    pub priority: Priority,
    /// The tenant this request bills to.
    pub tenant: TenantId,
    /// Relative deadline: how long after submission the answer is still
    /// useful. Expired requests are answered with
    /// [`crate::ServeError::DeadlineExceeded`], never with stale
    /// states, and the oldest queued deadline pulls batch closing
    /// forward. `None` means "no deadline".
    pub deadline: Option<Duration>,
    /// Permit health-aware failover: when the request's shard is `Down`
    /// or `Restarting`, route it to a healthy peer shard instead of
    /// answering [`crate::ServeError::ShardDown`]. Off by default —
    /// failing over is only correct when every shard serves an
    /// equivalent model (e.g. replicas of one device), and only the
    /// caller knows that.
    pub allow_failover: bool,
}

impl RequestOptions {
    /// The default options (throughput lane, default tenant, no
    /// deadline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the scheduling lane.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the tenant.
    #[must_use]
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sets a relative deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Permits routing this request to a healthy peer shard when its
    /// own shard is down (see [`Self::allow_failover`]).
    #[must_use]
    pub fn failover(mut self, allow: bool) -> Self {
        self.allow_failover = allow;
        self
    }
}

/// A point-in-time snapshot of one tenant's serving counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant's id (its index in [`SchedPolicy::tenants`]).
    pub id: TenantId,
    /// The tenant's name from its [`TenantSpec`].
    pub name: String,
    /// The tenant's scheduling weight.
    pub weight: u32,
    /// Requests answered with states.
    pub requests: u64,
    /// Shots answered with states.
    pub shots: u64,
    /// Requests shed with [`crate::ServeError::Overloaded`] — the
    /// tenant's quota or the global intake bound.
    pub shed: u64,
    /// Requests answered with [`crate::ServeError::DeadlineExceeded`].
    pub deadline_misses: u64,
    /// Requests answered with [`crate::ServeError::Poisoned`] — they
    /// deterministically panicked classification and were quarantined.
    pub poisoned: u64,
    /// Requests this tenant submitted to a down shard that were routed
    /// to a healthy peer ([`RequestOptions::allow_failover`]). Counted
    /// on the shard the request was originally bound to.
    pub failovers: u64,
    /// Requests queued right now (a gauge; summed across shards in the
    /// fleet view).
    pub queued_requests: u64,
    /// High-water mark of the tenant's queued shots.
    pub peak_queued_shots: u64,
}

impl TenantStats {
    /// Aggregates another shard's counters for the same tenant into a
    /// fleet view: counters add, the peak takes the max.
    ///
    /// # Panics
    ///
    /// Panics if `other` describes a different tenant — merging across
    /// tenant tables is a caller bug.
    pub fn merge(&self, other: &Self) -> Self {
        assert_eq!(self.id, other.id, "merging stats of different tenants");
        Self {
            id: self.id,
            name: self.name.clone(),
            weight: self.weight,
            requests: self.requests + other.requests,
            shots: self.shots + other.shots,
            shed: self.shed + other.shed,
            deadline_misses: self.deadline_misses + other.deadline_misses,
            poisoned: self.poisoned + other.poisoned,
            failovers: self.failovers + other.failovers,
            queued_requests: self.queued_requests + other.queued_requests,
            peak_queued_shots: self.peak_queued_shots.max(other.peak_queued_shots),
        }
    }
}

// ---------------------------------------------------------------------
// The DRR scheduler proper (collector-side, single-threaded).
// ---------------------------------------------------------------------

/// One queued request as the scheduler sees it: its shot cost, timing
/// class, and an opaque payload (the serve layer's request; unit tests
/// use plain markers).
#[derive(Debug)]
pub(crate) struct QueuedItem<T> {
    /// Shots this request contributes to a batch.
    pub cost: usize,
    /// Absolute deadline, if the request carries one.
    pub deadline: Option<Instant>,
    /// [`Priority::Latency`] — closes the batch it joins immediately.
    pub latency: bool,
    pub payload: T,
}

struct TenantQueue<T> {
    weight: u64,
    quota: usize,
    queue: VecDeque<QueuedItem<T>>,
    queued_shots: usize,
    /// DRR deficit, in shots. Signed: a tenant may overdraw to dequeue
    /// a request bigger than its remaining deficit (requests are never
    /// split), paying the debt back over later rounds.
    deficit: i64,
}

/// Deficit-round-robin weighted fair queues, one per tenant.
///
/// Single-threaded by design: the collector thread owns it outright, so
/// admission, expiry and batch assembly need no locks.
pub(crate) struct Scheduler<T> {
    tenants: Vec<TenantQueue<T>>,
    /// Next tenant the DRR scan starts from, so service resumes where
    /// the previous batch left off instead of favouring tenant 0.
    cursor: usize,
    /// The cursor tenant's visit is still open: the batch filled while
    /// it held deficit. The next batch resumes its service *without*
    /// granting a fresh quantum — otherwise a tenant whose weighted
    /// quantum exceeds the batch budget would restart a full visit
    /// every batch and starve everyone behind it.
    mid_visit: bool,
    quantum: u64,
    queued_requests: usize,
    queued_shots: usize,
    latency_queued: usize,
    /// EWMA of observed service cost, for retry-after hints. 0 until
    /// the first batch completes.
    ewma_ns_per_shot: f64,
}

impl<T> Scheduler<T> {
    pub fn new(policy: &SchedPolicy) -> Self {
        assert!(!policy.tenants.is_empty(), "sched policy declares no tenants");
        assert!(policy.quantum_shots > 0, "sched quantum_shots must be non-zero");
        for spec in &policy.tenants {
            assert!(spec.weight > 0, "tenant `{}` has zero weight", spec.name);
            assert!(
                spec.max_queued_shots > 0,
                "tenant `{}` has a zero shot quota (it could never receive a request)",
                spec.name
            );
        }
        Self {
            tenants: policy
                .tenants
                .iter()
                .map(|spec| TenantQueue {
                    weight: u64::from(spec.weight),
                    quota: spec.max_queued_shots,
                    queue: VecDeque::new(),
                    queued_shots: 0,
                    deficit: 0,
                })
                .collect(),
            cursor: 0,
            mid_visit: false,
            quantum: policy.quantum_shots as u64,
            queued_requests: 0,
            queued_shots: 0,
            latency_queued: 0,
            ewma_ns_per_shot: 0.0,
        }
    }

    pub fn n_tenants(&self) -> usize {
        self.tenants.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queued_requests == 0
    }

    pub fn queued_shots(&self) -> usize {
        self.queued_shots
    }

    /// Queued requests and shots of one tenant (gauge snapshots).
    pub fn tenant_depth(&self, tenant: usize) -> (usize, usize) {
        let t = &self.tenants[tenant];
        (t.queue.len(), t.queued_shots)
    }

    /// Whether any queued request rides the latency lane (the batch
    /// must close now).
    pub fn has_latency(&self) -> bool {
        self.latency_queued > 0
    }

    /// Admits a request to its tenant's queue, or hands it back when
    /// the tenant's quota is exhausted (the caller sheds it typed).
    pub fn admit(&mut self, tenant: usize, item: QueuedItem<T>) -> Result<(), QueuedItem<T>> {
        let t = &mut self.tenants[tenant];
        // `saturating_add`: a quota of usize::MAX must admit regardless
        // of the incoming cost.
        if t.queued_shots.saturating_add(item.cost) > t.quota {
            return Err(item);
        }
        t.queued_shots += item.cost;
        self.queued_requests += 1;
        self.queued_shots += item.cost;
        self.latency_queued += usize::from(item.latency);
        t.queue.push_back(item);
        Ok(())
    }

    /// The earliest deadline among all queued requests, if any carries
    /// one. Linear in the backlog — bounded by the intake queue, and
    /// paid once per collector wakeup, not per request.
    pub fn earliest_deadline(&self) -> Option<Instant> {
        self.tenants
            .iter()
            .flat_map(|t| t.queue.iter())
            .filter_map(|item| item.deadline)
            .min()
    }

    /// Removes every queued request whose deadline is at or before
    /// `now`, returning them (with their tenant index) for the caller
    /// to answer with [`crate::ServeError::DeadlineExceeded`].
    pub fn take_expired(&mut self, now: Instant) -> Vec<(usize, QueuedItem<T>)> {
        let mut expired = Vec::new();
        for (ti, t) in self.tenants.iter_mut().enumerate() {
            if t.queue.iter().all(|item| item.deadline.is_none_or(|d| d > now)) {
                continue;
            }
            // Rotate through the queue once, keeping live requests in
            // order and extracting expired ones.
            for _ in 0..t.queue.len() {
                // klinq-lint: allow(no-panic-serve) the loop is bounded by queue.len(), so pop_front cannot fail
                let item = t.queue.pop_front().expect("length-bounded loop");
                if item.deadline.is_some_and(|d| d <= now) {
                    t.queued_shots -= item.cost;
                    self.queued_requests -= 1;
                    self.queued_shots -= item.cost;
                    self.latency_queued -= usize::from(item.latency);
                    expired.push((ti, item));
                } else {
                    t.queue.push_back(item);
                }
            }
        }
        expired
    }

    /// Assembles one micro-batch of at least `budget` shots (or until
    /// the queues drain): DRR over the tenant queues, FIFO within each.
    /// A request is never split, so the batch may overshoot the budget
    /// by at most one request.
    ///
    /// When latency-lane requests are queued, they — and their
    /// same-tenant FIFO predecessors — are force-included first (still
    /// charged against the tenant's deficit, so the latency lane is not
    /// a fairness bypass), then DRR fills the remaining budget.
    pub fn assemble(&mut self, budget: usize) -> Vec<(usize, QueuedItem<T>)> {
        let mut out = Vec::new();
        let mut shots = 0usize;
        if self.latency_queued > 0 {
            for ti in 0..self.tenants.len() {
                while self.tenant_has_latency(ti) {
                    // klinq-lint: allow(no-panic-serve) tenant_has_latency just confirmed a queued latency request
                    let item = self.pop_front(ti).expect("latency request is queued");
                    shots += item.cost;
                    out.push((ti, item));
                }
            }
        }
        let n = self.tenants.len();
        while shots < budget && self.queued_requests > 0 {
            // Skip to the next backlogged tenant. Terminates:
            // `queued_requests > 0` guarantees one exists. Classic DRR:
            // an idle tenant forfeits its deficit (and any debt)
            // instead of hoarding service.
            while self.tenants[self.cursor].queue.is_empty() {
                self.tenants[self.cursor].deficit = 0;
                self.mid_visit = false;
                self.cursor = (self.cursor + 1) % n;
            }
            let ti = self.cursor;
            // One quantum per *visit*, not per batch: a visit paused by
            // a full batch resumes on its remaining deficit.
            if !self.mid_visit {
                self.tenants[ti].deficit += (self.quantum * self.tenants[ti].weight) as i64;
                self.mid_visit = true;
            }
            while self.tenants[ti].deficit > 0 && shots < budget {
                let Some(item) = self.pop_front(ti) else { break };
                shots += item.cost;
                out.push((ti, item));
            }
            if self.tenants[ti].deficit <= 0 || self.tenants[ti].queue.is_empty() {
                // The visit ended on its own terms (deficit spent, or
                // queue drained — which forfeits leftover deficit);
                // move on. A batch-full pause leaves the visit open.
                if self.tenants[ti].queue.is_empty() {
                    self.tenants[ti].deficit = 0;
                }
                self.mid_visit = false;
                self.cursor = (self.cursor + 1) % n;
            }
        }
        out
    }

    fn tenant_has_latency(&self, tenant: usize) -> bool {
        self.tenants[tenant].queue.iter().any(|item| item.latency)
    }

    /// Pops a tenant's oldest request, charging its cost to the
    /// tenant's deficit and the global gauges.
    fn pop_front(&mut self, tenant: usize) -> Option<QueuedItem<T>> {
        let t = &mut self.tenants[tenant];
        let item = t.queue.pop_front()?;
        t.deficit -= item.cost as i64;
        t.queued_shots -= item.cost;
        self.queued_requests -= 1;
        self.queued_shots -= item.cost;
        self.latency_queued -= usize::from(item.latency);
        Some(item)
    }

    /// Feeds one batch's measured service cost into the retry-after
    /// estimator.
    pub fn observe_service(&mut self, ns_per_shot: f64) {
        if !ns_per_shot.is_finite() || ns_per_shot <= 0.0 {
            return;
        }
        self.ewma_ns_per_shot = if self.ewma_ns_per_shot == 0.0 {
            ns_per_shot
        } else {
            0.8 * self.ewma_ns_per_shot + 0.2 * ns_per_shot
        };
    }

    /// How long a shed client should wait before retrying: the time to
    /// serve the tenant's current backlog at the measured service rate,
    /// clamped to a sane band. `None` before the first batch completed
    /// (no estimate is more honest than a guess).
    pub fn retry_after(&self, tenant: usize) -> Option<Duration> {
        if self.ewma_ns_per_shot == 0.0 {
            return None;
        }
        let backlog = self.tenants[tenant].queued_shots.max(1) as f64;
        let ns = (backlog * self.ewma_ns_per_shot).min(5e9);
        Some(Duration::from_nanos(ns as u64).max(Duration::from_micros(100)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(cost: usize) -> QueuedItem<u32> {
        QueuedItem {
            cost,
            deadline: None,
            latency: false,
            payload: 0,
        }
    }

    fn policy(specs: &[(&str, u32, usize)]) -> SchedPolicy {
        SchedPolicy::new(
            specs
                .iter()
                .map(|&(name, weight, quota)| TenantSpec::new(name, weight).with_quota(quota))
                .collect(),
        )
    }

    #[test]
    fn default_policy_is_one_unbounded_tenant() {
        let p = SchedPolicy::default();
        assert_eq!(p.tenants.len(), 1);
        assert_eq!(p.tenants[0].max_queued_shots, usize::MAX);
        assert_eq!(p.tenants[0].weight, 1);
    }

    #[test]
    fn single_tenant_preserves_fifo_order() {
        let mut s = Scheduler::new(&SchedPolicy::default());
        for i in 0..5u32 {
            let mut it = item(10);
            it.payload = i;
            s.admit(0, it).unwrap();
        }
        let batch = s.assemble(usize::MAX);
        let order: Vec<u32> = batch.iter().map(|(_, it)| it.payload).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn quota_hands_the_request_back() {
        let mut s = Scheduler::new(&policy(&[("a", 1, 25)]));
        s.admit(0, item(20)).unwrap();
        let bounced = s.admit(0, item(10)).unwrap_err();
        assert_eq!(bounced.cost, 10);
        // Draining the queue frees the quota again.
        let drained = s.assemble(usize::MAX);
        assert_eq!(drained.len(), 1);
        s.admit(0, item(10)).unwrap();
    }

    #[test]
    fn weights_shape_shares_under_backlog() {
        // Two backlogged tenants, weight 3 vs 1: over a long run the
        // dequeued shot shares must approach 3:1.
        let mut s = Scheduler::new(&policy(&[
            ("heavy", 3, usize::MAX),
            ("light", 1, usize::MAX),
        ]));
        let mut served = [0usize; 2];
        for _round in 0..200 {
            for ti in 0..2 {
                while s.tenant_depth(ti).0 < 32 {
                    s.admit(ti, item(8)).unwrap();
                }
            }
            for (ti, it) in s.assemble(128) {
                served[ti] += it.cost;
            }
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!(
            (2.5..=3.5).contains(&ratio),
            "weight-3 tenant served {}, weight-1 served {} (ratio {ratio:.2}, want ~3)",
            served[0],
            served[1]
        );
    }

    #[test]
    fn equal_weights_split_evenly_regardless_of_request_size() {
        // Tenant 0 sends big requests, tenant 1 small ones; equal
        // weights must still serve roughly equal shot totals.
        let mut s = Scheduler::new(&policy(&[("big", 1, usize::MAX), ("small", 1, usize::MAX)]));
        let mut served = [0usize; 2];
        for _round in 0..300 {
            while s.tenant_depth(0).1 < 1000 {
                s.admit(0, item(100)).unwrap();
            }
            while s.tenant_depth(1).1 < 1000 {
                s.admit(1, item(3)).unwrap();
            }
            for (ti, it) in s.assemble(128) {
                served[ti] += it.cost;
            }
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "equal-weight tenants served {} vs {} shots (ratio {ratio:.2})",
            served[0],
            served[1]
        );
    }

    #[test]
    fn oversized_request_is_dequeued_whole() {
        let mut s = Scheduler::new(&SchedPolicy::default());
        s.admit(0, item(10_000)).unwrap();
        let batch = s.assemble(64);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].1.cost, 10_000);
    }

    #[test]
    fn latency_requests_are_force_included() {
        // Small budget, two tenants; tenant 1's queue ends in a latency
        // request. Assembly must include it (and its predecessor) even
        // though DRR would have stopped at the budget inside tenant 0.
        let mut s = Scheduler::new(&policy(&[("bulk", 1, usize::MAX), ("rt", 1, usize::MAX)]));
        for _ in 0..8 {
            s.admit(0, item(64)).unwrap();
        }
        s.admit(1, item(4)).unwrap();
        let mut rt = item(1);
        rt.latency = true;
        s.admit(1, rt).unwrap();
        assert!(s.has_latency());
        let batch = s.assemble(64);
        assert!(
            batch.iter().any(|(ti, it)| *ti == 1 && it.latency),
            "latency request missing from the expedited batch"
        );
        assert!(!s.has_latency());
    }

    #[test]
    fn expired_requests_are_extracted_in_order() {
        let mut s = Scheduler::new(&SchedPolicy::default());
        let now = Instant::now();
        let mut dead = item(5);
        dead.deadline = Some(now - Duration::from_millis(1));
        dead.payload = 7;
        let mut live = item(5);
        live.deadline = Some(now + Duration::from_secs(60));
        s.admit(0, item(5)).unwrap();
        s.admit(0, dead).unwrap();
        s.admit(0, live).unwrap();
        assert_eq!(s.earliest_deadline(), Some(now - Duration::from_millis(1)));
        let expired = s.take_expired(now);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].1.payload, 7);
        // Survivors keep FIFO order and the gauges stay consistent.
        assert_eq!(s.queued_shots(), 10);
        let batch = s.assemble(usize::MAX);
        assert_eq!(batch.len(), 2);
        assert_eq!(s.queued_shots(), 0);
    }

    #[test]
    fn idle_tenant_forfeits_its_deficit() {
        let mut s = Scheduler::new(&policy(&[("a", 1, usize::MAX), ("b", 1, usize::MAX)]));
        // Tenant 1 idles while tenant 0 drains many rounds; when tenant
        // 1 wakes it must not have hoarded hundreds of quanta.
        for _ in 0..100 {
            s.admit(0, item(64)).unwrap();
            let _ = s.assemble(64);
        }
        s.admit(0, item(64)).unwrap();
        s.admit(1, item(64)).unwrap();
        let batch = s.assemble(10_000);
        assert_eq!(batch.len(), 2, "both tenants drain in one generous batch");
    }

    #[test]
    fn retry_after_tracks_backlog_and_service_rate() {
        let mut s = Scheduler::new(&SchedPolicy::default());
        assert_eq!(s.retry_after(0), None, "no hint before the first batch");
        s.observe_service(1000.0); // 1 µs per shot
        s.admit(0, item(10_000)).unwrap();
        let hint = s.retry_after(0).expect("estimate available");
        // 10_000 shots × 1 µs = 10 ms.
        assert!(
            hint >= Duration::from_millis(5) && hint <= Duration::from_millis(20),
            "hint {hint:?} should be near 10 ms"
        );
    }
}
