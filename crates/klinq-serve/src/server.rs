//! The coalescing server: std threads + channels, no async runtime.
//!
//! One collector thread owns the [`KlinqSystem`] and a receiver. Clients
//! are cheap cloneable sender handles; each request carries its shots and
//! a private reply channel. The collector opens a micro-batch on the
//! first request it receives, then keeps admitting requests until either
//! the batch's shot budget ([`ServeConfig::max_batch_shots`]) is reached
//! or the linger window ([`ServeConfig::max_linger`]) expires, classifies
//! the whole batch in one call, and scatters the per-request slices back.
//! An idle server blocks on `recv` and costs nothing.
//!
//! Several scheduling policies shape the intake:
//!
//! - **Backpressure**: the intake queue is bounded
//!   ([`ServeConfig::max_pending`]). A full queue sheds the request with
//!   [`ServeError::Overloaded`] instead of letting senders pile up
//!   unboundedly behind a saturated collector — the client sees the
//!   overload immediately and can retry, downgrade, or fail over.
//! - **Priority lanes**: [`Priority::Latency`] requests bypass the
//!   linger window — the batch they join closes immediately — while
//!   [`Priority::Throughput`] requests coalesce as usual. A mid-circuit
//!   measurement that gates a conditional pulse cannot wait out a linger
//!   tuned for throughput traffic.
//! - **Multi-tenant QoS** ([`ServeConfig::sched`], [`crate::sched`]):
//!   the collector drains the intake channel into per-tenant bounded
//!   queues and assembles micro-batches by deficit-round-robin weighted
//!   fair queueing, so one flooding tenant cannot starve the rest.
//!   Per-tenant quotas shed with a retry-after hint, and request
//!   deadlines both pull batch closing forward and fail expired
//!   requests typed ([`ServeError::DeadlineExceeded`]) instead of
//!   delivering stale work.

use crate::chaos::{self, Chaos, CrashFaults};
use crate::sched::{QueuedItem, RequestOptions, SchedPolicy, Scheduler, TenantId, TenantStats};
use crate::supervise::{ChaosCrash, ShardHealth, ShardMonitor, SuperviseConfig};
use klinq_core::{Backend, BatchDiscriminator, KlinqSystem, ShotStates};
use klinq_sim::Shot;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduling class of a classification request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Coalesce freely: wait out the linger window so the batch fills.
    /// The default for bulk readout traffic.
    #[default]
    Throughput,
    /// Latency-sensitive (e.g. a mid-circuit measurement gating a
    /// conditional pulse): the batch this request joins closes
    /// immediately instead of lingering for more traffic.
    Latency,
}

/// Tuning knobs for a [`ReadoutServer`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Which datapath serves the requests.
    pub backend: Backend,
    /// Shot budget per micro-batch: a batch closes as soon as it holds at
    /// least this many shots. A single request larger than the budget is
    /// never split — it forms one oversized batch on its own, so
    /// responses always map one-to-one onto requests.
    pub max_batch_shots: usize,
    /// How long a non-full batch may wait for more requests to coalesce
    /// before it is classified anyway. Zero means "drain whatever is
    /// already queued, never wait"; durations too large to express as a
    /// deadline (e.g. [`Duration::MAX`]) mean "wait until the budget
    /// fills or the server shuts down".
    pub max_linger: Duration,
    /// Intake-queue bound, in queued requests: a client whose send finds
    /// the queue full is shed with [`ServeError::Overloaded`] instead of
    /// queueing unboundedly behind a saturated collector.
    pub max_pending: usize,
    /// Optional scheduling chunk-size override forwarded to
    /// [`BatchDiscriminator::with_chunk_size`] (`None` keeps the
    /// engine's default). Purely a performance knob — results are
    /// identical for every value.
    pub chunk_size: Option<usize>,
    /// Multi-tenant QoS policy: the tenant table and the DRR/deadline
    /// tuning (see [`crate::sched`]). The default is a single
    /// unconstrained tenant — the pre-QoS FIFO behaviour.
    pub sched: SchedPolicy,
    /// Supervision tuning: heartbeat staleness, watchdog sweep
    /// interval, restart backoff (see [`crate::supervise`]).
    pub supervise: SuperviseConfig,
    /// Deterministic crash-fault injection into the collector (seeded
    /// transient batch panics and content-keyed poisoned requests).
    /// `None` (the default) still honours the fleet-wide
    /// `KLINQ_CHAOS_CRASH` environment knob, which enables only the
    /// correctness-transparent transient class.
    pub crash: Option<CrashFaults>,
}

impl Default for ServeConfig {
    /// Float backend, 1024-shot batches, 200 µs linger, 1024-request
    /// intake queue, single-tenant scheduling.
    fn default() -> Self {
        Self {
            backend: Backend::Float,
            max_batch_shots: 1024,
            max_linger: Duration::from_micros(200),
            max_pending: 1024,
            chunk_size: None,
            sched: SchedPolicy::default(),
            supervise: SuperviseConfig::default(),
            crash: None,
        }
    }
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server has shut down (or its worker died) before answering.
    Closed,
    /// The request's shots cannot be classified by this system (wrong
    /// qubit count, ragged I/Q pairs, or traces shorter than the feature
    /// front end's floor). Only the offending request is rejected — the
    /// server keeps serving everyone else.
    InvalidRequest(String),
    /// The request was shed without queueing: the global intake queue
    /// was full ([`ServeConfig::max_pending`]), or the tenant's own
    /// quota ([`crate::TenantSpec::max_queued_shots`]) was exhausted.
    /// `retry_after` is the server's estimate of when the backlog will
    /// have drained (from the tenant's queued shots and the measured
    /// service rate); `None` when no estimate exists — retry later, or
    /// against another shard.
    Overloaded {
        /// Estimated wait before a retry is likely to be admitted.
        retry_after: Option<Duration>,
    },
    /// The reply violated the serving contract (e.g. a response whose
    /// length does not match the request's shot count, or a malformed
    /// wire frame). Indicates a buggy or mismatched server, never a bad
    /// request.
    Protocol(String),
    /// A client-side deadline expired before the server answered (wire
    /// clients with a read timeout configured). The request may still be
    /// executing server-side; only the wait was abandoned.
    Timeout,
    /// The transport to the server was lost while the request was in
    /// flight (wire clients): the connection dropped, or reconnecting
    /// exhausted the backoff policy. The request's fate server-side is
    /// unknown — classification is pure, so resubmitting is always safe,
    /// and the blocking `classify_*` wrappers do so automatically when a
    /// reconnect policy is configured.
    Disconnected,
    /// The server is draining for shutdown: requests already in flight
    /// are answered, but no new work or connections are accepted. Retry
    /// against another shard or wait for the replacement to come up.
    Draining,
    /// The request's deadline ([`crate::RequestOptions::deadline`])
    /// expired before classification completed: the answer would have
    /// been stale, so none is produced. The request did not fail on its
    /// merits — resubmitting with a fresh deadline is always safe.
    DeadlineExceeded,
    /// The request names a [`TenantId`] outside the server's tenant
    /// table ([`crate::SchedPolicy::tenants`]). Rejected per-request —
    /// in-process at submission, over the wire with a typed error frame
    /// that leaves the connection serving.
    UnknownTenant(u32),
    /// The request deterministically panicked classification: the
    /// micro-batch it joined panicked, and so did its solo replay, so
    /// the request itself is the culprit. It is quarantined — answered
    /// with this error exactly once and never re-batched — while every
    /// other request in the batch was replayed and answered normally.
    /// Resubmitting the same shots will poison again; this is a
    /// per-request verdict, not a server condition.
    Poisoned,
    /// The request's shard is [`ShardHealth::Down`] (collector dead or
    /// stuck) or [`ShardHealth::Restarting`], and either the request
    /// did not permit failover ([`RequestOptions::allow_failover`]) or
    /// no healthy peer exists. Classification is pure, so resubmitting
    /// is always safe — after the watchdog restarts the shard, or to a
    /// peer.
    ShardDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Closed => write!(f, "readout server is closed"),
            Self::InvalidRequest(msg) => write!(f, "invalid readout request: {msg}"),
            Self::Overloaded { retry_after: None } => {
                write!(f, "readout server overloaded: intake queue full")
            }
            Self::Overloaded {
                retry_after: Some(wait),
            } => {
                write!(
                    f,
                    "readout server overloaded: intake queue full (retry in ~{} ms)",
                    wait.as_millis().max(1)
                )
            }
            Self::Protocol(msg) => write!(f, "readout serving protocol violation: {msg}"),
            Self::Timeout => write!(f, "readout request timed out before the server answered"),
            Self::Disconnected => {
                write!(f, "connection to the readout server was lost mid-flight")
            }
            Self::Draining => write!(f, "readout server is draining for shutdown"),
            Self::DeadlineExceeded => {
                write!(f, "readout request deadline expired before classification completed")
            }
            Self::UnknownTenant(id) => {
                write!(f, "unknown tenant id {id}: not in the server's tenant table")
            }
            Self::Poisoned => {
                write!(
                    f,
                    "request poisoned its micro-batch: classification panicked on it \
                     (batch and solo) and the request was quarantined"
                )
            }
            Self::ShardDown => {
                write!(f, "the request's shard is down (restarting); retry or fail over")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Number of qubits a served system reads per shot (the width of
/// [`ShotStates`]). Per-qubit drift and canary telemetry is sized to it.
pub const NUM_QUBITS: usize = 5;

/// One tenant's serving counters (see [`TenantStats`] for semantics).
#[derive(Debug, Default)]
pub(crate) struct TenantCounters {
    requests: AtomicU64,
    shots: AtomicU64,
    shed: AtomicU64,
    deadline_misses: AtomicU64,
    poisoned: AtomicU64,
    failovers: AtomicU64,
    queued_requests: AtomicU64,
    peak_queued_shots: AtomicU64,
}

/// Counters the collector maintains (shared snapshot-style with handles).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    requests: AtomicU64,
    shots: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicU64,
    shed: AtomicU64,
    latency_requests: AtomicU64,
    expedited_batches: AtomicU64,
    deadline_misses: AtomicU64,
    /// One entry per tenant in [`SchedPolicy::tenants`] — sized at
    /// server start, never resized, so clients can validate tenant ids
    /// without a lock.
    tenants: Vec<TenantCounters>,
    // Live-ops: model versioning, canary lane, drift monitor.
    model_version: AtomicU64,
    model_swaps: AtomicU64,
    canary_requests: AtomicU64,
    canary_shots: AtomicU64,
    canary_batches: AtomicU64,
    canary_divergent_shots: AtomicU64,
    canary_disagreements: [AtomicU64; NUM_QUBITS],
    drift_shots: AtomicU64,
    drift_excited: [AtomicU64; NUM_QUBITS],
    calib_shots: AtomicU64,
    calib_prepared_excited: [AtomicU64; NUM_QUBITS],
    calib_false_excited: [AtomicU64; NUM_QUBITS],
    calib_false_ground: [AtomicU64; NUM_QUBITS],
    /// Supervision: the health state machine, heartbeat, and restart
    /// counters. Inside the shared counter block so it survives
    /// collector restarts exactly like the serving counters — a restart
    /// reuses the same `Arc<Counters>`, so every count is monotonic
    /// over the shard's lifetime by construction.
    pub(crate) monitor: ShardMonitor,
}

impl Counters {
    /// Counters for a server running under `policy`.
    fn new(policy: &SchedPolicy) -> Self {
        Self {
            tenants: policy.tenants.iter().map(|_| TenantCounters::default()).collect(),
            ..Self::default()
        }
    }

    /// Records a deadline miss on the global and per-tenant counters.
    fn record_deadline_miss(&self, tenant: usize) {
        self.deadline_misses.fetch_add(1, Ordering::Relaxed);
        self.tenants[tenant].deadline_misses.fetch_add(1, Ordering::Relaxed);
    }
}

/// Loads a per-qubit counter array into a plain snapshot array.
fn load_per_qubit(counters: &[AtomicU64; NUM_QUBITS]) -> [u64; NUM_QUBITS] {
    std::array::from_fn(|qb| counters[qb].load(Ordering::Relaxed))
}

/// Element-wise sum of two per-qubit snapshot arrays.
fn add_per_qubit(a: [u64; NUM_QUBITS], b: [u64; NUM_QUBITS]) -> [u64; NUM_QUBITS] {
    std::array::from_fn(|qb| a[qb] + b[qb])
}

/// A point-in-time snapshot of a server's coalescing behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: u64,
    /// Shots classified.
    pub shots: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Largest micro-batch, in shots.
    pub largest_batch: u64,
    /// Requests shed with [`ServeError::Overloaded`] because the intake
    /// queue was full.
    pub shed: u64,
    /// Answered requests that carried [`Priority::Latency`].
    pub latency_requests: u64,
    /// Micro-batches that closed early — skipping the linger window —
    /// because they contained a [`Priority::Latency`] request.
    pub expedited_batches: u64,
    /// Requests answered with [`ServeError::DeadlineExceeded`] because
    /// their deadline expired before classification completed (summed
    /// over all tenants; [`ReadoutServer::tenant_stats`] splits it).
    pub deadline_misses: u64,
    /// TCP connections a wire front end accepted over its lifetime
    /// (0 for a purely in-process server).
    pub wire_accepted: u64,
    /// Wire connections reaped for exceeding the idle timeout.
    pub wire_reaped: u64,
    /// Wire connections open right now.
    pub wire_open: u64,
    /// High-water mark of simultaneously open wire connections.
    pub wire_peak_open: u64,
    /// The model version serving right now. Starts at 1 and bumps on
    /// every hot swap or canary promotion. In a merged fleet view this is
    /// the max across shards (shards version independently).
    pub model_version: u64,
    /// Hot model swaps applied (including canary promotions).
    pub model_swaps: u64,
    /// Requests answered by the canary (candidate) model.
    pub canary_requests: u64,
    /// Shots classified by the canary model.
    pub canary_shots: u64,
    /// Micro-batches routed to the canary model.
    pub canary_batches: u64,
    /// Canary shots on which the candidate and primary disagreed on at
    /// least one qubit. `canary_divergent_shots / canary_shots` is the
    /// divergence rate an operator checks before promoting.
    pub canary_divergent_shots: u64,
    /// Per-qubit count of canary shots where candidate and primary
    /// disagreed on that qubit's state.
    pub canary_disagreements: [u64; NUM_QUBITS],
    /// Shots feeding the drift monitor: every shot the server answered
    /// (served states, whichever model produced them).
    pub drift_shots: u64,
    /// Per-qubit count of served shots read as excited. The running
    /// excited fraction ([`Self::excited_fraction`]) drifting away from
    /// its commissioning value is the label-free drift signal.
    pub drift_excited: [u64; NUM_QUBITS],
    /// Calibration shots answered (requests submitted through
    /// [`ReadoutClient::classify_calibration_shots`], which carry their
    /// prepared states as ground truth).
    pub calib_shots: u64,
    /// Per-qubit count of calibration shots prepared excited.
    pub calib_prepared_excited: [u64; NUM_QUBITS],
    /// Per-qubit count of calibration shots prepared ground but read
    /// excited (the `P(1|0)` confusion numerator).
    pub calib_false_excited: [u64; NUM_QUBITS],
    /// Per-qubit count of calibration shots prepared excited but read
    /// ground (the `P(0|1)` confusion numerator).
    pub calib_false_ground: [u64; NUM_QUBITS],
    /// Shards in this view (1 for a single server; summed in a fleet
    /// merge, so the `shards_*` gauges below read as "out of N").
    pub shards: u64,
    /// Shards currently [`ShardHealth::Healthy`].
    pub shards_healthy: u64,
    /// Shards currently [`ShardHealth::Degraded`] (still serving).
    pub shards_degraded: u64,
    /// Shards currently [`ShardHealth::Down`].
    pub shards_down: u64,
    /// Shards currently [`ShardHealth::Restarting`].
    pub shards_restarting: u64,
    /// Micro-batch panics the quarantine caught (monotonic).
    pub panics: u64,
    /// Requests answered [`ServeError::Poisoned`] (monotonic).
    pub poisoned: u64,
    /// Transitions into [`ShardHealth::Down`] (monotonic — with
    /// [`Self::restarts`], the observable trace of every
    /// `Down → Restarting → Healthy` recovery).
    pub downs: u64,
    /// Completed shard restarts (monotonic).
    pub restarts: u64,
    /// Requests rerouted to a healthy peer while their shard was down
    /// ([`RequestOptions::allow_failover`]).
    pub failovers: u64,
    /// Requests answered [`ServeError::ShardDown`].
    pub shard_down_rejections: u64,
    /// Duration of the most recent `Down → Healthy` recovery, in µs
    /// (max across shards in a fleet merge; 0 before any restart).
    pub recovery_us: u64,
}

impl ServeStats {
    /// Mean shots per executed micro-batch (0 when nothing ran yet).
    pub fn mean_batch_shots(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.shots as f64 / self.batches as f64
        }
    }

    /// Running fraction of served shots read as excited on one qubit
    /// (`None` until anything was served). Tracked label-free over every
    /// answered shot; a sustained move away from the value observed at
    /// commissioning is the cheapest drift alarm.
    pub fn excited_fraction(&self, qb: usize) -> Option<f64> {
        (self.drift_shots > 0).then(|| self.drift_excited[qb] as f64 / self.drift_shots as f64)
    }

    /// Running assignment fidelity on one qubit over the calibration
    /// lane (`None` until calibration shots were served): the fraction
    /// of calibration shots whose served state matched the prepared
    /// state.
    pub fn calibration_fidelity(&self, qb: usize) -> Option<f64> {
        (self.calib_shots > 0).then(|| {
            let errors = self.calib_false_excited[qb] + self.calib_false_ground[qb];
            1.0 - errors as f64 / self.calib_shots as f64
        })
    }

    /// Running confusion estimates on one qubit over the calibration
    /// lane: `(P(read 1 | prepared 0), P(read 0 | prepared 1))`. Either
    /// side is `None` until its prepared class has been observed.
    pub fn confusion(&self, qb: usize) -> (Option<f64>, Option<f64>) {
        let prep_excited = self.calib_prepared_excited[qb];
        let prep_ground = self.calib_shots - prep_excited;
        (
            (prep_ground > 0).then(|| self.calib_false_excited[qb] as f64 / prep_ground as f64),
            (prep_excited > 0).then(|| self.calib_false_ground[qb] as f64 / prep_excited as f64),
        )
    }

    /// Fraction of canary shots where the candidate disagreed with the
    /// primary on at least one qubit (`None` until the canary served).
    /// The number an operator checks before
    /// [`ReadoutServer::promote_canary`].
    pub fn canary_divergence(&self) -> Option<f64> {
        (self.canary_shots > 0)
            .then(|| self.canary_divergent_shots as f64 / self.canary_shots as f64)
    }

    /// Field-wise sum — aggregates per-shard stats into a fleet view
    /// (`largest_batch`, `wire_peak_open` and `model_version` take the
    /// max, the rest add).
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            requests: self.requests + other.requests,
            shots: self.shots + other.shots,
            batches: self.batches + other.batches,
            largest_batch: self.largest_batch.max(other.largest_batch),
            shed: self.shed + other.shed,
            latency_requests: self.latency_requests + other.latency_requests,
            expedited_batches: self.expedited_batches + other.expedited_batches,
            deadline_misses: self.deadline_misses + other.deadline_misses,
            wire_accepted: self.wire_accepted + other.wire_accepted,
            wire_reaped: self.wire_reaped + other.wire_reaped,
            wire_open: self.wire_open + other.wire_open,
            wire_peak_open: self.wire_peak_open.max(other.wire_peak_open),
            model_version: self.model_version.max(other.model_version),
            model_swaps: self.model_swaps + other.model_swaps,
            canary_requests: self.canary_requests + other.canary_requests,
            canary_shots: self.canary_shots + other.canary_shots,
            canary_batches: self.canary_batches + other.canary_batches,
            canary_divergent_shots: self.canary_divergent_shots + other.canary_divergent_shots,
            canary_disagreements: add_per_qubit(
                self.canary_disagreements,
                other.canary_disagreements,
            ),
            drift_shots: self.drift_shots + other.drift_shots,
            drift_excited: add_per_qubit(self.drift_excited, other.drift_excited),
            calib_shots: self.calib_shots + other.calib_shots,
            calib_prepared_excited: add_per_qubit(
                self.calib_prepared_excited,
                other.calib_prepared_excited,
            ),
            calib_false_excited: add_per_qubit(
                self.calib_false_excited,
                other.calib_false_excited,
            ),
            calib_false_ground: add_per_qubit(self.calib_false_ground, other.calib_false_ground),
            shards: self.shards + other.shards,
            shards_healthy: self.shards_healthy + other.shards_healthy,
            shards_degraded: self.shards_degraded + other.shards_degraded,
            shards_down: self.shards_down + other.shards_down,
            shards_restarting: self.shards_restarting + other.shards_restarting,
            panics: self.panics + other.panics,
            poisoned: self.poisoned + other.poisoned,
            downs: self.downs + other.downs,
            restarts: self.restarts + other.restarts,
            failovers: self.failovers + other.failovers,
            shard_down_rejections: self.shard_down_rejections + other.shard_down_rejections,
            recovery_us: self.recovery_us.max(other.recovery_us),
        }
    }
}

/// How a finished request's result reaches its submitter.
///
/// A callback rather than a channel sender: the wire reactor serves
/// thousands of connections from one event loop and cannot park a
/// thread per request, so its completions are pushed straight into the
/// loop's queue by the callback. The blocking client path simply wraps
/// a channel sender in one — same coalescing, same results.
pub(crate) type ReplyFn = Box<dyn FnOnce(Result<Vec<ShotStates>, ServeError>) + Send>;

/// A reply obligation that cannot be lost. Every admitted request holds
/// exactly one; it is consumed by [`Self::send`], and if it is instead
/// *dropped* — the collector died with the request queued, mid-batch,
/// or buffered in the intake channel — the drop answers the submitter
/// typed ([`ServeError::ShardDown`], or [`ServeError::Closed`] during
/// an orderly shutdown). Zero lost responses is a structural property,
/// not a bookkeeping discipline.
pub(crate) struct Reply {
    f: Option<ReplyFn>,
    counters: Arc<Counters>,
}

impl Reply {
    fn new(f: ReplyFn, counters: Arc<Counters>) -> Self {
        Self { f: Some(f), counters }
    }

    fn send(mut self, result: Result<Vec<ShotStates>, ServeError>) {
        if let Some(f) = self.f.take() {
            f(result);
        }
    }

    /// Disarms the guard without answering — only for submissions the
    /// intake *rejected synchronously* (shed/closed), whose contract is
    /// "the completion never runs".
    fn defuse(mut self) {
        self.f = None;
    }
}

impl Drop for Reply {
    fn drop(&mut self) {
        if let Some(f) = self.f.take() {
            let error = if self.counters.monitor.is_stopped() {
                ServeError::Closed
            } else {
                self.counters.monitor.note_shard_down_rejection();
                ServeError::ShardDown
            };
            // This drop may run while the collector unwinds from a
            // panic; a panicking completion callback would abort the
            // process, so it is contained.
            let _ = catch_unwind(AssertUnwindSafe(move || f(Err(error))));
        }
    }
}

/// One in-flight request: the shots to classify and where to answer.
pub(crate) struct Request {
    shots: Vec<Shot>,
    priority: Priority,
    tenant: TenantId,
    /// Absolute deadline (converted from the relative
    /// [`RequestOptions::deadline`] at submission).
    deadline: Option<Instant>,
    /// Calibration-lane request: each shot's `prepared` states are
    /// ground truth, so the collector scores the served states against
    /// them and feeds the per-qubit fidelity/confusion counters.
    calibration: bool,
    reply: Reply,
}

/// Live-ops commands. They ride the same intake channel as requests, so
/// their ordering relative to traffic is the channel's FIFO order, and
/// the collector applies them strictly *between* micro-batches: a
/// command arriving mid-linger first closes the open batch on the old
/// model. That is the whole hot-swap atomicity argument — there is no
/// point in time at which one batch sees two models.
enum Control {
    /// Blue/green hot swap: replace the serving system. Acks the new
    /// model version.
    Swap {
        system: Arc<KlinqSystem>,
        ack: mpsc::Sender<Result<u64, ServeError>>,
    },
    /// Stage a candidate model on the canary lane: `fraction` of
    /// micro-batches route to it (answered by it, compared against the
    /// primary). Replaces any previously staged candidate.
    StageCanary {
        system: Arc<KlinqSystem>,
        fraction: f64,
        ack: mpsc::Sender<Result<(), ServeError>>,
    },
    /// Promote the staged candidate to primary. Acks the new model
    /// version, or an error if no candidate is staged.
    PromoteCanary {
        ack: mpsc::Sender<Result<u64, ServeError>>,
    },
    /// Drop the staged candidate. Acks whether one was staged.
    AbortCanary { ack: mpsc::Sender<bool> },
    /// Crash-fault injection: the collector aborts mid-stream — it
    /// panics the moment it dequeues this, *without* draining its
    /// queues, so requests already admitted die with the thread (their
    /// reply guards answer [`ServeError::ShardDown`]) exactly as a real
    /// mid-batch abort would. Deliberately escapes the quarantine.
    Kill,
}

/// What travels over the intake channel.
enum Msg {
    Request(Request),
    Control(Control),
    /// Finish the batch in flight, then exit. Sent by
    /// [`ReadoutServer::shutdown`] so teardown never depends on every
    /// cloned [`ReadoutClient`] having been dropped.
    Shutdown,
}

/// The shared indirection between clients and one shard's collector.
///
/// Clients (including the wire reactor's long-lived snapshot) hold an
/// `Arc<ShardLink>`, never a raw channel sender: a shard restart swaps
/// a fresh sender into the link, and every existing handle reaches the
/// new collector with no re-wiring.
#[derive(Debug)]
pub(crate) struct ShardLink {
    tx: RwLock<SyncSender<Msg>>,
    counters: Arc<Counters>,
}

impl ShardLink {
    fn new(tx: SyncSender<Msg>, counters: Arc<Counters>) -> Self {
        Self {
            tx: RwLock::new(tx),
            counters,
        }
    }

    /// Points the link at a fresh collector (shard restart).
    fn swap_tx(&self, tx: SyncSender<Msg>) {
        // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
        *self.tx.write().unwrap() = tx;
    }

    fn try_send(&self, msg: Msg) -> Result<(), TrySendError<Msg>> {
        // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
        self.tx.read().unwrap().try_send(msg)
    }

    /// Blocking send for controls and shutdown (rides out a full
    /// queue; fails only when the collector is gone).
    fn send(&self, msg: Msg) -> Result<(), mpsc::SendError<Msg>> {
        // klinq-lint: allow(no-panic-serve) lock poisoning requires a prior panic, which this same rule forbids on the serve path
        let tx = self.tx.read().unwrap().clone();
        tx.send(msg)
    }

    pub(crate) fn monitor(&self) -> &ShardMonitor {
        &self.counters.monitor
    }
}

/// Fleet-wide failover routing: every shard's link, so a client bound
/// to a down shard can reroute a willing request to a healthy peer.
#[derive(Debug)]
pub(crate) struct Router {
    links: Vec<Arc<ShardLink>>,
    /// Rotates the scan start so failover traffic spreads over peers
    /// instead of piling on the first healthy one.
    next: AtomicUsize,
}

impl Router {
    pub(crate) fn new(links: Vec<Arc<ShardLink>>) -> Self {
        Self {
            links,
            next: AtomicUsize::new(0),
        }
    }

    /// A serving peer of `device`, if any.
    fn healthy_peer(&self, device: usize) -> Option<Arc<ShardLink>> {
        let n = self.links.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        (0..n)
            .map(|i| (start + i) % n)
            .filter(|&i| i != device)
            .map(|i| &self.links[i])
            .find(|link| !link.monitor().is_stopped() && link.monitor().is_serving())
            .map(Arc::clone)
    }
}

/// A cheap cloneable handle for submitting classification requests.
///
/// Handles stay usable after the [`ReadoutServer`] value is shut down
/// only in the sense that calls fail fast with [`ServeError::Closed`].
#[derive(Debug, Clone)]
pub struct ReadoutClient {
    link: Arc<ShardLink>,
    /// Set for fleet-issued handles ([`crate::ShardedReadoutServer`]):
    /// enables health-aware failover to peer shards.
    router: Option<Arc<Router>>,
    /// This handle's device index within the router (0 for standalone
    /// servers).
    device: usize,
}

impl ReadoutClient {
    /// Classifies a batch of shots at [`Priority::Throughput`], blocking
    /// until the coalesced result arrives. Response index `i` is always
    /// shot `i`'s states.
    ///
    /// An empty request completes immediately without a server round
    /// trip.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server shut down before
    /// answering, [`ServeError::Overloaded`] if the intake queue was
    /// full (the request was shed, not queued), or
    /// [`ServeError::InvalidRequest`] if the shots cannot be classified
    /// by the serving system (the request is rejected at intake; the
    /// server keeps running).
    pub fn classify_shots(&self, shots: Vec<Shot>) -> Result<Vec<ShotStates>, ServeError> {
        self.classify_shots_with_priority(Priority::Throughput, shots)
    }

    /// Like [`Self::classify_shots`], with an explicit [`Priority`]:
    /// `Latency` requests close their micro-batch immediately instead of
    /// waiting out the linger window.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::classify_shots`].
    pub fn classify_shots_with_priority(
        &self,
        priority: Priority,
        shots: Vec<Shot>,
    ) -> Result<Vec<ShotStates>, ServeError> {
        self.classify_blocking(RequestOptions::new().priority(priority), false, shots)
    }

    /// Like [`Self::classify_shots`], with full per-request
    /// [`RequestOptions`]: scheduling lane, tenant, and an optional
    /// relative deadline.
    ///
    /// # Errors
    ///
    /// The [`Self::classify_shots`] contract, plus
    /// [`ServeError::UnknownTenant`] when the options name a tenant
    /// outside the server's table (rejected synchronously, nothing is
    /// queued) and [`ServeError::DeadlineExceeded`] when the deadline
    /// expires before classification completes. A quota shed arrives as
    /// [`ServeError::Overloaded`] with a retry-after hint.
    pub fn classify_shots_opts(
        &self,
        opts: RequestOptions,
        shots: Vec<Shot>,
    ) -> Result<Vec<ShotStates>, ServeError> {
        self.classify_blocking(opts, false, shots)
    }

    /// Classifies calibration shots: the result is served exactly like
    /// [`Self::classify_shots`], but each shot's `prepared` states are
    /// additionally treated as ground truth and scored against the served
    /// states, feeding the per-qubit running fidelity/confusion estimates
    /// in [`ServeStats`] (`calib_*` fields, [`ServeStats::confusion`],
    /// [`ServeStats::calibration_fidelity`]). Interleaving a trickle of
    /// calibration shots with production traffic is how an operator
    /// detects drift and validates a candidate model.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::classify_shots`].
    pub fn classify_calibration_shots(
        &self,
        shots: Vec<Shot>,
    ) -> Result<Vec<ShotStates>, ServeError> {
        self.classify_blocking(RequestOptions::new(), true, shots)
    }

    fn classify_blocking(
        &self,
        opts: RequestOptions,
        calibration: bool,
        shots: Vec<Shot>,
    ) -> Result<Vec<ShotStates>, ServeError> {
        let n_shots = shots.len();
        let (reply_tx, reply_rx) = mpsc::channel();
        self.submit(opts, calibration, shots, move |result| {
            // A submitter that gave up (dropped its receiver) is not an
            // error for the batch.
            let _ = reply_tx.send(result);
        })?;
        let states = reply_rx.recv().map_err(|_| ServeError::Closed)??;
        // The scatter contract is one state row per requested shot. An
        // in-process collector upholds it by construction, but a remote
        // (wire) or buggy server might not — and a silently short reply
        // must fail typed on the *client*, never panic it.
        if states.len() != n_shots {
            return Err(ServeError::Protocol(format!(
                "reply carries {} shot states for a {n_shots}-shot request",
                states.len()
            )));
        }
        Ok(states)
    }

    /// Submits shots without blocking for the result: `on_complete` runs
    /// exactly once with the coalesced result (on the collector thread)
    /// once the request's micro-batch executes. This is the submission
    /// path the wire reactor uses — one event loop, thousands of
    /// requests in flight, no parked thread per request.
    ///
    /// An empty request completes immediately: `on_complete` runs with
    /// `Ok(vec![])` before this returns.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Overloaded`] (request shed, queue full) or
    /// [`ServeError::Closed`] (server gone) **without** running
    /// `on_complete` — a rejected submission has no completion. Requests
    /// that fail later (e.g. [`ServeError::InvalidRequest`] at intake
    /// validation) deliver their error through `on_complete` instead.
    pub fn submit_with_priority(
        &self,
        priority: Priority,
        shots: Vec<Shot>,
        on_complete: impl FnOnce(Result<Vec<ShotStates>, ServeError>) + Send + 'static,
    ) -> Result<(), ServeError> {
        self.submit(RequestOptions::new().priority(priority), false, shots, on_complete)
    }

    /// Like [`Self::submit_with_priority`], with full per-request
    /// [`RequestOptions`]. This is the submission path the wire reactor
    /// uses to thread tenant identity and deadlines through.
    ///
    /// # Errors
    ///
    /// The [`Self::submit_with_priority`] contract, plus
    /// [`ServeError::UnknownTenant`] — returned synchronously, without
    /// running `on_complete` — when the options name a tenant outside
    /// the server's table.
    pub fn submit_opts(
        &self,
        opts: RequestOptions,
        shots: Vec<Shot>,
        on_complete: impl FnOnce(Result<Vec<ShotStates>, ServeError>) + Send + 'static,
    ) -> Result<(), ServeError> {
        self.submit(opts, false, shots, on_complete)
    }

    fn submit(
        &self,
        opts: RequestOptions,
        calibration: bool,
        shots: Vec<Shot>,
        on_complete: impl FnOnce(Result<Vec<ShotStates>, ServeError>) + Send + 'static,
    ) -> Result<(), ServeError> {
        // The tenant table is fixed at server start, so an unknown id is
        // rejected right here — synchronously, before anything queues.
        let tenant = opts.tenant.0 as usize;
        if tenant >= self.link.counters.tenants.len() {
            return Err(ServeError::UnknownTenant(opts.tenant.0));
        }
        if shots.is_empty() {
            on_complete(Ok(Vec::new()));
            return Ok(());
        }
        // The relative deadline becomes absolute at submission — queue
        // wait counts against it. A deadline too far out to represent
        // means "no deadline".
        let deadline = opts.deadline.and_then(|d| Instant::now().checked_add(d));
        // Health-aware routing: a down shard answers typed, or — when
        // the request permits it — hands the request to a healthy peer.
        let target = self.route_link(&opts, tenant)?;
        let reply = Reply::new(Box::new(on_complete), Arc::clone(&target.counters));
        // A bounded `try_send` is the backpressure policy: a full queue
        // means the collector is saturated, and the honest answer is an
        // immediate `Overloaded`, not an unbounded invisible wait. (No
        // retry-after hint here: the *global* queue is full, so the
        // tenant-backlog estimate does not apply.)
        match target.try_send(Msg::Request(Request {
            shots,
            priority: opts.priority,
            tenant: opts.tenant,
            deadline,
            calibration,
            reply,
        })) {
            Ok(()) => Ok(()),
            Err(e) => {
                // A rejected submission must not run its completion —
                // disarm the returned request's reply guard first.
                let (error, msg) = match e {
                    TrySendError::Full(msg) => {
                        target.counters.shed.fetch_add(1, Ordering::Relaxed);
                        target.counters.tenants[tenant].shed.fetch_add(1, Ordering::Relaxed);
                        (ServeError::Overloaded { retry_after: None }, msg)
                    }
                    TrySendError::Disconnected(msg) => {
                        // The collector died between the health check
                        // and the send. An orderly shutdown stays
                        // `Closed`; a crash is a down shard (the
                        // watchdog, if any, will restart it).
                        let error = if target.monitor().is_stopped() {
                            ServeError::Closed
                        } else {
                            target.monitor().note_shard_down_rejection();
                            ServeError::ShardDown
                        };
                        (error, msg)
                    }
                };
                if let Msg::Request(req) = msg {
                    req.reply.defuse();
                }
                Err(error)
            }
        }
    }

    /// Picks the link a submission rides: this handle's own shard while
    /// it serves, a healthy peer when it is down and the request allows
    /// failover, a typed [`ServeError::ShardDown`] otherwise.
    fn route_link(&self, opts: &RequestOptions, tenant: usize) -> Result<Arc<ShardLink>, ServeError> {
        let monitor = self.link.monitor();
        if monitor.is_stopped() {
            return Err(ServeError::Closed);
        }
        if monitor.is_serving() {
            return Ok(Arc::clone(&self.link));
        }
        if opts.allow_failover {
            if let Some(peer) = self.router.as_ref().and_then(|r| r.healthy_peer(self.device)) {
                // Billed to the shard the request was bound to — the
                // failover count is the down shard's story.
                monitor.note_failover();
                self.link.counters.tenants[tenant]
                    .failovers
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(peer);
            }
        }
        monitor.note_shard_down_rejection();
        Err(ServeError::ShardDown)
    }

    /// This handle's shard health, restart and down counts — what the
    /// wire health query reports per device.
    pub(crate) fn health_report(&self) -> crate::supervise::ShardHealthReport {
        self.link.monitor().report()
    }

    /// Classifies one shot, blocking until its coalesced result arrives.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::classify_shots`].
    pub fn classify_shot(&self, shot: Shot) -> Result<ShotStates, ServeError> {
        let states = self.classify_shots(vec![shot])?;
        // `classify_shots` already rejected length mismatches, so the
        // indexing below cannot panic.
        Ok(states[0])
    }
}

/// A running micro-batching readout server.
///
/// Dropping the server (or calling [`Self::shutdown`]) closes the intake
/// channel, lets the collector finish the batch in flight, and joins it.
#[derive(Debug)]
pub struct ReadoutServer {
    link: Arc<ShardLink>,
    collector: Option<JoinHandle<()>>,
    counters: Arc<Counters>,
    /// The tenant table the server runs under, kept for
    /// [`Self::tenant_stats`] snapshots.
    sched: SchedPolicy,
    /// Kept for collector respawns (shard restart) — a restarted
    /// collector runs the exact configuration the shard started with.
    config: ServeConfig,
}

impl ReadoutServer {
    fn assert_config(config: &ServeConfig) {
        assert!(config.max_batch_shots > 0, "max_batch_shots must be non-zero");
        assert!(
            config.max_pending > 0,
            "max_pending must be non-zero (a zero-capacity intake queue would shed everything)"
        );
        assert!(config.chunk_size != Some(0), "chunk size override must be non-zero");
    }

    /// Starts the server: spawns the collector thread that owns `system`
    /// and serves requests per `config`.
    ///
    /// # Panics
    ///
    /// Panics immediately (not later on the collector thread) if the
    /// configuration is unusable: a zero `max_batch_shots`, a zero
    /// `max_pending`, a zero `chunk_size` override, or an unusable
    /// scheduling policy (no tenants, a zero weight, quantum or quota).
    pub fn start(system: Arc<KlinqSystem>, config: ServeConfig) -> Self {
        Self::assert_config(&config);
        // Built here — not on the collector thread — so an unusable
        // policy panics the caller immediately.
        let sched: Scheduler<Request> = Scheduler::new(&config.sched);
        let counters = Arc::new(Counters::new(&config.sched));
        counters.model_version.store(1, Ordering::Relaxed);
        counters.monitor.beat();
        let (tx, rx) = mpsc::sync_channel(config.max_pending);
        let collector = spawn_collector(system, config.clone(), sched, rx, Arc::clone(&counters));
        Self {
            link: Arc::new(ShardLink::new(tx, Arc::clone(&counters))),
            collector: Some(collector),
            counters,
            sched: config.sched.clone(),
            config,
        }
    }

    /// A shard slot whose device failed to load (quarantined bundle
    /// artifact): no collector, health `Down` from birth. Submissions
    /// answer [`ServeError::ShardDown`] (or fail over); the fleet
    /// watchdog keeps retrying the bundle and brings the shard up via
    /// [`Self::respawn`] once the artifact loads.
    pub(crate) fn vacant(config: ServeConfig) -> Self {
        Self::assert_config(&config);
        let _probe: Scheduler<Request> = Scheduler::new(&config.sched);
        let counters = Arc::new(Counters::new(&config.sched));
        counters.monitor.mark_down();
        // A sender whose receiver is already gone: any send fails
        // `Disconnected`, and the health gate answers before that.
        let (tx, _dead_rx) = mpsc::sync_channel(1);
        Self {
            link: Arc::new(ShardLink::new(tx, Arc::clone(&counters))),
            collector: None,
            counters,
            sched: config.sched.clone(),
            config,
        }
    }

    /// Replaces a dead collector with a fresh one serving `system`,
    /// re-pointing every existing client handle (the link swap) at it.
    /// Counters — including model version and supervision counts — are
    /// shared and survive untouched: stats are monotonic across the
    /// restart. The caller (the watchdog) owns the health transitions.
    pub(crate) fn respawn(&mut self, system: Arc<KlinqSystem>) {
        if let Some(handle) = self.collector.take() {
            if handle.is_finished() {
                // Reap the dead collector. Its panic payload is not
                // re-raised — the restart *is* the recovery, and the
                // panic is already counted in the monitor.
                let _ = handle.join();
            }
            // A stuck-but-alive collector cannot be killed; abandoning
            // the handle detaches it. Swapping the link below drops the
            // old intake sender, so if the thread ever unsticks it sees
            // a disconnected channel and exits; requests it still owns
            // are answered by it (late) or by their reply guards.
        }
        let sched: Scheduler<Request> = Scheduler::new(&self.config.sched);
        let (tx, rx) = mpsc::sync_channel(self.config.max_pending);
        let collector =
            spawn_collector(system, self.config.clone(), sched, rx, Arc::clone(&self.counters));
        self.link.swap_tx(tx);
        self.collector = Some(collector);
    }

    /// Whether the collector thread is gone (dead, or never started for
    /// a vacant shard).
    pub(crate) fn collector_finished(&self) -> bool {
        self.collector.as_ref().is_none_or(JoinHandle::is_finished)
    }

    pub(crate) fn monitor(&self) -> &ShardMonitor {
        &self.counters.monitor
    }

    pub(crate) fn link(&self) -> Arc<ShardLink> {
        Arc::clone(&self.link)
    }

    /// This server's health state (standalone servers have no watchdog,
    /// so only `Healthy`/`Degraded` arise here; fleet shards see the
    /// full machine).
    pub fn health(&self) -> ShardHealth {
        self.counters.monitor.health()
    }

    /// A new client handle for this server.
    pub fn client(&self) -> ReadoutClient {
        ReadoutClient {
            link: Arc::clone(&self.link),
            router: None,
            device: 0,
        }
    }

    /// A fleet client handle: bound to this shard, but able to fail
    /// over through `router` when the shard is down.
    pub(crate) fn client_with_router(&self, router: Arc<Router>, device: usize) -> ReadoutClient {
        ReadoutClient {
            link: Arc::clone(&self.link),
            router: Some(router),
            device,
        }
    }

    /// A snapshot of the coalescing counters (the `wire_*` fields stay
    /// zero here — they belong to a wire front end's own stats).
    pub fn stats(&self) -> ServeStats {
        let monitor = &self.counters.monitor;
        let health = monitor.health();
        ServeStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            shots: self.counters.shots.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            largest_batch: self.counters.largest_batch.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            latency_requests: self.counters.latency_requests.load(Ordering::Relaxed),
            expedited_batches: self.counters.expedited_batches.load(Ordering::Relaxed),
            deadline_misses: self.counters.deadline_misses.load(Ordering::Relaxed),
            model_version: self.counters.model_version.load(Ordering::Relaxed),
            model_swaps: self.counters.model_swaps.load(Ordering::Relaxed),
            canary_requests: self.counters.canary_requests.load(Ordering::Relaxed),
            canary_shots: self.counters.canary_shots.load(Ordering::Relaxed),
            canary_batches: self.counters.canary_batches.load(Ordering::Relaxed),
            canary_divergent_shots: self.counters.canary_divergent_shots.load(Ordering::Relaxed),
            canary_disagreements: load_per_qubit(&self.counters.canary_disagreements),
            drift_shots: self.counters.drift_shots.load(Ordering::Relaxed),
            drift_excited: load_per_qubit(&self.counters.drift_excited),
            calib_shots: self.counters.calib_shots.load(Ordering::Relaxed),
            calib_prepared_excited: load_per_qubit(&self.counters.calib_prepared_excited),
            calib_false_excited: load_per_qubit(&self.counters.calib_false_excited),
            calib_false_ground: load_per_qubit(&self.counters.calib_false_ground),
            shards: 1,
            shards_healthy: u64::from(health == ShardHealth::Healthy),
            shards_degraded: u64::from(health == ShardHealth::Degraded),
            shards_down: u64::from(health == ShardHealth::Down),
            shards_restarting: u64::from(health == ShardHealth::Restarting),
            panics: monitor.panics_count(),
            poisoned: monitor.poisoned_count(),
            downs: monitor.downs_count(),
            restarts: monitor.restarts_count(),
            failovers: monitor.failovers_count(),
            shard_down_rejections: monitor.shard_down_rejections_count(),
            recovery_us: monitor.recovery_us_value(),
            ..ServeStats::default()
        }
    }

    /// Per-tenant serving counters, in tenant-table order: throughput,
    /// sheds, deadline misses, and queue-depth gauges for each tenant
    /// declared in [`SchedPolicy::tenants`].
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.sched
            .tenants
            .iter()
            .zip(&self.counters.tenants)
            .enumerate()
            .map(|(i, (spec, c))| TenantStats {
                id: TenantId(i as u32),
                name: spec.name.clone(),
                weight: spec.weight,
                requests: c.requests.load(Ordering::Relaxed),
                shots: c.shots.load(Ordering::Relaxed),
                shed: c.shed.load(Ordering::Relaxed),
                deadline_misses: c.deadline_misses.load(Ordering::Relaxed),
                poisoned: c.poisoned.load(Ordering::Relaxed),
                failovers: c.failovers.load(Ordering::Relaxed),
                queued_requests: c.queued_requests.load(Ordering::Relaxed),
                peak_queued_shots: c.peak_queued_shots.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// The model version serving right now (starts at 1, bumps on every
    /// swap or promotion).
    pub fn model_version(&self) -> u64 {
        self.counters.model_version.load(Ordering::Relaxed)
    }

    /// Blue/green hot swap: atomically replaces the serving
    /// [`KlinqSystem`] between micro-batches and returns the new model
    /// version. The command queues behind traffic already admitted
    /// (channel FIFO): every request submitted before this call returns
    /// is answered by the old model, every request submitted after it
    /// completes by the new one, and no micro-batch ever mixes the two.
    /// An open batch lingering when the command arrives is closed on the
    /// old model first.
    ///
    /// A staged canary survives the swap untouched — swapping the
    /// primary under a canary is an explicit operator move, not an
    /// implicit abort.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server already shut down,
    /// or [`ServeError::InvalidRequest`] if `system` does not read the
    /// same number of qubits as the serving system.
    pub fn swap_model(&self, system: Arc<KlinqSystem>) -> Result<u64, ServeError> {
        let (ack, ack_rx) = mpsc::channel();
        self.send_control(Control::Swap { system, ack })?;
        ack_rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Stages `system` as the canary candidate: from now on, `fraction`
    /// of micro-batches (by count, spread evenly via a fractional
    /// accumulator) are answered by the candidate, and each canary batch
    /// is also classified by the primary to feed the divergence report
    /// ([`ServeStats::canary_divergence`], `canary_*` fields). Batches
    /// whose shots are too short for the candidate's feature floors stay
    /// on the primary rather than panicking the candidate.
    ///
    /// Staging again replaces the previous candidate; the divergence
    /// counters keep accumulating (snapshot [`Self::stats`] before
    /// staging to scope a report to one candidate).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server already shut down,
    /// or [`ServeError::InvalidRequest`] for a qubit-count mismatch or a
    /// `fraction` outside `0.0..=1.0`.
    pub fn stage_canary(
        &self,
        system: Arc<KlinqSystem>,
        fraction: f64,
    ) -> Result<(), ServeError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(ServeError::InvalidRequest(format!(
                "canary fraction {fraction} outside 0.0..=1.0"
            )));
        }
        let (ack, ack_rx) = mpsc::channel();
        self.send_control(Control::StageCanary {
            system,
            fraction,
            ack,
        })?;
        ack_rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Promotes the staged canary to primary (a hot swap with the same
    /// between-batches atomicity as [`Self::swap_model`]) and returns
    /// the new model version. The canary lane is empty afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server already shut down,
    /// or [`ServeError::InvalidRequest`] if no canary is staged.
    pub fn promote_canary(&self) -> Result<u64, ServeError> {
        let (ack, ack_rx) = mpsc::channel();
        self.send_control(Control::PromoteCanary { ack })?;
        ack_rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Drops the staged canary, if any; returns whether one was staged.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server already shut down.
    pub fn abort_canary(&self) -> Result<bool, ServeError> {
        let (ack, ack_rx) = mpsc::channel();
        self.send_control(Control::AbortCanary { ack })?;
        ack_rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Queues a control command behind already-admitted traffic. The
    /// blocking `send` (like shutdown's) rides out a momentarily full
    /// intake queue instead of bouncing the command.
    fn send_control(&self, control: Control) -> Result<(), ServeError> {
        let monitor = self.link.monitor();
        self.link.send(Msg::Control(control)).map_err(|_| {
            if monitor.is_stopped() || monitor.is_serving() {
                ServeError::Closed
            } else {
                ServeError::ShardDown
            }
        })
    }

    /// Crash-fault injection: makes the collector abort mid-stream
    /// without draining its queues (see [`Control::Kill`]). Admitted
    /// requests die with the thread and are answered
    /// [`ServeError::ShardDown`] by their reply guards.
    pub(crate) fn inject_kill(&self) -> Result<(), ServeError> {
        self.send_control(Control::Kill)
    }

    /// Stops intake, drains the in-flight batch, joins the collector and
    /// returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        // Stopped-first ordering: anything failing from here on — a
        // submission racing teardown, a request buffered past the
        // sentinel — answers `Closed`, not `ShardDown`.
        self.counters.monitor.mark_stopped();
        // An explicit sentinel (rather than relying on sender
        // disconnection) lets shutdown complete even while cloned
        // `ReadoutClient` handles are still alive; the collector finishes
        // the batch in flight and exits, after which those clients fail
        // fast with `ServeError::Closed`. The blocking `send` (not
        // `try_send`) guarantees delivery through a momentarily full
        // intake queue — the collector is draining it, so space appears.
        // (A dead collector's channel errors the send immediately.)
        let _ = self.link.send(Msg::Shutdown);
        if let Some(handle) = self.collector.take() {
            if let Err(payload) = handle.join() {
                // A dead collector is a bug, not a quiet `Closed`: re-raise
                // its panic on the owner — unless it is an injected
                // chaos crash (an exercised recovery path), or teardown
                // is already unwinding, where a second panic would
                // abort.
                if !payload.is::<ChaosCrash>() && !std::thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

impl Drop for ReadoutServer {
    fn drop(&mut self) {
        self.close();
    }
}

/// Spawns one collector thread. Shared by [`ReadoutServer::start`] and
/// [`ReadoutServer::respawn`] — a restarted collector is byte-for-byte
/// the same loop on the same shared counters.
fn spawn_collector(
    system: Arc<KlinqSystem>,
    config: ServeConfig,
    sched: Scheduler<Request>,
    rx: Receiver<Msg>,
    counters: Arc<Counters>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("klinq-serve-collector".into())
        .spawn(move || collector_loop(system, config, sched, &rx, &counters))
        // klinq-lint: allow(no-panic-serve) collector spawn happens once at startup; failing to start is fatal by design
        .expect("spawn readout-server collector")
}

/// Live crash-fault state on the collector (from
/// [`ServeConfig::crash`] or the `KLINQ_CHAOS_CRASH` environment knob).
struct CrashState {
    /// Stateful stream for the transient batch-panic draws.
    batch: Chaos,
    faults: CrashFaults,
}

impl CrashState {
    fn new(faults: CrashFaults) -> Self {
        Self {
            batch: Chaos::new(faults.seed),
            faults,
        }
    }

    /// Transient fault: this micro-batch panics, but no request in it
    /// is the culprit — every solo replay succeeds.
    fn batch_panic(&mut self) -> bool {
        self.faults.batch_panic_pct > 0 && self.batch.chance(self.faults.batch_panic_pct)
    }

    /// Poison fault: keyed on the request's *content*, so the same
    /// request draws the same verdict in the batch and in its solo
    /// replay — exactly the signature of a genuinely poisonous request.
    fn poisons(&self, shots: &[Shot]) -> bool {
        self.faults.poison_pct > 0
            && Chaos::new(self.faults.seed ^ fingerprint(shots)).chance(self.faults.poison_pct)
    }
}

/// A cheap deterministic fingerprint of a request's shots (trace
/// shapes plus leading samples) for content-keyed fault draws.
fn fingerprint(shots: &[Shot]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    mix(shots.len() as u64);
    for shot in shots {
        for trace in &shot.traces {
            mix(trace.i.len() as u64);
            if let (Some(&i0), Some(&q0)) = (trace.i.first(), trace.q.first()) {
                mix(u64::from(i0.to_bits()));
                mix(u64::from(q0.to_bits()));
            }
        }
    }
    h
}

/// One model as the collector serves it: the system plus its per-qubit
/// feature floors (each qubit's trace must carry at least that qubit's
/// averager output count — 15 for FNN-A, 100 for FNN-B; mid-circuit
/// truncation above the floor stays servable). Floors are checked at
/// intake so a malformed request is rejected with a typed error instead
/// of panicking the collector (which would kill the server for every
/// client).
struct Model {
    system: Arc<KlinqSystem>,
    min_samples: Vec<usize>,
}

impl Model {
    fn new(system: Arc<KlinqSystem>) -> Self {
        let min_samples = system
            .discriminators()
            .iter()
            .map(|d| d.student().pipeline.averager().outputs())
            .collect();
        Self {
            system,
            min_samples,
        }
    }

    /// Classifies one contiguous micro-batch. The [`BatchDiscriminator`]
    /// is a borrow wrapper rebuilt per batch (construction is a handful
    /// of asserts), which is what lets the owned system swap between
    /// batches.
    fn classify(&self, config: &ServeConfig, shots: &[Shot]) -> Vec<ShotStates> {
        let mut batch = BatchDiscriminator::new(self.system.discriminators());
        if let Some(chunk) = config.chunk_size {
            batch = batch.with_chunk_size(chunk);
        }
        batch.classify_shots_on(config.backend, shots)
    }
}

/// The staged canary lane: a candidate model plus its traffic share.
struct Canary {
    model: Model,
    fraction: f64,
    /// Fractional accumulator: `+= fraction` per micro-batch; when it
    /// crosses 1 the batch routes to the candidate. Spreads the share
    /// evenly instead of clumping (and needs no RNG, so canary routing
    /// is deterministic given the batch sequence).
    acc: f64,
}

/// Rejects invalid requests at admission; returns an admitted request.
fn admit(req: Request, min_samples: &[usize]) -> Option<Request> {
    match validate_shots(&req.shots, min_samples) {
        Ok(()) => Some(req),
        Err(msg) => {
            req.reply.send(Err(ServeError::InvalidRequest(msg)));
            None
        }
    }
}

/// Installs `system` as the new primary: the blue/green swap itself.
/// Runs strictly between micro-batches (see [`Control`]).
fn install(
    system: Arc<KlinqSystem>,
    active: &mut Model,
    counters: &Counters,
) -> Result<u64, ServeError> {
    if system.discriminators().len() != active.min_samples.len() {
        return Err(ServeError::InvalidRequest(format!(
            "candidate system reads {} qubits, the serving system reads {}",
            system.discriminators().len(),
            active.min_samples.len()
        )));
    }
    *active = Model::new(system);
    counters.model_swaps.fetch_add(1, Ordering::Relaxed);
    Ok(counters.model_version.fetch_add(1, Ordering::Relaxed) + 1)
}

/// Applies one live-ops command. Called only between micro-batches.
fn apply_control(
    control: Control,
    active: &mut Model,
    canary: &mut Option<Canary>,
    counters: &Counters,
) {
    // A receiver that gave up (dropped its ack) doesn't undo the
    // command — the control was queued and is applied regardless.
    match control {
        Control::Swap { system, ack } => {
            let _ = ack.send(install(system, active, counters));
        }
        Control::StageCanary {
            system,
            fraction,
            ack,
        } => {
            if system.discriminators().len() != active.min_samples.len() {
                let _ = ack.send(Err(ServeError::InvalidRequest(format!(
                    "canary system reads {} qubits, the serving system reads {}",
                    system.discriminators().len(),
                    active.min_samples.len()
                ))));
            } else {
                *canary = Some(Canary {
                    model: Model::new(system),
                    fraction,
                    acc: 0.0,
                });
                let _ = ack.send(Ok(()));
            }
        }
        Control::PromoteCanary { ack } => match canary.take() {
            Some(c) => {
                let _ = ack.send(install(c.model.system, active, counters));
            }
            None => {
                let _ = ack.send(Err(ServeError::InvalidRequest(
                    "no canary model is staged".into(),
                )));
            }
        },
        Control::AbortCanary { ack } => {
            let _ = ack.send(canary.take().is_some());
        }
        // Kill aborts at *receipt* (see `intercept_kill`) — it must not
        // wait its turn behind a queue drain.
        // klinq-lint: allow(no-panic-serve) Kill is intercepted at receipt and never reaches queue dispatch
        Control::Kill => unreachable!("Control::Kill is intercepted at receipt"),
    }
}

/// Crash-fault injection: a [`Control::Kill`] aborts the collector the
/// moment it is dequeued — the thread dies by panic *without* draining
/// its queues, so everything it owns unwinds exactly like a real
/// mid-batch abort (reply guards answer [`ServeError::ShardDown`]).
/// Every receive site passes controls through here.
fn intercept_kill(control: Control) -> Control {
    if matches!(control, Control::Kill) {
        std::panic::resume_unwind(Box::new(ChaosCrash));
    }
    control
}

/// Routes one intake message into the scheduler: validates, checks the
/// deadline, and admits to the tenant's queue — or answers typed right
/// here (invalid / expired / over-quota).
fn route(req: Request, sched: &mut Scheduler<Request>, active: &Model, counters: &Counters) {
    // Tenant ids are validated at submission against the same table, so
    // this is a defensive re-check (a bug upstream must not index out
    // of bounds), not a second policy decision.
    let tenant = req.tenant.0 as usize;
    if tenant >= sched.n_tenants() {
        let id = req.tenant.0;
        req.reply.send(Err(ServeError::UnknownTenant(id)));
        return;
    }
    let Some(req) = admit(req, &active.min_samples) else {
        return;
    };
    if req.deadline.is_some_and(|d| d <= Instant::now()) {
        counters.record_deadline_miss(tenant);
        req.reply.send(Err(ServeError::DeadlineExceeded));
        return;
    }
    let item = QueuedItem {
        cost: req.shots.len(),
        deadline: req.deadline,
        latency: req.priority == Priority::Latency,
        payload: req,
    };
    match sched.admit(tenant, item) {
        Ok(()) => {
            let (queued, queued_shots) = sched.tenant_depth(tenant);
            let t = &counters.tenants[tenant];
            t.queued_requests.store(queued as u64, Ordering::Relaxed);
            t.peak_queued_shots.fetch_max(queued_shots as u64, Ordering::Relaxed);
        }
        Err(item) => {
            // The tenant's own quota is exhausted — everyone else keeps
            // flowing. Unlike the global-queue shed, a backlog estimate
            // exists, so the hint rides along.
            counters.shed.fetch_add(1, Ordering::Relaxed);
            counters.tenants[tenant].shed.fetch_add(1, Ordering::Relaxed);
            let retry_after = sched.retry_after(tenant);
            item.payload.reply.send(Err(ServeError::Overloaded { retry_after }));
        }
    }
}

/// Refreshes the per-tenant queue-depth gauges after dequeues.
fn sync_gauges(sched: &Scheduler<Request>, counters: &Counters) {
    for (tenant, c) in counters.tenants.iter().enumerate() {
        let (queued, _) = sched.tenant_depth(tenant);
        c.queued_requests.store(queued as u64, Ordering::Relaxed);
    }
}

/// One request of an assembled micro-batch, after its shots moved into
/// the batch's contiguous buffer.
struct BatchEntry {
    reply: Reply,
    count: usize,
    calibration: bool,
    tenant: usize,
    deadline: Option<Instant>,
}

/// Batch-level telemetry for one executed classification (whole batch
/// or a solo replay): throughput counters plus the drift monitor's
/// running per-qubit excited fractions over the states actually served
/// (whichever model produced them).
fn note_batch(counters: &Counters, states: &[ShotStates]) {
    counters.shots.fetch_add(states.len() as u64, Ordering::Relaxed);
    counters.batches.fetch_add(1, Ordering::Relaxed);
    counters
        .largest_batch
        .fetch_max(states.len() as u64, Ordering::Relaxed);
    counters
        .drift_shots
        .fetch_add(states.len() as u64, Ordering::Relaxed);
    let mut excited = [0u64; NUM_QUBITS];
    for row in states {
        for qb in 0..NUM_QUBITS {
            excited[qb] += u64::from(row[qb]);
        }
    }
    for (counter, &n) in counters.drift_excited.iter().zip(&excited) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Delivers one request's slice of an executed batch: delivery-time
/// deadline check, calibration scoring, per-tenant and global counters,
/// then the reply. `offset` indexes the request's shots/states inside
/// `states`/`shots` (0 for a solo replay).
fn settle_one(entry: BatchEntry, states: &[ShotStates], shots: &[Shot], offset: usize, counters: &Counters) {
    let BatchEntry {
        reply,
        count,
        calibration,
        tenant,
        deadline,
    } = entry;
    // Delivery-time deadline check: the batch may have executed
    // past a request's deadline (e.g. behind a long backlog). The
    // states exist but are stale by contract — answering typed here
    // is what makes "an expired request never gets states" exact.
    if deadline.is_some_and(|d| d <= Instant::now()) {
        counters.record_deadline_miss(tenant);
        reply.send(Err(ServeError::DeadlineExceeded));
        return;
    }
    if calibration {
        // Calibration lane: the shot buffer is still alive, so
        // each shot's prepared states score the served states.
        counters.calib_shots.fetch_add(count as u64, Ordering::Relaxed);
        let mut prep_excited = [0u64; NUM_QUBITS];
        let mut false_excited = [0u64; NUM_QUBITS];
        let mut false_ground = [0u64; NUM_QUBITS];
        for i in offset..offset + count {
            let prepared = shots[i].prepared;
            let got = states[i];
            for qb in 0..NUM_QUBITS {
                if prepared[qb] {
                    prep_excited[qb] += 1;
                    false_ground[qb] += u64::from(!got[qb]);
                } else {
                    false_excited[qb] += u64::from(got[qb]);
                }
            }
        }
        for qb in 0..NUM_QUBITS {
            counters.calib_prepared_excited[qb].fetch_add(prep_excited[qb], Ordering::Relaxed);
            counters.calib_false_excited[qb].fetch_add(false_excited[qb], Ordering::Relaxed);
            counters.calib_false_ground[qb].fetch_add(false_ground[qb], Ordering::Relaxed);
        }
    }
    let t = &counters.tenants[tenant];
    t.requests.fetch_add(1, Ordering::Relaxed);
    t.shots.fetch_add(count as u64, Ordering::Relaxed);
    // Counted before the reply lands: a client that sees its answer
    // must also see it in the stats.
    counters.requests.fetch_add(1, Ordering::Relaxed);
    reply.send(Ok(states[offset..offset + count].to_vec()));
}

/// The quarantine path after a micro-batch panicked: replay each
/// request *solo*. The batched engine is bitwise-identical for any
/// batch composition, so a solo replay produces exactly the states the
/// batch would have — survivors lose nothing. A request whose solo
/// replay panics again (or that the crash-fault model marks poisonous —
/// its draw is content-keyed, so the solo pass is known doomed and
/// skipped) is the culprit: answered [`ServeError::Poisoned`], never
/// re-batched.
fn replay_solo(
    entries: Vec<BatchEntry>,
    shots: &[Shot],
    poison: &[bool],
    active: &Model,
    config: &ServeConfig,
    counters: &Counters,
) {
    let mut offset = 0;
    for (i, entry) in entries.into_iter().enumerate() {
        let slice = &shots[offset..offset + entry.count];
        offset += entry.count;
        let solo = if poison[i] {
            None
        } else {
            match catch_unwind(AssertUnwindSafe(|| active.classify(config, slice))) {
                Ok(states) => Some(states),
                Err(_) => {
                    counters.monitor.note_panic();
                    None
                }
            }
        };
        match solo {
            Some(states) => {
                counters.monitor.note_clean_batch();
                note_batch(counters, &states);
                settle_one(entry, &states, slice, 0, counters);
            }
            None => {
                counters.monitor.note_poisoned();
                counters.tenants[entry.tenant].poisoned.fetch_add(1, Ordering::Relaxed);
                entry.reply.send(Err(ServeError::Poisoned));
            }
        }
    }
}

/// Executes one assembled micro-batch end to end: classify (with canary
/// routing) under the panic quarantine, update the telemetry, scatter
/// the per-request slices, and feed the service-rate estimator.
/// Requests whose deadline expired while the batch executed are
/// answered with [`ServeError::DeadlineExceeded`] — an expired request
/// never receives states. A batch that panics classification falls
/// back to [`replay_solo`].
fn run_batch(
    batch: Vec<(usize, QueuedItem<Request>)>,
    active: &Model,
    canary: &mut Option<Canary>,
    config: &ServeConfig,
    counters: &Counters,
    sched: &mut Scheduler<Request>,
    crash: &mut Option<CrashState>,
) {
    // One contiguous shot buffer for the engine; shots are moved, never
    // cloned.
    let mut shots = Vec::new();
    let mut entries = Vec::with_capacity(batch.len());
    let mut latency_requests = 0u64;
    let mut expedited = false;
    for (tenant, item) in batch {
        let req = item.payload;
        if item.latency {
            latency_requests += 1;
            expedited = true;
        }
        entries.push(BatchEntry {
            reply: req.reply,
            count: req.shots.len(),
            calibration: req.calibration,
            tenant,
            deadline: item.deadline,
        });
        shots.extend(req.shots);
    }
    counters
        .latency_requests
        .fetch_add(latency_requests, Ordering::Relaxed);
    if expedited {
        counters.expedited_batches.fetch_add(1, Ordering::Relaxed);
    }

    // Crash-fault draws — pure decisions, taken before the unwind
    // boundary. Poison is content-keyed per request; the transient
    // batch draw consumes its stream once per batch.
    let mut poison = vec![false; entries.len()];
    if let Some(cr) = crash.as_ref() {
        let mut off = 0;
        for (flag, entry) in poison.iter_mut().zip(&entries) {
            *flag = cr.poisons(&shots[off..off + entry.count]);
            off += entry.count;
        }
    }
    let injected =
        poison.iter().any(|&p| p) || crash.as_mut().is_some_and(CrashState::batch_panic);

    let started = Instant::now();
    // The quarantine boundary: a panicking micro-batch — injected or
    // genuine — must cost one batch's replay, never the collector.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if injected {
            // `resume_unwind`, not `panic!`: injected crashes skip the
            // default panic hook, so an exercised recovery path prints
            // no backtrace. Genuine panics stay loud.
            std::panic::resume_unwind(Box::new(ChaosCrash));
        }
        // Canary routing: decide per micro-batch, serve the candidate's
        // answer, keep the primary's for the divergence report. A batch
        // whose shots undercut the candidate's feature floors stays on
        // the primary (a shorter-trace candidate must not panic on
        // still-valid production traffic).
        let mut canary_states = None;
        if let Some(c) = canary.as_mut() {
            if validate_shots(&shots, &c.model.min_samples).is_ok() {
                c.acc += c.fraction;
                if c.acc >= 1.0 {
                    c.acc -= 1.0;
                    canary_states = Some(c.model.classify(config, &shots));
                }
            }
        }
        let primary_states = active.classify(config, &shots);
        (canary_states, primary_states)
    }));
    let (canary_states, primary_states) = match outcome {
        Ok(classified) => classified,
        Err(_) => {
            counters.monitor.note_panic();
            replay_solo(entries, &shots, &poison, active, config, counters);
            return;
        }
    };
    counters.monitor.note_clean_batch();
    // The measured service rate drives retry-after hints; canary
    // double-classification is real work the backlog waits behind, so
    // it counts.
    sched.observe_service(started.elapsed().as_nanos() as f64 / shots.len() as f64);
    let states = match &canary_states {
        Some(cs) => {
            counters.canary_batches.fetch_add(1, Ordering::Relaxed);
            counters
                .canary_requests
                .fetch_add(entries.len() as u64, Ordering::Relaxed);
            counters
                .canary_shots
                .fetch_add(shots.len() as u64, Ordering::Relaxed);
            let mut divergent = 0u64;
            let mut disagreements = [0u64; NUM_QUBITS];
            for (c_row, p_row) in cs.iter().zip(&primary_states) {
                let mut any = false;
                for qb in 0..NUM_QUBITS {
                    if c_row[qb] != p_row[qb] {
                        disagreements[qb] += 1;
                        any = true;
                    }
                }
                divergent += u64::from(any);
            }
            counters
                .canary_divergent_shots
                .fetch_add(divergent, Ordering::Relaxed);
            for (counter, &n) in counters.canary_disagreements.iter().zip(&disagreements) {
                counter.fetch_add(n, Ordering::Relaxed);
            }
            cs
        }
        None => &primary_states,
    };

    note_batch(counters, states);

    let mut offset = 0;
    for entry in entries {
        let count = entry.count;
        settle_one(entry, states, &shots, offset, counters);
        offset += count;
    }
}

/// The collector: route → coalesce (DRR over tenant queues) → classify
/// → scatter, until disconnect. Live-ops commands apply strictly
/// between micro-batches — and only after every request admitted before
/// them has been answered — so every batch is classified end to end by
/// exactly one model version, and the swap boundary stays exact in
/// submission order.
fn collector_loop(
    system: Arc<KlinqSystem>,
    config: ServeConfig,
    mut sched: Scheduler<Request>,
    rx: &Receiver<Msg>,
    counters: &Counters,
) {
    // How often a blocked collector wakes to stamp its heartbeat. Far
    // below any sane `SuperviseConfig::heartbeat_timeout`, so a live
    // collector is never mistaken for a stuck one.
    const HEARTBEAT_TICK: Duration = Duration::from_millis(25);
    let mut active = Model::new(system);
    let mut canary: Option<Canary> = None;
    let mut crash = config.crash.or_else(chaos::env_crash).map(CrashState::new);
    let mut shutting_down = false;
    loop {
        // Idle: nothing queued, so controls apply immediately and the
        // collector costs (almost) nothing blocking on `recv_timeout` —
        // it wakes only to stamp the heartbeat the watchdog reads.
        while sched.is_empty() {
            if shutting_down {
                return;
            }
            counters.monitor.beat();
            match rx.recv_timeout(HEARTBEAT_TICK) {
                Ok(Msg::Request(req)) => route(req, &mut sched, &active, counters),
                Ok(Msg::Control(c)) => {
                    apply_control(intercept_kill(c), &mut active, &mut canary, counters);
                }
                Ok(Msg::Shutdown) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
        // Linger: admit traffic until a close condition — the shot
        // budget fills, a latency request arrives, the linger window or
        // the oldest queued deadline (minus slack) expires, or a
        // control/shutdown needs the queues drained first.
        //
        // `checked_add` because huge lingers (`Duration::MAX` as "wait
        // until the budget fills") overflow `Instant` arithmetic; `None`
        // means "no linger deadline".
        let mut pending_control = None;
        // Soak up everything already queued *before* consulting the
        // close conditions, without waiting. A backlog one batch deep
        // would otherwise skip the linger loop entirely and starve
        // intake until it drained — a flooded server would stop
        // admitting (and stop seeing latency-class closes) exactly when
        // fair scheduling matters most. Draining stops at a control:
        // requests behind it belong to the post-command model.
        while pending_control.is_none() && !shutting_down {
            match rx.try_recv() {
                Ok(Msg::Request(req)) => route(req, &mut sched, &active, counters),
                Ok(Msg::Control(c)) => pending_control = Some(intercept_kill(c)),
                Ok(Msg::Shutdown) => shutting_down = true,
                // Disconnected: the queued work still gets answered;
                // the idle loop observes the hangup once drained.
                Err(_) => break,
            }
        }
        let linger_close = Instant::now().checked_add(config.max_linger);
        while !shutting_down
            && pending_control.is_none()
            && !sched.has_latency()
            && sched.queued_shots() < config.max_batch_shots
        {
            let now = Instant::now();
            // The batch closes `deadline_slack` ahead of the oldest
            // queued deadline, so classification lands before the
            // deadline rather than at it. (`unwrap_or(now)`: a slack
            // larger than the remaining wait means "close now".)
            let deadline_close = sched
                .earliest_deadline()
                .map(|d| d.checked_sub(config.sched.deadline_slack).unwrap_or(now));
            let close_at = match (linger_close, deadline_close) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            // `recv_timeout` drains already-queued messages even with a
            // zero remaining budget, so an expired linger still soaks
            // up whatever arrived meanwhile — it just never *waits*.
            // The wait is capped at `HEARTBEAT_TICK` so a lingering
            // collector (even one lingering forever on
            // `Duration::MAX`) keeps stamping its heartbeat.
            let remaining = close_at
                .map_or(HEARTBEAT_TICK, |c| {
                    c.saturating_duration_since(now).min(HEARTBEAT_TICK)
                });
            match rx.recv_timeout(remaining) {
                Ok(Msg::Request(req)) => route(req, &mut sched, &active, counters),
                Ok(Msg::Control(c)) => {
                    // A control arriving mid-linger closes the open
                    // batch — everything admitted before it is answered
                    // by the pre-command model — and applies after the
                    // queues drain.
                    pending_control = Some(intercept_kill(c));
                }
                Ok(Msg::Shutdown) => {
                    // Answer everything queued, then exit.
                    shutting_down = true;
                }
                Err(RecvTimeoutError::Timeout) => {
                    counters.monitor.beat();
                    // A heartbeat wakeup is not a close condition: only
                    // an actually-expired close deadline ends the
                    // linger.
                    if close_at.is_some_and(|c| Instant::now() >= c) {
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Close: fail expired requests typed, then execute — one batch
        // per linger epoch normally, a drain to empty ahead of a
        // control or shutdown (the FIFO boundary of live-ops commands
        // is exact: every request admitted before the command is
        // answered by the pre-command model).
        loop {
            counters.monitor.beat();
            for (tenant, item) in sched.take_expired(Instant::now()) {
                counters.record_deadline_miss(tenant);
                item.payload.reply.send(Err(ServeError::DeadlineExceeded));
            }
            let entries = sched.assemble(config.max_batch_shots);
            if !entries.is_empty() {
                run_batch(
                    entries,
                    &active,
                    &mut canary,
                    &config,
                    counters,
                    &mut sched,
                    &mut crash,
                );
            }
            if (pending_control.is_none() && !shutting_down) || sched.is_empty() {
                break;
            }
        }
        sync_gauges(&sched, counters);
        if let Some(c) = pending_control {
            apply_control(c, &mut active, &mut canary, counters);
        }
        if shutting_down && sched.is_empty() {
            return;
        }
    }
}

/// Checks a request's shots against the serving system's front-end
/// requirements: one trace per qubit, paired I/Q lengths, and at least
/// that qubit's own averager floor per channel (`min_samples[qb]`).
fn validate_shots(shots: &[Shot], min_samples: &[usize]) -> Result<(), String> {
    for (idx, shot) in shots.iter().enumerate() {
        if shot.traces.len() != min_samples.len() {
            return Err(format!(
                "shot {idx} carries {} traces, expected {}",
                shot.traces.len(),
                min_samples.len()
            ));
        }
        for (qb, (t, &floor)) in shot.traces.iter().zip(min_samples).enumerate() {
            if t.i.len() != t.q.len() {
                return Err(format!(
                    "shot {idx} qubit {qb}: I has {} samples but Q has {}",
                    t.i.len(),
                    t.q.len()
                ));
            }
            if t.i.len() < floor {
                return Err(format!(
                    "shot {idx} qubit {qb}: {} samples per channel, \
                     its feature front end needs at least {floor}",
                    t.i.len()
                ));
            }
        }
    }
    Ok(())
}
