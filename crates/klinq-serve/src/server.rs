//! The coalescing server: std threads + channels, no async runtime.
//!
//! One collector thread owns the [`KlinqSystem`] and a receiver. Clients
//! are cheap cloneable sender handles; each request carries its shots and
//! a private reply channel. The collector opens a micro-batch on the
//! first request it receives, then keeps admitting requests until either
//! the batch's shot budget ([`ServeConfig::max_batch_shots`]) is reached
//! or the linger window ([`ServeConfig::max_linger`]) expires, classifies
//! the whole batch in one call, and scatters the per-request slices back.
//! An idle server blocks on `recv` and costs nothing.
//!
//! Two scheduling policies shape the intake:
//!
//! - **Backpressure**: the intake queue is bounded
//!   ([`ServeConfig::max_pending`]). A full queue sheds the request with
//!   [`ServeError::Overloaded`] instead of letting senders pile up
//!   unboundedly behind a saturated collector — the client sees the
//!   overload immediately and can retry, downgrade, or fail over.
//! - **Priority lanes**: [`Priority::Latency`] requests bypass the
//!   linger window — the batch they join closes immediately — while
//!   [`Priority::Throughput`] requests coalesce as usual. A mid-circuit
//!   measurement that gates a conditional pulse cannot wait out a linger
//!   tuned for throughput traffic.

use klinq_core::{Backend, BatchDiscriminator, KlinqSystem, ShotStates};
use klinq_sim::Shot;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduling class of a classification request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Coalesce freely: wait out the linger window so the batch fills.
    /// The default for bulk readout traffic.
    #[default]
    Throughput,
    /// Latency-sensitive (e.g. a mid-circuit measurement gating a
    /// conditional pulse): the batch this request joins closes
    /// immediately instead of lingering for more traffic.
    Latency,
}

/// Tuning knobs for a [`ReadoutServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Which datapath serves the requests.
    pub backend: Backend,
    /// Shot budget per micro-batch: a batch closes as soon as it holds at
    /// least this many shots. A single request larger than the budget is
    /// never split — it forms one oversized batch on its own, so
    /// responses always map one-to-one onto requests.
    pub max_batch_shots: usize,
    /// How long a non-full batch may wait for more requests to coalesce
    /// before it is classified anyway. Zero means "drain whatever is
    /// already queued, never wait"; durations too large to express as a
    /// deadline (e.g. [`Duration::MAX`]) mean "wait until the budget
    /// fills or the server shuts down".
    pub max_linger: Duration,
    /// Intake-queue bound, in queued requests: a client whose send finds
    /// the queue full is shed with [`ServeError::Overloaded`] instead of
    /// queueing unboundedly behind a saturated collector.
    pub max_pending: usize,
    /// Optional scheduling chunk-size override forwarded to
    /// [`BatchDiscriminator::with_chunk_size`] (`None` keeps the
    /// engine's default). Purely a performance knob — results are
    /// identical for every value.
    pub chunk_size: Option<usize>,
}

impl Default for ServeConfig {
    /// Float backend, 1024-shot batches, 200 µs linger, 1024-request
    /// intake queue.
    fn default() -> Self {
        Self {
            backend: Backend::Float,
            max_batch_shots: 1024,
            max_linger: Duration::from_micros(200),
            max_pending: 1024,
            chunk_size: None,
        }
    }
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server has shut down (or its worker died) before answering.
    Closed,
    /// The request's shots cannot be classified by this system (wrong
    /// qubit count, ragged I/Q pairs, or traces shorter than the feature
    /// front end's floor). Only the offending request is rejected — the
    /// server keeps serving everyone else.
    InvalidRequest(String),
    /// The intake queue was full ([`ServeConfig::max_pending`]): the
    /// request was shed without queueing. Retry later, or against
    /// another shard.
    Overloaded,
    /// The reply violated the serving contract (e.g. a response whose
    /// length does not match the request's shot count, or a malformed
    /// wire frame). Indicates a buggy or mismatched server, never a bad
    /// request.
    Protocol(String),
    /// A client-side deadline expired before the server answered (wire
    /// clients with a read timeout configured). The request may still be
    /// executing server-side; only the wait was abandoned.
    Timeout,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Closed => write!(f, "readout server is closed"),
            Self::InvalidRequest(msg) => write!(f, "invalid readout request: {msg}"),
            Self::Overloaded => write!(f, "readout server overloaded: intake queue full"),
            Self::Protocol(msg) => write!(f, "readout serving protocol violation: {msg}"),
            Self::Timeout => write!(f, "readout request timed out before the server answered"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Counters the collector maintains (shared snapshot-style with handles).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    requests: AtomicU64,
    shots: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicU64,
    shed: AtomicU64,
    latency_requests: AtomicU64,
    expedited_batches: AtomicU64,
}

/// A point-in-time snapshot of a server's coalescing behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: u64,
    /// Shots classified.
    pub shots: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Largest micro-batch, in shots.
    pub largest_batch: u64,
    /// Requests shed with [`ServeError::Overloaded`] because the intake
    /// queue was full.
    pub shed: u64,
    /// Answered requests that carried [`Priority::Latency`].
    pub latency_requests: u64,
    /// Micro-batches that closed early — skipping the linger window —
    /// because they contained a [`Priority::Latency`] request.
    pub expedited_batches: u64,
    /// TCP connections a wire front end accepted over its lifetime
    /// (0 for a purely in-process server).
    pub wire_accepted: u64,
    /// Wire connections reaped for exceeding the idle timeout.
    pub wire_reaped: u64,
    /// Wire connections open right now.
    pub wire_open: u64,
    /// High-water mark of simultaneously open wire connections.
    pub wire_peak_open: u64,
}

impl ServeStats {
    /// Mean shots per executed micro-batch (0 when nothing ran yet).
    pub fn mean_batch_shots(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.shots as f64 / self.batches as f64
        }
    }

    /// Field-wise sum — aggregates per-shard stats into a fleet view
    /// (`largest_batch` and `wire_peak_open` take the max, the rest add).
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            requests: self.requests + other.requests,
            shots: self.shots + other.shots,
            batches: self.batches + other.batches,
            largest_batch: self.largest_batch.max(other.largest_batch),
            shed: self.shed + other.shed,
            latency_requests: self.latency_requests + other.latency_requests,
            expedited_batches: self.expedited_batches + other.expedited_batches,
            wire_accepted: self.wire_accepted + other.wire_accepted,
            wire_reaped: self.wire_reaped + other.wire_reaped,
            wire_open: self.wire_open + other.wire_open,
            wire_peak_open: self.wire_peak_open.max(other.wire_peak_open),
        }
    }
}

/// How a finished request's result reaches its submitter.
///
/// A callback rather than a channel sender: the wire reactor serves
/// thousands of connections from one event loop and cannot park a
/// thread per request, so its completions are pushed straight into the
/// loop's queue by the callback. The blocking client path simply wraps
/// a channel sender in one — same coalescing, same results.
pub(crate) type ReplyFn = Box<dyn FnOnce(Result<Vec<ShotStates>, ServeError>) + Send>;

/// One in-flight request: the shots to classify and where to answer.
struct Request {
    shots: Vec<Shot>,
    priority: Priority,
    reply: ReplyFn,
}

/// What travels over the intake channel.
enum Msg {
    Request(Request),
    /// Finish the batch in flight, then exit. Sent by
    /// [`ReadoutServer::shutdown`] so teardown never depends on every
    /// cloned [`ReadoutClient`] having been dropped.
    Shutdown,
}

/// A cheap cloneable handle for submitting classification requests.
///
/// Handles stay usable after the [`ReadoutServer`] value is shut down
/// only in the sense that calls fail fast with [`ServeError::Closed`].
#[derive(Debug, Clone)]
pub struct ReadoutClient {
    tx: SyncSender<Msg>,
    counters: Arc<Counters>,
}

impl ReadoutClient {
    /// Classifies a batch of shots at [`Priority::Throughput`], blocking
    /// until the coalesced result arrives. Response index `i` is always
    /// shot `i`'s states.
    ///
    /// An empty request completes immediately without a server round
    /// trip.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server shut down before
    /// answering, [`ServeError::Overloaded`] if the intake queue was
    /// full (the request was shed, not queued), or
    /// [`ServeError::InvalidRequest`] if the shots cannot be classified
    /// by the serving system (the request is rejected at intake; the
    /// server keeps running).
    pub fn classify_shots(&self, shots: Vec<Shot>) -> Result<Vec<ShotStates>, ServeError> {
        self.classify_shots_with_priority(Priority::Throughput, shots)
    }

    /// Like [`Self::classify_shots`], with an explicit [`Priority`]:
    /// `Latency` requests close their micro-batch immediately instead of
    /// waiting out the linger window.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::classify_shots`].
    pub fn classify_shots_with_priority(
        &self,
        priority: Priority,
        shots: Vec<Shot>,
    ) -> Result<Vec<ShotStates>, ServeError> {
        let n_shots = shots.len();
        let (reply_tx, reply_rx) = mpsc::channel();
        self.submit_with_priority(priority, shots, move |result| {
            // A submitter that gave up (dropped its receiver) is not an
            // error for the batch.
            let _ = reply_tx.send(result);
        })?;
        let states = reply_rx.recv().map_err(|_| ServeError::Closed)??;
        // The scatter contract is one state row per requested shot. An
        // in-process collector upholds it by construction, but a remote
        // (wire) or buggy server might not — and a silently short reply
        // must fail typed on the *client*, never panic it.
        if states.len() != n_shots {
            return Err(ServeError::Protocol(format!(
                "reply carries {} shot states for a {n_shots}-shot request",
                states.len()
            )));
        }
        Ok(states)
    }

    /// Submits shots without blocking for the result: `on_complete` runs
    /// exactly once with the coalesced result (on the collector thread)
    /// once the request's micro-batch executes. This is the submission
    /// path the wire reactor uses — one event loop, thousands of
    /// requests in flight, no parked thread per request.
    ///
    /// An empty request completes immediately: `on_complete` runs with
    /// `Ok(vec![])` before this returns.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Overloaded`] (request shed, queue full) or
    /// [`ServeError::Closed`] (server gone) **without** running
    /// `on_complete` — a rejected submission has no completion. Requests
    /// that fail later (e.g. [`ServeError::InvalidRequest`] at intake
    /// validation) deliver their error through `on_complete` instead.
    pub fn submit_with_priority(
        &self,
        priority: Priority,
        shots: Vec<Shot>,
        on_complete: impl FnOnce(Result<Vec<ShotStates>, ServeError>) + Send + 'static,
    ) -> Result<(), ServeError> {
        if shots.is_empty() {
            on_complete(Ok(Vec::new()));
            return Ok(());
        }
        // A bounded `try_send` is the backpressure policy: a full queue
        // means the collector is saturated, and the honest answer is an
        // immediate `Overloaded`, not an unbounded invisible wait.
        self.tx
            .try_send(Msg::Request(Request {
                shots,
                priority,
                reply: Box::new(on_complete),
            }))
            .map_err(|e| match e {
                TrySendError::Full(_) => {
                    self.counters.shed.fetch_add(1, Ordering::Relaxed);
                    ServeError::Overloaded
                }
                TrySendError::Disconnected(_) => ServeError::Closed,
            })
    }

    /// Classifies one shot, blocking until its coalesced result arrives.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::classify_shots`].
    pub fn classify_shot(&self, shot: Shot) -> Result<ShotStates, ServeError> {
        let states = self.classify_shots(vec![shot])?;
        // `classify_shots` already rejected length mismatches, so the
        // indexing below cannot panic.
        Ok(states[0])
    }
}

/// A running micro-batching readout server.
///
/// Dropping the server (or calling [`Self::shutdown`]) closes the intake
/// channel, lets the collector finish the batch in flight, and joins it.
#[derive(Debug)]
pub struct ReadoutServer {
    tx: Option<SyncSender<Msg>>,
    collector: Option<JoinHandle<()>>,
    counters: Arc<Counters>,
}

impl ReadoutServer {
    /// Starts the server: spawns the collector thread that owns `system`
    /// and serves requests per `config`.
    ///
    /// # Panics
    ///
    /// Panics immediately (not later on the collector thread) if the
    /// configuration is unusable: a zero `max_batch_shots`, a zero
    /// `max_pending`, or a zero `chunk_size` override.
    pub fn start(system: Arc<KlinqSystem>, config: ServeConfig) -> Self {
        assert!(config.max_batch_shots > 0, "max_batch_shots must be non-zero");
        assert!(
            config.max_pending > 0,
            "max_pending must be non-zero (a zero-capacity intake queue would shed everything)"
        );
        assert!(config.chunk_size != Some(0), "chunk size override must be non-zero");
        let (tx, rx) = mpsc::sync_channel(config.max_pending);
        let counters = Arc::new(Counters::default());
        let collector_counters = Arc::clone(&counters);
        let collector = std::thread::Builder::new()
            .name("klinq-serve-collector".into())
            .spawn(move || collector_loop(&system, config, &rx, &collector_counters))
            .expect("spawn readout-server collector");
        Self {
            tx: Some(tx),
            collector: Some(collector),
            counters,
        }
    }

    /// A new client handle for this server.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Self::shutdown`] (impossible through the
    /// public API, which consumes the server).
    pub fn client(&self) -> ReadoutClient {
        ReadoutClient {
            tx: self.tx.as_ref().expect("server is running").clone(),
            counters: Arc::clone(&self.counters),
        }
    }

    /// A snapshot of the coalescing counters (the `wire_*` fields stay
    /// zero here — they belong to a wire front end's own stats).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            shots: self.counters.shots.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            largest_batch: self.counters.largest_batch.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            latency_requests: self.counters.latency_requests.load(Ordering::Relaxed),
            expedited_batches: self.counters.expedited_batches.load(Ordering::Relaxed),
            ..ServeStats::default()
        }
    }

    /// Stops intake, drains the in-flight batch, joins the collector and
    /// returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        // An explicit sentinel (rather than relying on sender
        // disconnection) lets shutdown complete even while cloned
        // `ReadoutClient` handles are still alive; the collector finishes
        // the batch in flight and exits, after which those clients fail
        // fast with `ServeError::Closed`. The blocking `send` (not
        // `try_send`) guarantees delivery through a momentarily full
        // intake queue — the collector is draining it, so space appears.
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Msg::Shutdown);
        }
        if let Some(handle) = self.collector.take() {
            if let Err(payload) = handle.join() {
                // A dead collector is a bug, not a quiet `Closed`: re-raise
                // its panic on the owner — unless teardown is already
                // unwinding, where a second panic would abort.
                if !std::thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

impl Drop for ReadoutServer {
    fn drop(&mut self) {
        self.close();
    }
}

/// The collector: coalesce → classify → scatter, until disconnect.
fn collector_loop(
    system: &KlinqSystem,
    config: ServeConfig,
    rx: &Receiver<Msg>,
    counters: &Counters,
) {
    let mut batch = BatchDiscriminator::new(system.discriminators());
    if let Some(chunk) = config.chunk_size {
        batch = batch.with_chunk_size(chunk);
    }
    // The feature front end's per-qubit floors: each qubit's trace must
    // carry at least that qubit's averager output count (15 for FNN-A,
    // 100 for FNN-B — mid-circuit truncation above the floor stays
    // servable). Checked at intake so a malformed request is rejected
    // with a typed error instead of panicking the collector (which would
    // kill the server for every client).
    let min_samples: Vec<usize> = system
        .discriminators()
        .iter()
        .map(|d| d.student().pipeline.averager().outputs())
        .collect();
    // Rejects invalid requests at admission; returns an admitted request.
    let admit = |req: Request| -> Option<Request> {
        match validate_shots(&req.shots, &min_samples) {
            Ok(()) => Some(req),
            Err(msg) => {
                (req.reply)(Err(ServeError::InvalidRequest(msg)));
                None
            }
        }
    };
    let mut shutting_down = false;
    while !shutting_down {
        let first = match rx.recv() {
            Ok(Msg::Request(req)) => match admit(req) {
                Some(req) => req,
                None => continue,
            },
            Ok(Msg::Shutdown) | Err(_) => break,
        };
        let mut pending = vec![first];
        let mut n_shots = pending[0].shots.len();
        // A latency-lane request never lingers: its batch closes the
        // moment it is admitted.
        let mut expedited = pending[0].priority == Priority::Latency;
        // `checked_add` because huge lingers (`Duration::MAX` as "wait
        // until the budget fills") overflow `Instant` arithmetic — the
        // old `Instant::now() + max_linger` panicked the collector and
        // failed every client with `Closed`. `None` means "no deadline":
        // wait on a plain `recv` until the budget fills, a latency
        // request arrives, or the server shuts down.
        let deadline = Instant::now().checked_add(config.max_linger);
        while !expedited && n_shots < config.max_batch_shots {
            // `recv_timeout` drains already-queued requests even with a
            // zero budget, so an expired linger still soaks up whatever
            // arrived meanwhile — it just never *waits* any longer.
            let next = match deadline {
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    rx.recv_timeout(remaining)
                }
                None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            };
            match next {
                Ok(Msg::Request(req)) => {
                    if let Some(req) = admit(req) {
                        // An admitted latency request closes the batch
                        // immediately — it has already waited once in the
                        // queue and must not wait out the linger too.
                        expedited = req.priority == Priority::Latency;
                        n_shots += req.shots.len();
                        pending.push(req);
                    }
                }
                Ok(Msg::Shutdown) => {
                    // Answer the batch in flight, then exit.
                    shutting_down = true;
                    break;
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // One contiguous shot buffer for the engine; shots are moved,
        // never cloned.
        let mut shots = Vec::with_capacity(n_shots);
        let mut replies = Vec::with_capacity(pending.len());
        let mut latency_requests = 0u64;
        for req in pending {
            if req.priority == Priority::Latency {
                latency_requests += 1;
            }
            replies.push((req.reply, req.shots.len()));
            shots.extend(req.shots);
        }
        let states = batch.classify_shots_on(config.backend, &shots);

        counters.requests.fetch_add(replies.len() as u64, Ordering::Relaxed);
        counters.shots.fetch_add(shots.len() as u64, Ordering::Relaxed);
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .largest_batch
            .fetch_max(shots.len() as u64, Ordering::Relaxed);
        counters
            .latency_requests
            .fetch_add(latency_requests, Ordering::Relaxed);
        if expedited {
            counters.expedited_batches.fetch_add(1, Ordering::Relaxed);
        }

        let mut offset = 0;
        for (reply, count) in replies {
            reply(Ok(states[offset..offset + count].to_vec()));
            offset += count;
        }
    }
}

/// Checks a request's shots against the serving system's front-end
/// requirements: one trace per qubit, paired I/Q lengths, and at least
/// that qubit's own averager floor per channel (`min_samples[qb]`).
fn validate_shots(shots: &[Shot], min_samples: &[usize]) -> Result<(), String> {
    for (idx, shot) in shots.iter().enumerate() {
        if shot.traces.len() != min_samples.len() {
            return Err(format!(
                "shot {idx} carries {} traces, expected {}",
                shot.traces.len(),
                min_samples.len()
            ));
        }
        for (qb, (t, &floor)) in shot.traces.iter().zip(min_samples).enumerate() {
            if t.i.len() != t.q.len() {
                return Err(format!(
                    "shot {idx} qubit {qb}: I has {} samples but Q has {}",
                    t.i.len(),
                    t.q.len()
                ));
            }
            if t.i.len() < floor {
                return Err(format!(
                    "shot {idx} qubit {qb}: {} samples per channel, \
                     its feature front end needs at least {floor}",
                    t.i.len()
                ));
            }
        }
    }
    Ok(())
}
