//! The coalescing server: std threads + channels, no async runtime.
//!
//! One collector thread owns the [`KlinqSystem`] and a receiver. Clients
//! are cheap cloneable sender handles; each request carries its shots and
//! a private reply channel. The collector opens a micro-batch on the
//! first request it receives, then keeps admitting requests until either
//! the batch's shot budget ([`ServeConfig::max_batch_shots`]) is reached
//! or the linger window ([`ServeConfig::max_linger`]) expires, classifies
//! the whole batch in one call, and scatters the per-request slices back.
//! An idle server blocks on `recv` and costs nothing.

use klinq_core::{Backend, BatchDiscriminator, KlinqSystem, ShotStates};
use klinq_sim::Shot;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`ReadoutServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Which datapath serves the requests.
    pub backend: Backend,
    /// Shot budget per micro-batch: a batch closes as soon as it holds at
    /// least this many shots. A single request larger than the budget is
    /// never split — it forms one oversized batch on its own, so
    /// responses always map one-to-one onto requests.
    pub max_batch_shots: usize,
    /// How long a non-full batch may wait for more requests to coalesce
    /// before it is classified anyway. Zero means "drain whatever is
    /// already queued, never wait".
    pub max_linger: Duration,
    /// Optional scheduling chunk-size override forwarded to
    /// [`BatchDiscriminator::with_chunk_size`] (`None` keeps the
    /// engine's default). Purely a performance knob — results are
    /// identical for every value.
    pub chunk_size: Option<usize>,
}

impl Default for ServeConfig {
    /// Float backend, 1024-shot batches, 200 µs linger.
    fn default() -> Self {
        Self {
            backend: Backend::Float,
            max_batch_shots: 1024,
            max_linger: Duration::from_micros(200),
            chunk_size: None,
        }
    }
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server has shut down (or its worker died) before answering.
    Closed,
    /// The request's shots cannot be classified by this system (wrong
    /// qubit count, ragged I/Q pairs, or traces shorter than the feature
    /// front end's floor). Only the offending request is rejected — the
    /// server keeps serving everyone else.
    InvalidRequest(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Closed => write!(f, "readout server is closed"),
            Self::InvalidRequest(msg) => write!(f, "invalid readout request: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Counters the collector maintains (shared snapshot-style with handles).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    shots: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicU64,
}

/// A point-in-time snapshot of a server's coalescing behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: u64,
    /// Shots classified.
    pub shots: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Largest micro-batch, in shots.
    pub largest_batch: u64,
}

impl ServeStats {
    /// Mean shots per executed micro-batch (0 when nothing ran yet).
    pub fn mean_batch_shots(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.shots as f64 / self.batches as f64
        }
    }
}

/// One in-flight request: the shots to classify and where to answer.
struct Request {
    shots: Vec<Shot>,
    reply: Sender<Result<Vec<ShotStates>, ServeError>>,
}

/// What travels over the intake channel.
enum Msg {
    Request(Request),
    /// Finish the batch in flight, then exit. Sent by
    /// [`ReadoutServer::shutdown`] so teardown never depends on every
    /// cloned [`ReadoutClient`] having been dropped.
    Shutdown,
}

/// A cheap cloneable handle for submitting classification requests.
///
/// Handles stay usable after the [`ReadoutServer`] value is shut down
/// only in the sense that calls fail fast with [`ServeError::Closed`].
#[derive(Debug, Clone)]
pub struct ReadoutClient {
    tx: Sender<Msg>,
}

impl ReadoutClient {
    /// Classifies a batch of shots, blocking until the coalesced result
    /// arrives. Response index `i` is always shot `i`'s states.
    ///
    /// An empty request completes immediately without a server round
    /// trip.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server shut down before
    /// answering, or [`ServeError::InvalidRequest`] if the shots cannot
    /// be classified by the serving system (the request is rejected at
    /// intake; the server keeps running).
    pub fn classify_shots(&self, shots: Vec<Shot>) -> Result<Vec<ShotStates>, ServeError> {
        if shots.is_empty() {
            return Ok(Vec::new());
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send(Msg::Request(Request {
                shots,
                reply: reply_tx,
            }))
            .map_err(|_| ServeError::Closed)?;
        reply_rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Classifies one shot, blocking until its coalesced result arrives.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::classify_shots`].
    pub fn classify_shot(&self, shot: Shot) -> Result<ShotStates, ServeError> {
        let states = self.classify_shots(vec![shot])?;
        Ok(states[0])
    }
}

/// A running micro-batching readout server.
///
/// Dropping the server (or calling [`Self::shutdown`]) closes the intake
/// channel, lets the collector finish the batch in flight, and joins it.
#[derive(Debug)]
pub struct ReadoutServer {
    tx: Option<Sender<Msg>>,
    collector: Option<JoinHandle<()>>,
    counters: Arc<Counters>,
}

impl ReadoutServer {
    /// Starts the server: spawns the collector thread that owns `system`
    /// and serves requests per `config`.
    ///
    /// # Panics
    ///
    /// Panics immediately (not later on the collector thread) if the
    /// configuration is unusable: a zero `max_batch_shots` or a zero
    /// `chunk_size` override.
    pub fn start(system: Arc<KlinqSystem>, config: ServeConfig) -> Self {
        assert!(config.max_batch_shots > 0, "max_batch_shots must be non-zero");
        assert!(config.chunk_size != Some(0), "chunk size override must be non-zero");
        let (tx, rx) = mpsc::channel();
        let counters = Arc::new(Counters::default());
        let collector_counters = Arc::clone(&counters);
        let collector = std::thread::Builder::new()
            .name("klinq-serve-collector".into())
            .spawn(move || collector_loop(&system, config, &rx, &collector_counters))
            .expect("spawn readout-server collector");
        Self {
            tx: Some(tx),
            collector: Some(collector),
            counters,
        }
    }

    /// A new client handle for this server.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Self::shutdown`] (impossible through the
    /// public API, which consumes the server).
    pub fn client(&self) -> ReadoutClient {
        ReadoutClient {
            tx: self.tx.as_ref().expect("server is running").clone(),
        }
    }

    /// A snapshot of the coalescing counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            shots: self.counters.shots.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            largest_batch: self.counters.largest_batch.load(Ordering::Relaxed),
        }
    }

    /// Stops intake, drains the in-flight batch, joins the collector and
    /// returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        // An explicit sentinel (rather than relying on sender
        // disconnection) lets shutdown complete even while cloned
        // `ReadoutClient` handles are still alive; the collector finishes
        // the batch in flight and exits, after which those clients fail
        // fast with `ServeError::Closed`.
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Msg::Shutdown);
        }
        if let Some(handle) = self.collector.take() {
            if let Err(payload) = handle.join() {
                // A dead collector is a bug, not a quiet `Closed`: re-raise
                // its panic on the owner — unless teardown is already
                // unwinding, where a second panic would abort.
                if !std::thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

impl Drop for ReadoutServer {
    fn drop(&mut self) {
        self.close();
    }
}

/// The collector: coalesce → classify → scatter, until disconnect.
fn collector_loop(
    system: &KlinqSystem,
    config: ServeConfig,
    rx: &Receiver<Msg>,
    counters: &Counters,
) {
    let mut batch = BatchDiscriminator::new(system.discriminators());
    if let Some(chunk) = config.chunk_size {
        batch = batch.with_chunk_size(chunk);
    }
    // The feature front end's per-qubit floors: each qubit's trace must
    // carry at least that qubit's averager output count (15 for FNN-A,
    // 100 for FNN-B — mid-circuit truncation above the floor stays
    // servable). Checked at intake so a malformed request is rejected
    // with a typed error instead of panicking the collector (which would
    // kill the server for every client).
    let min_samples: Vec<usize> = system
        .discriminators()
        .iter()
        .map(|d| d.student().pipeline.averager().outputs())
        .collect();
    // Rejects invalid requests at admission; returns an admitted request.
    let admit = |req: Request| -> Option<Request> {
        match validate_shots(&req.shots, &min_samples) {
            Ok(()) => Some(req),
            Err(msg) => {
                let _ = req.reply.send(Err(ServeError::InvalidRequest(msg)));
                None
            }
        }
    };
    let mut shutting_down = false;
    while !shutting_down {
        let first = match rx.recv() {
            Ok(Msg::Request(req)) => match admit(req) {
                Some(req) => req,
                None => continue,
            },
            Ok(Msg::Shutdown) | Err(_) => break,
        };
        let mut pending = vec![first];
        let mut n_shots = pending[0].shots.len();
        let deadline = Instant::now() + config.max_linger;
        while n_shots < config.max_batch_shots {
            let remaining = deadline.saturating_duration_since(Instant::now());
            // `recv_timeout` drains already-queued requests even with a
            // zero budget, so an expired linger still soaks up whatever
            // arrived meanwhile — it just never *waits* any longer.
            match rx.recv_timeout(remaining) {
                Ok(Msg::Request(req)) => {
                    if let Some(req) = admit(req) {
                        n_shots += req.shots.len();
                        pending.push(req);
                    }
                }
                Ok(Msg::Shutdown) => {
                    // Answer the batch in flight, then exit.
                    shutting_down = true;
                    break;
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // One contiguous shot buffer for the engine; shots are moved,
        // never cloned.
        let mut shots = Vec::with_capacity(n_shots);
        let mut replies = Vec::with_capacity(pending.len());
        for req in pending {
            replies.push((req.reply, req.shots.len()));
            shots.extend(req.shots);
        }
        let states = batch.classify_shots_on(config.backend, &shots);

        counters.requests.fetch_add(replies.len() as u64, Ordering::Relaxed);
        counters.shots.fetch_add(shots.len() as u64, Ordering::Relaxed);
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .largest_batch
            .fetch_max(shots.len() as u64, Ordering::Relaxed);

        let mut offset = 0;
        for (reply, count) in replies {
            // A client that gave up (dropped its receiver) is not an
            // error for the batch; everyone else still gets answered.
            let _ = reply.send(Ok(states[offset..offset + count].to_vec()));
            offset += count;
        }
    }
}

/// Checks a request's shots against the serving system's front-end
/// requirements: one trace per qubit, paired I/Q lengths, and at least
/// that qubit's own averager floor per channel (`min_samples[qb]`).
fn validate_shots(shots: &[Shot], min_samples: &[usize]) -> Result<(), String> {
    for (idx, shot) in shots.iter().enumerate() {
        if shot.traces.len() != min_samples.len() {
            return Err(format!(
                "shot {idx} carries {} traces, expected {}",
                shot.traces.len(),
                min_samples.len()
            ));
        }
        for (qb, (t, &floor)) in shot.traces.iter().zip(min_samples).enumerate() {
            if t.i.len() != t.q.len() {
                return Err(format!(
                    "shot {idx} qubit {qb}: I has {} samples but Q has {}",
                    t.i.len(),
                    t.q.len()
                ));
            }
            if t.i.len() < floor {
                return Err(format!(
                    "shot {idx} qubit {qb}: {} samples per channel, \
                     its feature front end needs at least {floor}",
                    t.i.len()
                ));
            }
        }
    }
    Ok(())
}
