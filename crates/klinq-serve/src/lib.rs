//! Micro-batching readout serving: many concurrent clients, one batched
//! discriminator.
//!
//! The per-shot API ([`klinq_core::KlinqSystem::measure_on`]) is built
//! for mid-circuit latency; a readout *service* instead sees throughput —
//! many independent clients each holding a few shots, while the batched
//! engine ([`klinq_core::BatchDiscriminator`]) is fastest when it gets
//! thousands of shots at once. [`ReadoutServer`] bridges the two: it
//! accepts single-shot and multi-shot requests over channels from any
//! number of threads, **coalesces** them into micro-batches (bounded by a
//! configurable shot budget and linger time), classifies each batch in
//! one [`classify_shots_on`](klinq_core::BatchDiscriminator::classify_shots_on)
//! call on the persistent worker pool, and routes each request's
//! [`ShotStates`] back to its sender.
//!
//! Because the batched engine is bitwise-identical to sequential
//! per-shot measurement for any batch composition, coalescing is
//! invisible to clients: every response is exactly what a direct
//! [`measure_on`](klinq_core::KlinqDiscriminator::measure_on) loop would
//! have produced, on either [`Backend`].
//!
//! # Example
//!
//! ```no_run
//! use klinq_core::experiments::ExperimentConfig;
//! use klinq_core::KlinqSystem;
//! use klinq_serve::{ReadoutServer, ServeConfig};
//! use std::sync::Arc;
//!
//! let system = Arc::new(KlinqSystem::train(&ExperimentConfig::smoke())?);
//! let shots = system.test_data().shots().to_vec();
//! let server = ReadoutServer::start(system, ServeConfig::default());
//! let client = server.client();
//! let states = client.classify_shots(shots).expect("server alive");
//! println!("first shot: {:?}", states[0]);
//! server.shutdown();
//! # Ok::<(), klinq_core::KlinqError>(())
//! ```

mod server;

pub use server::{ReadoutClient, ReadoutServer, ServeConfig, ServeError, ServeStats};

// Re-exported so downstream code can name the request/response types
// without depending on klinq-core / klinq-sim directly.
pub use klinq_core::{Backend, ShotStates};
pub use klinq_sim::Shot;
