//! Micro-batching readout serving: many concurrent clients, one batched
//! discriminator per device shard.
//!
//! The per-shot API ([`klinq_core::KlinqSystem::measure_on`]) is built
//! for mid-circuit latency; a readout *service* instead sees throughput —
//! many independent clients each holding a few shots, while the batched
//! engine ([`klinq_core::BatchDiscriminator`]) is fastest when it gets
//! thousands of shots at once. [`ReadoutServer`] bridges the two: it
//! accepts single-shot and multi-shot requests over channels from any
//! number of threads, **coalesces** them into micro-batches (bounded by a
//! configurable shot budget and linger time), classifies each batch in
//! one [`classify_shots_on`](klinq_core::BatchDiscriminator::classify_shots_on)
//! call on the persistent worker pool, and routes each request's
//! [`ShotStates`] back to its sender.
//!
//! Because the batched engine is bitwise-identical to sequential
//! per-shot measurement for any batch composition, coalescing is
//! invisible to clients: every response is exactly what a direct
//! [`measure_on`](klinq_core::KlinqDiscriminator::measure_on) loop would
//! have produced, on either [`Backend`].
//!
//! Serving at scale adds three layers on the coalescing core:
//!
//! - **Scheduling policies**: the intake queue is bounded
//!   ([`ServeConfig::max_pending`]) — a saturated server sheds with
//!   [`ServeError::Overloaded`] instead of queueing unboundedly — and
//!   [`Priority::Latency`] requests close their micro-batch immediately
//!   instead of waiting out the linger window tuned for throughput
//!   traffic.
//! - **Multi-tenant QoS** ([`sched`]): requests carry a [`TenantId`];
//!   intake is per-tenant bounded queues drained by deficit-round-robin
//!   weighted fair queueing ([`SchedPolicy`]), per-tenant quotas shed as
//!   typed [`ServeError::Overloaded`] with a retry-after hint, and
//!   micro-batch closing is deadline-aware — requests whose
//!   [`RequestOptions::deadline`] expires get a typed
//!   [`ServeError::DeadlineExceeded`] instead of stale states.
//! - **Multi-device sharding**: [`ShardedReadoutServer`]
//!   runs one collector per [`KlinqSystem`](klinq_core::KlinqSystem)
//!   (e.g. one per chip in the fridge), deployable from a single
//!   multi-device artifact bundle, routing each request to its device's
//!   collector at intake.
//! - **Self-healing supervision** ([`supervise`]): collectors run under
//!   a panic quarantine (a request that panics its micro-batch is
//!   answered typed [`ServeError::Poisoned`] and never re-batched; the
//!   rest of the batch replays solo, bitwise-identically), every shard
//!   carries a `Healthy → Degraded → Down → Restarting` health state
//!   machine driven by a heartbeat watchdog, a dead shard restarts
//!   automatically from its retained system (or bundle artifact) with
//!   monotonic stats, and intake can fail over from a `Down` shard to a
//!   healthy peer when [`RequestOptions::allow_failover`] permits.
//! - **A wire protocol** ([`wire`]): a length-prefixed binary codec over
//!   plain TCP ([`WireServer`]/[`WireClient`], std threads only) so
//!   out-of-process clients reach the very same coalescing path,
//!   bitwise-identically to in-process calls. The server side is a
//!   readiness-driven reactor (epoll on Linux, a portable poll-loop
//!   fallback elsewhere — [`Transport`]): one event-loop thread
//!   multiplexes thousands of connections under a configurable budget
//!   ([`WireConfig`]), and the protocol's per-frame request ids let each
//!   connection **pipeline** many requests with out-of-order completion.
//!
//! # Example
//!
//! ```no_run
//! use klinq_core::experiments::ExperimentConfig;
//! use klinq_core::KlinqSystem;
//! use klinq_serve::{ReadoutServer, ServeConfig};
//! use std::sync::Arc;
//!
//! let system = Arc::new(KlinqSystem::train(&ExperimentConfig::smoke())?);
//! let shots = system.test_data().shots().to_vec();
//! let server = ReadoutServer::start(system, ServeConfig::default());
//! let client = server.client();
//! let states = client.classify_shots(shots).expect("server alive");
//! println!("first shot: {:?}", states[0]);
//! server.shutdown();
//! # Ok::<(), klinq_core::KlinqError>(())
//! ```

#![forbid(unsafe_code)]

pub mod chaos;
pub mod sched;
mod server;
mod shard;
pub mod supervise;
pub mod wire;

pub use chaos::CrashFaults;
pub use sched::{RequestOptions, SchedPolicy, TenantId, TenantSpec, TenantStats};
pub use server::{
    Priority, ReadoutClient, ReadoutServer, ServeConfig, ServeError, ServeStats, NUM_QUBITS,
};
pub use shard::ShardedReadoutServer;
pub use supervise::{ShardHealth, ShardHealthReport, SuperviseConfig};
pub use wire::{
    ReconnectPolicy, Transport, WireClient, WireConfig, WireError, WireMessage, WireServer,
};

// Re-exported so downstream code can name the request/response types
// without depending on klinq-core / klinq-sim directly.
pub use klinq_core::{Backend, ShotStates};
pub use klinq_sim::Shot;
