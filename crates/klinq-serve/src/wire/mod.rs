//! The wire protocol: out-of-process clients over plain TCP.
//!
//! PR 3's server is in-process only — clients are threads holding a
//! channel handle. A readout *service* needs clients that live in other
//! processes (control-stack software, calibration daemons, other
//! hosts), so this module speaks a small length-prefixed binary
//! protocol over [`std::net::TcpStream`] — std threads only, no async
//! runtime.
//!
//! The module splits along the serving stack's layers:
//!
//! - [`codec`]: the protocol grammar — framing, encoding, panic-free
//!   bounds-checked decoding, incremental [`FrameAssembler`] reassembly.
//! - `conn` (private): per-connection non-blocking buffers and
//!   lifecycle state.
//! - [`reactor`]: the readiness-driven event loop serving thousands of
//!   connections from one thread ([`WireServer`], [`WireConfig`],
//!   [`Transport`]).
//! - this module: the [`WireClient`], with blocking convenience calls
//!   and a pipelined submit/receive API.
//!
//! The [`WireServer`] submits each decoded request through an ordinary
//! in-process [`ReadoutClient`](crate::ReadoutClient) bound to the
//! request's device shard, so **wire requests take exactly the
//! in-process coalescing path**: responses are bitwise-identical to a
//! local `classify_shots` call, and wire traffic coalesces into the
//! same micro-batches as in-process traffic. I/Q samples travel as
//! IEEE-754 little-endian bits, so no value is ever re-quantized in
//! transit.
//!
//! # Pipelining
//!
//! Since protocol version 2 every frame carries a request id, so one
//! connection can hold many requests in flight and the server answers
//! in whatever order the micro-batches complete. [`WireClient::submit`]
//! sends without waiting; [`WireClient::recv_response`] returns the
//! next completed `(request id, result)` pair, whichever request it
//! belongs to. The blocking `classify_*` calls are small wrappers that
//! submit one request and wait for its id.

pub mod codec;
mod conn;
pub mod reactor;

pub use codec::{
    decode_message, encode_error, encode_request, encode_response, read_frame, write_frame,
    FrameAssembler, WireError, WireMessage, CONNECTION_REQ_ID, MAX_REQUEST_SHOTS,
};
pub use reactor::{Transport, WireConfig, WireServer};

use crate::server::{Priority, ServeError};
use klinq_core::ShotStates;
use klinq_sim::Shot;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A wire client bound to one device shard at connect time — the same
/// blocking call surface as the in-process
/// [`ReadoutClient`](crate::ReadoutClient) (`classify_shots` /
/// `classify_shot` / `classify_shots_with_priority`, returning the same
/// [`ServeError`]s), plus the pipelined [`submit`](Self::submit) /
/// [`recv_response`](Self::recv_response) pair for keeping many
/// requests in flight on one connection.
///
/// Methods take `&mut self`: one thread drives a connection. For
/// concurrent request *streams*, either pipeline on one client or open
/// one client per thread.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    device: u16,
    next_req_id: u64,
    /// In-flight request ids → their shot counts (for reply-length
    /// validation).
    pending: HashMap<u64, usize>,
    /// Completions read from the socket while waiting for a different
    /// request id, delivered by later `recv_response` calls.
    ready: VecDeque<(u64, Result<Vec<ShotStates>, ServeError>)>,
    /// Inbound frame reassembly. Receives are buffered through this so
    /// one read syscall can drain a whole burst of pipelined responses
    /// (they are ~20 bytes each) instead of paying two syscalls per
    /// frame.
    rx: FrameAssembler,
    /// Outbound scratch buffer: every submit encodes its frame in here
    /// (cleared, capacity kept), so a pipelining client does not
    /// allocate ~70 KB per bulk request.
    tx: Vec<u8>,
}

/// How much a client receive asks the socket for at once — sized to
/// swallow a burst of completed pipelined responses in one syscall.
const RECV_CHUNK: usize = 16 * 1024;

impl WireClient {
    /// Connects to a [`WireServer`] and binds this handle to `device`'s
    /// shard (the routing decision, made once at intake).
    ///
    /// # Errors
    ///
    /// Propagates the TCP connect error.
    pub fn connect(addr: impl ToSocketAddrs, device: u16) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, device)
    }

    /// Like [`Self::connect`], but gives up with
    /// [`io::ErrorKind::TimedOut`] if the server does not accept within
    /// `timeout` — a dead or unroutable server fails the connect in
    /// bounded time instead of hanging for the OS default (minutes).
    ///
    /// # Errors
    ///
    /// Propagates the TCP connect error, including the timeout.
    pub fn connect_timeout(addr: &SocketAddr, device: u16, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        Self::from_stream(stream, device)
    }

    fn from_stream(stream: TcpStream, device: u16) -> io::Result<Self> {
        // Request frames should go out immediately: latency matters
        // more than segment packing.
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            device,
            // Id 0 is CONNECTION_REQ_ID — reserved for connection-level
            // errors — so client ids count from 1.
            next_req_id: 1,
            pending: HashMap::new(),
            ready: VecDeque::new(),
            rx: FrameAssembler::new(),
            tx: Vec::new(),
        })
    }

    /// Bounds every receive: once set, a wait in
    /// [`recv_response`](Self::recv_response) (or the blocking
    /// `classify_*` wrappers) fails with [`ServeError::Timeout`] instead
    /// of hanging forever on a server that accepted but never replies.
    ///
    /// After a timeout the connection may hold a partial frame and must
    /// be discarded — reconnect rather than retrying on it.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option error. A zero duration is rejected
    /// by the OS; use `None` to wait forever.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Requests in flight: submitted, not yet returned by
    /// [`recv_response`](Self::recv_response).
    pub fn in_flight(&self) -> usize {
        self.pending.len() + self.ready.len()
    }

    /// Submits a classification request at [`Priority::Throughput`]
    /// without waiting for the result; returns the request id to match
    /// against [`recv_response`](Self::recv_response). Many submits may
    /// be in flight at once — that is the point.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the transport failed, or
    /// [`ServeError::InvalidRequest`] for a request over the frame-size
    /// bound (refused before any byte is sent).
    pub fn submit(&mut self, shots: &[Shot]) -> Result<u64, ServeError> {
        self.submit_with_priority(Priority::Throughput, shots)
    }

    /// Like [`Self::submit`], with an explicit [`Priority`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::submit`].
    pub fn submit_with_priority(
        &mut self,
        priority: Priority,
        shots: &[Shot],
    ) -> Result<u64, ServeError> {
        self.submit_to(self.device, priority, shots)
    }

    /// Like [`Self::submit_with_priority`], overriding the device bound
    /// at connect time: the protocol routes per request, so one
    /// pipelined connection can spread work across a fleet's shards.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::submit`]. (An out-of-range device is
    /// answered by the *server* with [`ServeError::InvalidRequest`]
    /// through [`recv_response`](Self::recv_response), like any other
    /// per-request failure.)
    pub fn submit_to(
        &mut self,
        device: u16,
        priority: Priority,
        shots: &[Shot],
    ) -> Result<u64, ServeError> {
        let req_id = self.next_req_id;
        // Encoded straight into its frame, in the reused scratch
        // buffer: one buffer, one write, no second payload copy and no
        // per-request allocation on the submit path.
        codec::encode_request_frame_into(&mut self.tx, req_id, device, priority, shots).map_err(
            // Over the frame-size bound: the request itself is the
            // problem, not the transport — refused before any byte
            // goes out.
            |len| {
                ServeError::InvalidRequest(format!(
                    "frame of {len} bytes exceeds the {}-byte bound",
                    codec::MAX_FRAME
                ))
            },
        )?;
        self.stream
            .write_all(&self.tx)
            .map_err(|_| ServeError::Closed)?;
        self.next_req_id += 1;
        self.pending.insert(req_id, shots.len());
        Ok(req_id)
    }

    /// Waits for the next completed request — whichever of the in-flight
    /// ids finishes first — and returns `(request id, per-request
    /// result)`. Responses arriving out of submission order are normal:
    /// different priorities and batch closings reorder freely.
    ///
    /// The per-request result is `Ok(states)` (bitwise-identical to an
    /// in-process call) or the server's typed [`ServeError`] for that
    /// request (e.g. `InvalidRequest`, `Overloaded`) — those leave the
    /// connection usable.
    ///
    /// # Errors
    ///
    /// The *outer* error means the connection itself is done for:
    /// [`ServeError::Closed`] (transport failed or nothing in flight to
    /// wait on), [`ServeError::Timeout`] (read deadline expired — see
    /// [`Self::set_read_timeout`]), or [`ServeError::Protocol`]
    /// (undecodable frame, unknown request id, short reply, or a
    /// connection-level error frame from the server).
    #[allow(clippy::type_complexity)]
    pub fn recv_response(
        &mut self,
    ) -> Result<(u64, Result<Vec<ShotStates>, ServeError>), ServeError> {
        if let Some(done) = self.ready.pop_front() {
            return Ok(done);
        }
        if self.pending.is_empty() {
            return Err(ServeError::Closed);
        }
        // Extract a buffered frame; read (blocking, possibly under a
        // deadline) only when the reassembly buffer has no complete
        // frame — so a burst of small responses costs one syscall, not
        // two per frame.
        let message = loop {
            let decoded = match self.rx.next_frame_ref() {
                Ok(Some(payload)) => Some(decode_message(payload)),
                Ok(None) => None,
                Err(e) => return Err(ServeError::Protocol(e.to_string())),
            };
            if let Some(decoded) = decoded {
                break decoded;
            }
            match self.rx.read_from(&mut self.stream, RECV_CHUNK) {
                Ok(0) if self.rx.pending() == 0 => return Err(ServeError::Closed),
                Ok(0) => {
                    return Err(ServeError::Protocol(
                        "stream ended mid-frame".to_string(),
                    ))
                }
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // A blocking socket with a read deadline (SO_RCVTIMEO)
                // reports expiry as WouldBlock on unix, TimedOut on
                // windows.
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Err(ServeError::Timeout)
                }
                Err(_) => return Err(ServeError::Closed),
            }
        };
        match message {
            Ok(WireMessage::Response { req_id, states }) => {
                let Some(expected) = self.pending.remove(&req_id) else {
                    return Err(ServeError::Protocol(format!(
                        "response for unknown request id {req_id}"
                    )));
                };
                // Same contract as the in-process client: a short reply
                // is a typed protocol error, never a panic.
                let result = if states.len() == expected {
                    Ok(states)
                } else {
                    Err(ServeError::Protocol(format!(
                        "reply carries {} shot states for a {expected}-shot request",
                        states.len()
                    )))
                };
                Ok((req_id, result))
            }
            Ok(WireMessage::Error { req_id, error }) => {
                if req_id == CONNECTION_REQ_ID {
                    // Connection-level: the server is hanging up on
                    // this whole connection, not failing one request.
                    return Err(error);
                }
                if self.pending.remove(&req_id).is_none() {
                    return Err(ServeError::Protocol(format!(
                        "error frame for unknown request id {req_id}"
                    )));
                }
                Ok((req_id, Err(error)))
            }
            Ok(WireMessage::Request { .. }) => Err(ServeError::Protocol(
                "server sent a request message".to_string(),
            )),
            Err(e) => Err(ServeError::Protocol(e.to_string())),
        }
    }

    /// Classifies a batch of shots over the wire at
    /// [`Priority::Throughput`], blocking until the result arrives;
    /// response index `i` is shot `i`'s states, bitwise-identical to an
    /// in-process `classify_shots` call against the same shard.
    ///
    /// An empty request completes without a server round trip.
    ///
    /// # Errors
    ///
    /// The server's own [`ServeError`]s pass through (`Closed`,
    /// `Overloaded`, `InvalidRequest`); transport failures surface as
    /// [`ServeError::Closed`], expired read deadlines as
    /// [`ServeError::Timeout`], and protocol violations as
    /// [`ServeError::Protocol`].
    pub fn classify_shots(&mut self, shots: &[Shot]) -> Result<Vec<ShotStates>, ServeError> {
        self.classify_shots_with_priority(Priority::Throughput, shots)
    }

    /// Like [`Self::classify_shots`], with an explicit [`Priority`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::classify_shots`].
    pub fn classify_shots_with_priority(
        &mut self,
        priority: Priority,
        shots: &[Shot],
    ) -> Result<Vec<ShotStates>, ServeError> {
        if shots.is_empty() {
            return Ok(Vec::new());
        }
        let want = self.submit_with_priority(priority, shots)?;
        loop {
            let (req_id, result) = self.recv_response()?;
            if req_id == want {
                return result;
            }
            // A completion for an *earlier* pipelined submit: keep it
            // for the recv_response call that wants it.
            self.ready.push_back((req_id, result));
        }
    }

    /// Classifies one shot over the wire.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::classify_shots`].
    pub fn classify_shot(&mut self, shot: &Shot) -> Result<ShotStates, ServeError> {
        let states = self.classify_shots(std::slice::from_ref(shot))?;
        // `classify_shots` already rejected length mismatches.
        Ok(states[0])
    }
}
