//! The wire protocol: out-of-process clients over plain TCP.
//!
//! PR 3's server is in-process only — clients are threads holding a
//! channel handle. A readout *service* needs clients that live in other
//! processes (control-stack software, calibration daemons, other
//! hosts), so this module speaks a small length-prefixed binary
//! protocol over [`std::net::TcpStream`] — std threads only, no async
//! runtime.
//!
//! The module splits along the serving stack's layers:
//!
//! - [`codec`]: the protocol grammar — framing, encoding, panic-free
//!   bounds-checked decoding, incremental [`FrameAssembler`] reassembly.
//! - `conn` (private): per-connection non-blocking buffers and
//!   lifecycle state.
//! - [`reactor`]: the readiness-driven event loop serving thousands of
//!   connections from one thread ([`WireServer`], [`WireConfig`],
//!   [`Transport`]).
//! - this module: the [`WireClient`], with blocking convenience calls
//!   and a pipelined submit/receive API.
//!
//! The [`WireServer`] submits each decoded request through an ordinary
//! in-process [`ReadoutClient`](crate::ReadoutClient) bound to the
//! request's device shard, so **wire requests take exactly the
//! in-process coalescing path**: responses are bitwise-identical to a
//! local `classify_shots` call, and wire traffic coalesces into the
//! same micro-batches as in-process traffic. I/Q samples travel as
//! IEEE-754 little-endian bits, so no value is ever re-quantized in
//! transit.
//!
//! # Pipelining
//!
//! Since protocol version 2 every frame carries a request id, so one
//! connection can hold many requests in flight and the server answers
//! in whatever order the micro-batches complete. [`WireClient::submit`]
//! sends without waiting; [`WireClient::recv_response`] returns the
//! next completed `(request id, result)` pair, whichever request it
//! belongs to. The blocking `classify_*` calls are small wrappers that
//! submit one request and wait for its id.
//!
//! # Surviving disconnects
//!
//! A transport failure — the peer hung up mid-frame, a write hit a dead
//! socket — never panics and never silently hangs: every request in
//! flight surfaces as a typed [`ServeError::Disconnected`] through
//! [`WireClient::recv_response`], and the client reconnects to the
//! remembered address with exponential backoff plus deterministic
//! jitter ([`ReconnectPolicy`]) on the next send. Because
//! classification is pure — equal shots give bitwise-equal states, on
//! either model version, with no server-side state keyed to the request
//! — resubmitting a disconnected request is idempotent, so the blocking
//! `classify_*` wrappers retry it automatically **under the same
//! request id**. Pipelining callers driving [`WireClient::submit`] /
//! [`WireClient::recv_response`] directly decide for themselves which
//! `Disconnected` results to resubmit. A server that answers
//! [`ServeError::Draining`] is *refusing* work, not losing it, so
//! nothing auto-retries against it.

pub mod codec;
mod conn;
pub mod reactor;

pub use codec::{
    decode_message, encode_error, encode_request, encode_response, read_frame, write_frame,
    FrameAssembler, WireError, WireMessage, CONNECTION_REQ_ID, MAX_REQUEST_SHOTS,
};
pub use reactor::{Transport, WireConfig, WireServer};

use crate::sched::RequestOptions;
use crate::server::{Priority, ServeError};
use crate::supervise::ShardHealthReport;
use klinq_core::ShotStates;
use klinq_sim::Shot;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How a [`WireClient`] re-establishes a failed connection: up to
/// [`max_attempts`](Self::max_attempts) connect attempts, sleeping an
/// exponentially growing, jittered delay between failures
/// (`base_delay`, doubling, capped at `max_delay`; each sleep is
/// half fixed, half drawn from a deterministic jitter stream so a
/// thundering herd of clients spreads out instead of reconnecting in
/// lockstep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Connect attempts per reconnect cycle before giving up with
    /// [`ServeError::Disconnected`]. Also bounds how many times a
    /// blocking `classify_*` call resubmits one request.
    pub max_attempts: u32,
    /// Sleep after the first failed attempt; doubles per failure.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seeds the jitter stream. Fixed by default so test runs
    /// reproduce; fleets that want decorrelated clients seed per
    /// client (e.g. from the process id).
    pub jitter_seed: u64,
}

impl Default for ReconnectPolicy {
    /// 8 attempts, 25 ms doubling to a 2 s ceiling — a restart-speed
    /// outage (a model rollout bouncing the server) is ridden out, a
    /// genuinely dead server fails in seconds, not minutes.
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0x8A5C_D789_635D_2DFF,
        }
    }
}

/// One xorshift64 draw (enough for backoff jitter; never zero-state).
fn jitter_next(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A wire client bound to one device shard at connect time — the same
/// blocking call surface as the in-process
/// [`ReadoutClient`](crate::ReadoutClient) (`classify_shots` /
/// `classify_shot` / `classify_shots_with_priority`, returning the same
/// [`ServeError`]s), plus the pipelined [`submit`](Self::submit) /
/// [`recv_response`](Self::recv_response) pair for keeping many
/// requests in flight on one connection.
///
/// Methods take `&mut self`: one thread drives a connection. For
/// concurrent request *streams*, either pipeline on one client or open
/// one client per thread.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    device: u16,
    /// Where to reconnect after a transport failure (the peer address
    /// remembered at connect time; `None` disables reconnection).
    addr: Option<SocketAddr>,
    /// Backoff policy for reconnects; `None` disables reconnection.
    reconnect: Option<ReconnectPolicy>,
    /// Jitter stream state (seeded from the policy).
    jitter: u64,
    /// The transport failed; the next send must reconnect first.
    broken: bool,
    /// Remembered so a reconnected stream keeps the caller's deadline.
    read_timeout: Option<Duration>,
    next_req_id: u64,
    /// In-flight request ids → their shot counts (for reply-length
    /// validation).
    pending: HashMap<u64, usize>,
    /// Completions read from the socket while waiting for a different
    /// request id, delivered by later `recv_response` calls.
    ready: VecDeque<(u64, Result<Vec<ShotStates>, ServeError>)>,
    /// Health queries in flight (ids sent, reports not yet received).
    pending_health: Vec<u64>,
    /// Health reports read from the socket while waiting on something
    /// else, delivered by the `fleet_health` call that asked.
    health_ready: Vec<(u64, Vec<ShardHealthReport>)>,
    /// Inbound frame reassembly. Receives are buffered through this so
    /// one read syscall can drain a whole burst of pipelined responses
    /// (they are ~20 bytes each) instead of paying two syscalls per
    /// frame.
    rx: FrameAssembler,
    /// Outbound scratch buffer: every submit encodes its frame in here
    /// (cleared, capacity kept), so a pipelining client does not
    /// allocate ~70 KB per bulk request.
    tx: Vec<u8>,
}

/// How much a client receive asks the socket for at once — sized to
/// swallow a burst of completed pipelined responses in one syscall.
const RECV_CHUNK: usize = 16 * 1024;

impl WireClient {
    /// Connects to a [`WireServer`] and binds this handle to `device`'s
    /// shard (the routing decision, made once at intake).
    ///
    /// # Errors
    ///
    /// Propagates the TCP connect error.
    pub fn connect(addr: impl ToSocketAddrs, device: u16) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, device)
    }

    /// Like [`Self::connect`], but gives up with
    /// [`io::ErrorKind::TimedOut`] if the server does not accept within
    /// `timeout` — a dead or unroutable server fails the connect in
    /// bounded time instead of hanging for the OS default (minutes).
    ///
    /// # Errors
    ///
    /// Propagates the TCP connect error, including the timeout.
    pub fn connect_timeout(addr: &SocketAddr, device: u16, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        Self::from_stream(stream, device)
    }

    fn from_stream(stream: TcpStream, device: u16) -> io::Result<Self> {
        // Request frames should go out immediately: latency matters
        // more than segment packing.
        stream.set_nodelay(true)?;
        let policy = ReconnectPolicy::default();
        Ok(Self {
            addr: stream.peer_addr().ok(),
            stream,
            device,
            reconnect: Some(policy),
            jitter: policy.jitter_seed,
            broken: false,
            read_timeout: None,
            // Id 0 is CONNECTION_REQ_ID — reserved for connection-level
            // errors — so client ids count from 1.
            next_req_id: 1,
            pending: HashMap::new(),
            ready: VecDeque::new(),
            pending_health: Vec::new(),
            health_ready: Vec::new(),
            rx: FrameAssembler::new(),
            tx: Vec::new(),
        })
    }

    /// Overrides the reconnect behavior (see [`ReconnectPolicy`];
    /// enabled with defaults on every new client). `None` disables
    /// reconnection entirely: transport failures still surface each
    /// in-flight request as [`ServeError::Disconnected`], but nothing
    /// retries and the client is done for.
    pub fn set_reconnect(&mut self, policy: Option<ReconnectPolicy>) {
        self.jitter = policy.map_or(0, |p| p.jitter_seed);
        self.reconnect = policy;
    }

    /// Bounds every receive: once set, a wait in
    /// [`recv_response`](Self::recv_response) (or the blocking
    /// `classify_*` wrappers) fails with [`ServeError::Timeout`] instead
    /// of hanging forever on a server that accepted but never replies.
    ///
    /// A timeout that expires mid-frame poisons the connection; the
    /// client notices and reconnects on the next send (see
    /// [`ReconnectPolicy`]), so callers just keep calling.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option error. A zero duration is rejected
    /// by the OS; use `None` to wait forever.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        // Remembered so a reconnected stream keeps the same deadline.
        self.read_timeout = timeout;
        Ok(())
    }

    /// Marks the transport dead: every in-flight request is delivered
    /// as a typed [`ServeError::Disconnected`] through the ready queue
    /// (a disconnect loses the *connection*, never a caller's wait),
    /// and the reassembly buffer is discarded (its partial frame died
    /// with the stream).
    fn fail_connection(&mut self) {
        self.broken = true;
        self.rx = FrameAssembler::new();
        for (req_id, _) in self.pending.drain() {
            self.ready.push_back((req_id, Err(ServeError::Disconnected)));
        }
        // Health queries die with the stream — their waiters observe
        // the disconnect as an outer error, not a queued result.
        self.pending_health.clear();
    }

    /// Re-establishes a broken transport under the backoff policy.
    /// No-op on a healthy connection.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] once the policy's attempts are
    /// exhausted (or immediately when reconnection is disabled or the
    /// peer address is unknown).
    fn ensure_connected(&mut self) -> Result<(), ServeError> {
        if !self.broken {
            return Ok(());
        }
        let (Some(addr), Some(policy)) = (self.addr, self.reconnect) else {
            return Err(ServeError::Disconnected);
        };
        for attempt in 0..policy.max_attempts {
            if attempt > 0 {
                std::thread::sleep(self.backoff_delay(&policy, attempt - 1));
            }
            let Ok(stream) = TcpStream::connect(addr) else {
                continue;
            };
            if stream.set_nodelay(true).is_err()
                || stream.set_read_timeout(self.read_timeout).is_err()
            {
                continue;
            }
            self.stream = stream;
            self.rx = FrameAssembler::new();
            self.broken = false;
            return Ok(());
        }
        Err(ServeError::Disconnected)
    }

    /// The sleep before retry `attempt + 1`: exponential from
    /// `base_delay` capped at `max_delay`, half fixed and half jitter.
    fn backoff_delay(&mut self, policy: &ReconnectPolicy, attempt: u32) -> Duration {
        let cap = policy
            .base_delay
            .saturating_mul(1u32 << attempt.min(20))
            .min(policy.max_delay);
        let half = cap / 2;
        let jitter_nanos = half.as_nanos().min(u128::from(u64::MAX)) as u64;
        let jitter = if jitter_nanos == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(jitter_next(&mut self.jitter) % (jitter_nanos + 1))
        };
        half + jitter
    }

    /// Requests in flight: submitted, not yet returned by
    /// [`recv_response`](Self::recv_response).
    pub fn in_flight(&self) -> usize {
        self.pending.len() + self.ready.len()
    }

    /// Submits a classification request at [`Priority::Throughput`]
    /// without waiting for the result; returns the request id to match
    /// against [`recv_response`](Self::recv_response). Many submits may
    /// be in flight at once — that is the point.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] if the transport failed (after
    /// exhausting the [`ReconnectPolicy`], when one is set), or
    /// [`ServeError::InvalidRequest`] for a request over the frame-size
    /// bound (refused before any byte is sent).
    pub fn submit(&mut self, shots: &[Shot]) -> Result<u64, ServeError> {
        self.submit_with_priority(Priority::Throughput, shots)
    }

    /// Like [`Self::submit`], with an explicit [`Priority`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::submit`].
    pub fn submit_with_priority(
        &mut self,
        priority: Priority,
        shots: &[Shot],
    ) -> Result<u64, ServeError> {
        self.submit_opts(RequestOptions::new().priority(priority), shots)
    }

    /// Like [`Self::submit`], with full [`RequestOptions`] — priority,
    /// tenant, and deadline travel in the v3 request frame. An unknown
    /// or oversized tenant id is answered by the *server* with a typed
    /// per-request [`ServeError::UnknownTenant`] error frame through
    /// [`recv_response`](Self::recv_response) — the connection stays up
    /// and every other in-flight request completes normally.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::submit`].
    pub fn submit_opts(&mut self, opts: RequestOptions, shots: &[Shot]) -> Result<u64, ServeError> {
        self.submit_to_opts(self.device, opts, shots)
    }

    /// Like [`Self::submit_with_priority`], overriding the device bound
    /// at connect time: the protocol routes per request, so one
    /// pipelined connection can spread work across a fleet's shards.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::submit`]. (An out-of-range device is
    /// answered by the *server* with [`ServeError::InvalidRequest`]
    /// through [`recv_response`](Self::recv_response), like any other
    /// per-request failure.)
    pub fn submit_to(
        &mut self,
        device: u16,
        priority: Priority,
        shots: &[Shot],
    ) -> Result<u64, ServeError> {
        self.submit_to_opts(device, RequestOptions::new().priority(priority), shots)
    }

    /// Like [`Self::submit_opts`], overriding the device bound at
    /// connect time.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::submit`].
    pub fn submit_to_opts(
        &mut self,
        device: u16,
        opts: RequestOptions,
        shots: &[Shot],
    ) -> Result<u64, ServeError> {
        let req_id = self.next_req_id;
        self.send_request(req_id, device, opts, shots)?;
        self.next_req_id += 1;
        Ok(req_id)
    }

    /// A deadline on the wire: relative microseconds, `0` = none. A
    /// sub-microsecond deadline rounds up to 1 µs so "some deadline"
    /// never silently becomes "no deadline" in transit.
    fn deadline_us(opts: RequestOptions) -> u64 {
        opts.deadline.map_or(0, |d| {
            u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1)
        })
    }

    /// Encodes and writes one request frame under `req_id`, tracking it
    /// as pending. Shared by fresh submits (a new id each) and the
    /// blocking wrappers' idempotent resubmits (the *same* id again on
    /// a reconnected stream).
    fn send_request(
        &mut self,
        req_id: u64,
        device: u16,
        opts: RequestOptions,
        shots: &[Shot],
    ) -> Result<(), ServeError> {
        self.ensure_connected()?;
        // Encoded straight into its frame, in the reused scratch
        // buffer: one buffer, one write, no second payload copy and no
        // per-request allocation on the submit path.
        codec::encode_request_frame_into(
            &mut self.tx,
            req_id,
            device,
            opts.priority,
            opts.tenant.0,
            Self::deadline_us(opts),
            opts.allow_failover,
            shots,
        )
        .map_err(
            // Over the frame-size bound: the request itself is the
            // problem, not the transport — refused before any byte
            // goes out.
            |len| {
                ServeError::InvalidRequest(format!(
                    "frame of {len} bytes exceeds the {}-byte bound",
                    codec::MAX_FRAME
                ))
            },
        )?;
        for _ in 0..2 {
            if self.stream.write_all(&self.tx).is_ok() {
                self.pending.insert(req_id, shots.len());
                return Ok(());
            }
            // The write may have landed partially: the stream is
            // unusable and everything already in flight on it is lost
            // (delivered as `Disconnected` results). This request has
            // not been tracked yet, so after a reconnect the frame is
            // simply written again, whole.
            self.fail_connection();
            if self.ensure_connected().is_err() {
                break;
            }
        }
        Err(ServeError::Disconnected)
    }

    /// Waits for the next completed request — whichever of the in-flight
    /// ids finishes first — and returns `(request id, per-request
    /// result)`. Responses arriving out of submission order are normal:
    /// different priorities and batch closings reorder freely.
    ///
    /// The per-request result is `Ok(states)` (bitwise-identical to an
    /// in-process call) or the server's typed [`ServeError`] for that
    /// request (e.g. `InvalidRequest`, `Overloaded`) — those leave the
    /// connection usable. A transport failure (the peer hung up, even
    /// mid-frame) surfaces every in-flight request as a per-request
    /// [`ServeError::Disconnected`] result; resubmitting such a
    /// request is always safe (classification is pure), and the next
    /// send reconnects under the [`ReconnectPolicy`].
    ///
    /// # Errors
    ///
    /// The *outer* error means there is nothing to deliver:
    /// [`ServeError::Closed`] (nothing in flight to wait on),
    /// [`ServeError::Timeout`] (read deadline expired — see
    /// [`Self::set_read_timeout`]), or [`ServeError::Protocol`]
    /// (undecodable frame, unknown request id, short reply, or a
    /// connection-level error frame from the server — e.g.
    /// [`ServeError::Draining`] from a server shutting down, returned
    /// as the outer error itself).
    #[allow(clippy::type_complexity)]
    pub fn recv_response(
        &mut self,
    ) -> Result<(u64, Result<Vec<ShotStates>, ServeError>), ServeError> {
        if let Some(done) = self.ready.pop_front() {
            return Ok(done);
        }
        if self.pending.is_empty() {
            return Err(ServeError::Closed);
        }
        loop {
            match self.pump_one() {
                // The pumped frame may have been a health report for a
                // concurrent `fleet_health` wait — keep pumping until a
                // request completion lands.
                Ok(()) => {
                    if let Some(done) = self.ready.pop_front() {
                        return Ok(done);
                    }
                }
                Err(ServeError::Disconnected) => {
                    // The dead connection delivered every in-flight
                    // request into the ready queue as a per-request
                    // `Disconnected` result (`pending` was non-empty
                    // above, so the queue cannot come up empty here).
                    if let Some(done) = self.ready.pop_front() {
                        return Ok(done);
                    }
                    return Err(ServeError::Disconnected);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads exactly one frame from the stream and dispatches it:
    /// request completions (responses and per-request error frames)
    /// land in the ready queue, health reports in the health queue.
    ///
    /// # Errors
    ///
    /// The outer conditions under which nothing was dispatched:
    /// `Timeout` (read deadline expired), `Disconnected` (transport
    /// failed — in-flight requests were delivered into the ready queue
    /// as per-request results first), `Protocol` (undecodable frame or
    /// unknown id), or a connection-level error frame's own error.
    fn pump_one(&mut self) -> Result<(), ServeError> {
        // Extract a buffered frame; read (blocking, possibly under a
        // deadline) only when the reassembly buffer has no complete
        // frame — so a burst of small responses costs one syscall, not
        // two per frame.
        let message = loop {
            let decoded = match self.rx.next_frame_ref() {
                Ok(Some(payload)) => Some(decode_message(payload)),
                Ok(None) => None,
                Err(e) => return Err(ServeError::Protocol(e.to_string())),
            };
            if let Some(decoded) = decoded {
                break decoded;
            }
            match self.rx.read_from(&mut self.stream, RECV_CHUNK) {
                Ok(0) => {
                    // EOF — clean or mid-frame — is a disconnect: the
                    // in-flight requests are delivered as `Disconnected`
                    // results through the ready queue.
                    self.fail_connection();
                    return Err(ServeError::Disconnected);
                }
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // A blocking socket with a read deadline (SO_RCVTIMEO)
                // reports expiry as WouldBlock on unix, TimedOut on
                // windows.
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // A deadline that expired mid-frame poisons the
                    // stream — fail it so the next send reconnects.
                    // An expiry between frames leaves it usable.
                    if self.rx.pending() > 0 {
                        self.fail_connection();
                    }
                    return Err(ServeError::Timeout);
                }
                Err(_) => {
                    // Transport failure: same treatment as EOF.
                    self.fail_connection();
                    return Err(ServeError::Disconnected);
                }
            }
        };
        match message {
            Ok(WireMessage::Response { req_id, states }) => {
                let Some(expected) = self.pending.remove(&req_id) else {
                    return Err(ServeError::Protocol(format!(
                        "response for unknown request id {req_id}"
                    )));
                };
                // Same contract as the in-process client: a short reply
                // is a typed protocol error, never a panic.
                let result = if states.len() == expected {
                    Ok(states)
                } else {
                    Err(ServeError::Protocol(format!(
                        "reply carries {} shot states for a {expected}-shot request",
                        states.len()
                    )))
                };
                self.ready.push_back((req_id, result));
                Ok(())
            }
            Ok(WireMessage::Error { req_id, error }) => {
                if req_id == CONNECTION_REQ_ID {
                    // Connection-level: the server is hanging up on
                    // this whole connection, not failing one request.
                    // Anything still in flight is delivered as
                    // `Disconnected`; the next send reconnects.
                    self.fail_connection();
                    return Err(error);
                }
                if self.pending.remove(&req_id).is_none() {
                    return Err(ServeError::Protocol(format!(
                        "error frame for unknown request id {req_id}"
                    )));
                }
                self.ready.push_back((req_id, Err(error)));
                Ok(())
            }
            Ok(WireMessage::HealthReport { req_id, shards }) => {
                let Some(at) = self.pending_health.iter().position(|&id| id == req_id) else {
                    return Err(ServeError::Protocol(format!(
                        "health report for unknown request id {req_id}"
                    )));
                };
                self.pending_health.swap_remove(at);
                self.health_ready.push((req_id, shards));
                Ok(())
            }
            Ok(WireMessage::Request { .. } | WireMessage::Health { .. }) => Err(
                ServeError::Protocol("server sent a client-direction message".to_string()),
            ),
            Err(e) => Err(ServeError::Protocol(e.to_string())),
        }
    }

    /// Queries the fleet's per-shard health — one
    /// [`ShardHealthReport`] per device shard, in device order —
    /// blocking until the report arrives. The server answers from its
    /// shard monitors without a collector round trip, so health is
    /// visible even while shards are down or the server is draining.
    ///
    /// Request completions arriving while this waits are kept for later
    /// [`recv_response`](Self::recv_response) calls — a pipelining
    /// client can interleave health polls freely.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] if the transport fails (the query
    /// is not auto-retried), [`ServeError::Timeout`] when the read
    /// deadline expires, and [`ServeError::Protocol`] for undecodable
    /// replies.
    pub fn fleet_health(&mut self) -> Result<Vec<ShardHealthReport>, ServeError> {
        self.ensure_connected()?;
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        let frame = codec::frame(&codec::encode_health(req_id));
        if self.stream.write_all(&frame).is_err() {
            self.fail_connection();
            self.ensure_connected()?;
            if self.stream.write_all(&frame).is_err() {
                self.fail_connection();
                return Err(ServeError::Disconnected);
            }
        }
        self.pending_health.push(req_id);
        loop {
            if let Some(at) = self.health_ready.iter().position(|(id, _)| *id == req_id) {
                return Ok(self.health_ready.swap_remove(at).1);
            }
            self.pump_one()?;
        }
    }

    /// Classifies a batch of shots over the wire at
    /// [`Priority::Throughput`], blocking until the result arrives;
    /// response index `i` is shot `i`'s states, bitwise-identical to an
    /// in-process `classify_shots` call against the same shard.
    ///
    /// An empty request completes without a server round trip.
    ///
    /// # Errors
    ///
    /// The server's own [`ServeError`]s pass through (`Closed`,
    /// `Overloaded`, `InvalidRequest`, `Draining`); expired read
    /// deadlines surface as [`ServeError::Timeout`] and protocol
    /// violations as [`ServeError::Protocol`]. A transport failure is
    /// retried idempotently under the same request id (reconnecting
    /// per the [`ReconnectPolicy`]) and surfaces as
    /// [`ServeError::Disconnected`] only once the policy is exhausted
    /// (or reconnection is disabled).
    pub fn classify_shots(&mut self, shots: &[Shot]) -> Result<Vec<ShotStates>, ServeError> {
        self.classify_shots_with_priority(Priority::Throughput, shots)
    }

    /// Like [`Self::classify_shots`], with an explicit [`Priority`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::classify_shots`].
    pub fn classify_shots_with_priority(
        &mut self,
        priority: Priority,
        shots: &[Shot],
    ) -> Result<Vec<ShotStates>, ServeError> {
        self.classify_shots_opts(RequestOptions::new().priority(priority), shots)
    }

    /// Like [`Self::classify_shots`], with full [`RequestOptions`]: the
    /// request bills to `opts.tenant`'s queue on the server and, when
    /// `opts.deadline` is set, is answered with a typed
    /// [`ServeError::DeadlineExceeded`] instead of stale states if it
    /// cannot be served in time.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::classify_shots`], plus the typed QoS
    /// errors: [`ServeError::UnknownTenant`],
    /// [`ServeError::DeadlineExceeded`], and [`ServeError::Overloaded`]
    /// carrying the server's retry-after hint when the tenant's quota
    /// shed the request.
    pub fn classify_shots_opts(
        &mut self,
        opts: RequestOptions,
        shots: &[Shot],
    ) -> Result<Vec<ShotStates>, ServeError> {
        if shots.is_empty() {
            return Ok(Vec::new());
        }
        let want = self.submit_opts(opts, shots)?;
        let mut resubmits = 0u32;
        loop {
            let (req_id, result) = self.recv_response()?;
            if req_id != want {
                // A completion for an *earlier* pipelined submit: keep
                // it for the recv_response call that wants it.
                self.ready.push_back((req_id, result));
                continue;
            }
            match result {
                // The connection died with this request in flight.
                // Classification is pure, so resubmitting is
                // idempotent — same request id, reconnected stream.
                // (`Draining` is a refusal, not a loss: no retry.)
                Err(ServeError::Disconnected)
                    if self
                        .reconnect
                        .is_some_and(|p| resubmits < p.max_attempts) =>
                {
                    resubmits += 1;
                    self.send_request(want, self.device, opts, shots)?;
                }
                done => return done,
            }
        }
    }

    /// Classifies one shot over the wire.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::classify_shots`].
    pub fn classify_shot(&mut self, shot: &Shot) -> Result<ShotStates, ServeError> {
        let states = self.classify_shots(std::slice::from_ref(shot))?;
        // `classify_shots` already rejected length mismatches.
        Ok(states[0])
    }
}
