//! Per-connection transport state for the reactor.
//!
//! A [`Conn`] owns one non-blocking [`TcpStream`] plus the two buffers
//! that make readiness-driven I/O work: a [`FrameAssembler`] collecting
//! whatever bytes each readable event delivers, and an outbound byte
//! buffer holding serialized response frames until the socket accepts
//! them. The reactor never blocks on a connection — every read and
//! write here returns at `WouldBlock` — so one loop can multiplex
//! thousands of these.

use crate::chaos::Chaos;
use crate::wire::codec::{FrameAssembler, WireError};
use std::io::{self, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Per-read-call chunk (bounds how far the reassembly buffer grows past
/// the bytes actually received).
const READ_CHUNK: usize = 64 * 1024;

/// Per-event read budget — sized so a whole bulk request frame (~70 KB)
/// drains in one readable event instead of paying a second readiness
/// round trip for its tail. Level-triggered readiness re-reports
/// leftover bytes on the next wait, so the bound keeps one fire-hose
/// peer from starving every other connection without losing data.
const READ_BUDGET: usize = 256 * 1024;

/// What a readable event produced.
pub(crate) enum ReadOutcome {
    /// Bytes (possibly zero, on a spurious wakeup) were buffered; pull
    /// frames out with [`Conn::next_frame`].
    Progress,
    /// The peer closed its write side. Frames already buffered are
    /// still valid; in-flight requests still get answered.
    Eof,
    /// The transport failed — the connection is dead.
    Err,
}

/// One live wire connection: non-blocking stream + reassembly and
/// serialization buffers + lifecycle flags the reactor drives.
#[derive(Debug)]
pub(crate) struct Conn {
    stream: TcpStream,
    assembler: FrameAssembler,
    /// Serialized outbound frames awaiting socket capacity.
    out: Vec<u8>,
    /// Bytes of `out` already written; compacted when it catches up.
    out_pos: usize,
    /// Requests submitted to the fleet but not yet answered. The
    /// connection is kept alive — even past peer EOF or shutdown —
    /// until this reaches zero, so no accepted request is ever dropped.
    pub(crate) in_flight: usize,
    /// When bytes last moved in either direction (idle reaping).
    pub(crate) last_activity: Instant,
    /// The peer closed its write side; stop reading, finish answering.
    pub(crate) peer_eof: bool,
    /// Hang up once the outbound buffer drains and nothing is in
    /// flight: set after a protocol violation (the error frame is the
    /// last thing the peer sees) and at server shutdown.
    pub(crate) closing: bool,
    /// The transport failed; drop the connection without flushing.
    pub(crate) dead: bool,
    /// The `(readable, writable)` interest currently installed in the
    /// epoll set, `None` when the fd is not registered. Owned by the
    /// reactor's interest-sync step; unused by the poll-loop transport.
    pub(crate) reg: Option<(bool, bool)>,
    /// Per-connection fault injection (see [`crate::chaos`]): stalls and
    /// shrinks this connection's reads and writes. `None` in production.
    pub(crate) chaos: Option<Chaos>,
}

impl Conn {
    /// Adopts an accepted stream: non-blocking (the reactor must never
    /// park on one peer) and no-delay (responses are single small
    /// frames; waiting on the peer's delayed ACK would add ~40 ms).
    pub(crate) fn new(stream: TcpStream, now: Instant) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            assembler: FrameAssembler::new(),
            out: Vec::new(),
            out_pos: 0,
            in_flight: 0,
            last_activity: now,
            peer_eof: false,
            closing: false,
            dead: false,
            reg: None,
            chaos: None,
        })
    }

    /// The underlying stream (for fd registration).
    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads one bounded chunk into the assembler. Call on a readable
    /// event; level-triggered readiness re-reports any leftover bytes.
    pub(crate) fn read_ready(&mut self, now: Instant) -> ReadOutcome {
        if self.peer_eof || self.dead {
            return ReadOutcome::Progress;
        }
        // Fault injection: a stalled read skips the event (re-fired by
        // level-triggered readiness / the next sweep), a shrunk budget
        // cuts the event short mid-frame.
        let mut budget = READ_BUDGET;
        if let Some(chaos) = &mut self.chaos {
            if chaos.stall_read() {
                return ReadOutcome::Progress;
            }
            budget = chaos.read_budget(READ_BUDGET);
        }
        // Bytes land straight in the assembler's buffer — no chunk
        // buffer on the stack to copy through.
        let mut total = 0;
        while total < budget {
            let mut want = READ_CHUNK.min(budget - total);
            if let Some(chaos) = &mut self.chaos {
                want = chaos.clamp_read(want);
            }
            match self.assembler.read_from(&mut self.stream, want) {
                Ok(0) => {
                    self.peer_eof = true;
                    if total > 0 {
                        self.last_activity = now;
                    }
                    return ReadOutcome::Eof;
                }
                Ok(n) => total += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return ReadOutcome::Err;
                }
            }
        }
        if total > 0 {
            self.last_activity = now;
        }
        ReadOutcome::Progress
    }

    /// Extracts the next complete inbound frame payload, if any,
    /// borrowed from the reassembly buffer (never copied out).
    ///
    /// # Errors
    ///
    /// [`WireError::FrameTooLarge`] — the stream is poisoned; the
    /// reactor answers with a connection-level error and closes.
    pub(crate) fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        // A closing connection's leftover bytes are not requests.
        if self.closing {
            return Ok(None);
        }
        self.assembler.next_frame_ref()
    }

    /// Queues one outbound frame (length prefix + payload) for writing.
    pub(crate) fn queue_payload(&mut self, payload: &[u8]) {
        // Compact lazily: only once the written prefix outweighs what
        // is still pending, so steady-state writes never memmove much.
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > 4096 && self.out_pos >= self.out.len() / 2 {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        // Frame in place: prefix then payload, no intermediate buffer.
        self.out
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.out.extend_from_slice(payload);
    }

    /// Writes as much of the outbound buffer as the socket accepts.
    pub(crate) fn flush(&mut self, now: Instant) {
        // Fault injection: a stalled write skips this flush opportunity
        // (`EPOLLOUT` interest / the next sweep retries it).
        if let Some(chaos) = &mut self.chaos {
            if self.out_pos < self.out.len() && chaos.stall_write() {
                return;
            }
        }
        while self.out_pos < self.out.len() {
            let mut cap = self.out.len() - self.out_pos;
            if let Some(chaos) = &mut self.chaos {
                cap = chaos.clamp_write(cap);
            }
            match self.stream.write(&self.out[self.out_pos..self.out_pos + cap]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
    }

    /// Whether outbound bytes are waiting on socket capacity (drives
    /// `EPOLLOUT` interest).
    pub(crate) fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Whether the reactor should drop this connection now: transport
    /// dead, or wound down (closing/peer-EOF) with every in-flight
    /// request answered and every response byte flushed.
    pub(crate) fn should_close(&self) -> bool {
        self.dead
            || ((self.closing || self.peer_eof) && self.in_flight == 0 && !self.wants_write())
    }

    /// Whether a draining server is done with this connection: nothing
    /// in the fleet, every response byte flushed, and no buffered
    /// inbound bytes that might still become a frame needing a
    /// [`ServeError::Draining`](crate::ServeError::Draining) answer.
    pub(crate) fn drained(&self) -> bool {
        self.in_flight == 0 && !self.wants_write() && self.assembler.pending() == 0
    }

    /// Whether the connection has been completely quiet — no traffic,
    /// nothing in flight, nothing buffered — for longer than `timeout`.
    pub(crate) fn is_idle(&self, now: Instant, timeout: Duration) -> bool {
        self.in_flight == 0
            && !self.wants_write()
            && self.assembler.pending() == 0
            && now.duration_since(self.last_activity) >= timeout
    }
}
