//! The wire codec: framing, message grammar, and incremental reassembly.
//!
//! Every message is one frame: a `u32` little-endian payload length,
//! then the payload. A payload starts with a fixed header — magic
//! (`0x514B`, `"KQ"`), protocol version, message type, and a `u64`
//! **request id** — followed by the type-specific body:
//!
//! | type | body |
//! |------|------|
//! | `1` request  | device `u16`, priority `u8`, *(v3+)* tenant `u32` + deadline `u64` (µs, `0` = none), *(v4+)* flags `u8` (bit 0 = allow failover), shot count `u32`, shots (per shot: trace count `u16`; per trace: I count `u32`, I samples `f32`×nᵢ, Q count `u32`, Q samples `f32`×n_q) |
//! | `2` response | shot count `u32`, one `u8` five-qubit state mask per shot |
//! | `3` error    | kind `u8` ([`ServeError`] variant), message (`u32` length + UTF-8), *(kind/version-specific extras — see below)* |
//! | `4` health   | *(v4+, header only)* fleet health query |
//! | `5` health report | *(v4+)* shard count `u16`; per shard: health `u8` ([`ShardHealth`] wire code), restarts `u64`, downs `u64` |
//!
//! Version 3 added multi-tenant QoS: requests carry a tenant id and an
//! optional relative deadline, and two error kinds carry typed extras —
//! `Overloaded` (kind 2, v3 frames only) is followed by a `u64`
//! retry-after hint in µs (`0` = no hint), and `UnknownTenant` (kind 8)
//! by the offending tenant id as a `u32`. Version 4 added the
//! supervision story: a request flags byte (bit 0 opts the request into
//! health-aware failover), the fleet health query/report pair, and two
//! error kinds (`Poisoned` = 9, `ShardDown` = 10). Decoding stays
//! **version-tolerant**: v2 frames (no tenant/deadline fields, no
//! `Overloaded` extra) still decode — a v2 request is simply the default
//! tenant with no deadline — and a v3 request simply carries no flags
//! (no failover), so PR-6/7/8 clients keep working unmodified.
//!
//! The request id is what makes **pipelining** work: a client may put
//! many requests in flight on one connection, and the server is free to
//! answer them out of order — each response or per-request error frame
//! echoes its request's id. Clients choose their own ids (the reference
//! client counts up from 1); id `0` ([`CONNECTION_REQ_ID`]) is reserved
//! for connection-level error frames that answer undecodable bytes,
//! which belong to no request. Version 1 of the protocol (PR 5) had no
//! request id and one blocking request in flight per connection; a v1
//! peer gets a typed [`WireError::UnsupportedVersion`] — the
//! version-skew error — instead of silent frame corruption.
//!
//! I and Q carry separate counts so that even a ragged trace (I and Q
//! lengths differing — which intake validation rejects) crosses the
//! wire intact and earns the same typed [`ServeError::InvalidRequest`]
//! an in-process client gets, instead of corrupting the frame.
//!
//! Malformed bytes produce typed [`WireError`]s — bad magic, unsupported
//! version, truncation, oversized frames — and never panic the decoder:
//! every count is bounds-checked against the bytes actually present (and
//! the shot count additionally against [`MAX_REQUEST_SHOTS`]) before
//! anything is allocated, so a hostile frame cannot amplify its own size
//! into a huge allocation.

use crate::server::{Priority, ServeError};
use crate::supervise::{ShardHealth, ShardHealthReport};
use klinq_core::ShotStates;
use klinq_sim::device::NUM_QUBITS;
use klinq_sim::trajectory::StateEvolution;
use klinq_sim::{IqTrace, Shot};
use std::fmt;
use std::io::{self, Read, Write};

/// Frame payload magic: `"KQ"` little-endian.
pub(crate) const MAGIC: u16 = 0x514B;
/// Protocol version this build speaks. Version 2 added the per-message
/// request id (pipelining); version 3 added tenant ids, deadlines, and
/// error-frame extras; version 4 added the request flags byte
/// (failover opt-in), the fleet health query, and the
/// `Poisoned`/`ShardDown` error kinds. Frames older than
/// [`MIN_WIRE_VERSION`] (v1 had no request id) fail with a typed
/// [`WireError::UnsupportedVersion`].
pub(crate) const WIRE_VERSION: u8 = 4;
/// Oldest protocol version this build still decodes. v2 request frames
/// carry no tenant/deadline fields and decode as the default tenant
/// with no deadline.
pub(crate) const MIN_WIRE_VERSION: u8 = 2;
/// Refuse frames larger than this (256 MiB): a garbage length prefix
/// must produce a typed error, not a giant allocation.
pub(crate) const MAX_FRAME: u32 = 256 * 1024 * 1024;
/// Refuse requests declaring more shots than this (1 Mi). Decoded
/// `Shot` structs cost tens of bytes beyond their wire backing (a shot
/// can declare zero traces in two bytes), so without a cap a hostile
/// frame could amplify its size ~50× in allocations before intake
/// validation ever sees it. Far above any sane request — batching
/// budgets sit orders of magnitude below.
pub const MAX_REQUEST_SHOTS: u32 = 1 << 20;

/// Request id reserved for connection-level error frames: protocol
/// errors answer bytes that belong to no particular request.
/// Client-chosen ids start at 1.
pub const CONNECTION_REQ_ID: u64 = 0;

const MSG_REQUEST: u8 = 1;
const MSG_RESPONSE: u8 = 2;
const MSG_ERROR: u8 = 3;
const MSG_HEALTH: u8 = 4;
const MSG_HEALTH_REPORT: u8 = 5;

/// Request flags (v4+): bit 0 opts the request into health-aware
/// failover to a healthy peer shard when its own shard is `Down`.
const FLAG_ALLOW_FAILOVER: u8 = 1;

/// Why bytes could not be read or decoded as a protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The underlying transport failed.
    Io(String),
    /// A configured deadline expired before the operation finished —
    /// connecting, or reading a full frame. After a read timeout the
    /// stream position is unreliable (a partial frame may have been
    /// consumed), so the connection should be discarded.
    Timeout,
    /// The payload does not start with the protocol magic.
    BadMagic(u16),
    /// The peer speaks a protocol version this build does not — the
    /// typed version-skew error (e.g. a PR-5 v1 client against a v2
    /// server).
    UnsupportedVersion(u8),
    /// The header's message type is unknown.
    UnknownMessage(u8),
    /// The frame ended before its declared contents: `expected` bytes
    /// were needed, only `have` were present.
    Truncated {
        /// Bytes the declared contents required.
        expected: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The length prefix exceeds the frame-size bound.
    FrameTooLarge(u32),
    /// The payload parsed but violates the message grammar (bad
    /// priority byte, state mask with non-qubit bits, non-UTF-8 error
    /// text, trailing bytes, …).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(msg) => write!(f, "wire I/O failed: {msg}"),
            Self::Timeout => write!(f, "wire operation timed out"),
            Self::BadMagic(got) => write!(f, "bad frame magic {got:#06x} (expected {MAGIC:#06x})"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported wire protocol version {v} (this build speaks {WIRE_VERSION})")
            }
            Self::UnknownMessage(t) => write!(f, "unknown wire message type {t}"),
            Self::Truncated { expected, have } => {
                write!(f, "truncated frame: needs {expected} bytes, only {have} present")
            }
            Self::FrameTooLarge(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte bound")
            }
            Self::Malformed(msg) => write!(f, "malformed wire message: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One decoded protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Client → server: classify these shots on a device's shard.
    Request {
        /// Client-chosen id (≥ 1) echoed by the matching response.
        req_id: u64,
        /// Device shard the request routes to.
        device: u16,
        /// Scheduling lane (see [`Priority`]).
        priority: Priority,
        /// Tenant the request bills to (index into the server's
        /// [`SchedPolicy`](crate::sched::SchedPolicy) tenant table).
        /// v2 frames decode as `0`, the default tenant.
        tenant: u32,
        /// Relative deadline in microseconds from server receipt; `0`
        /// means no deadline. v2 frames decode as `0`.
        deadline_us: u64,
        /// Whether the request may fail over to a healthy peer shard
        /// when its own shard is `Down` (v4 flags bit 0; older frames
        /// decode as `false`).
        allow_failover: bool,
        /// The shots to classify. Decoded shots carry only traces (the
        /// wire sends no labels); `prepared`/`evolutions` are defaulted.
        shots: Vec<Shot>,
    },
    /// Client → server: report the fleet's per-shard health.
    Health {
        /// Client-chosen id (≥ 1) echoed by the matching report.
        req_id: u64,
    },
    /// Server → client: one [`ShardHealthReport`] per device shard, in
    /// device order.
    HealthReport {
        /// The health query this answers.
        req_id: u64,
        /// Per-shard health, restart and down counts.
        shards: Vec<ShardHealthReport>,
    },
    /// Server → client: one five-qubit state row per requested shot.
    Response {
        /// The request this answers.
        req_id: u64,
        /// Per-shot states, in request order.
        states: Vec<ShotStates>,
    },
    /// Server → client: a request failed with a serve-layer error, or —
    /// with `req_id` [`CONNECTION_REQ_ID`] — the connection itself is
    /// being dropped for a protocol violation.
    Error {
        /// The request this answers, or [`CONNECTION_REQ_ID`].
        req_id: u64,
        /// What went wrong.
        error: ServeError,
    },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn header(msg_type: u8, req_id: u64, out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(WIRE_VERSION);
    out.push(msg_type);
    out.extend_from_slice(&req_id.to_le_bytes());
}

/// Appends `vals` as IEEE-754 little-endian bytes in one pre-sized
/// write. Per-sample `extend_from_slice` pays a capacity check per
/// float, which dominates encoding at millions of samples per request;
/// sizing once lets the chunk loop compile down to a straight copy.
fn push_f32s(out: &mut Vec<u8>, vals: &[f32]) {
    let start = out.len();
    out.resize(start + vals.len() * 4, 0);
    for (chunk, v) in out[start..].chunks_exact_mut(4).zip(vals) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
}

/// Bytes a request for `shots` occupies on the wire (payload only).
fn request_wire_size(shots: &[Shot]) -> usize {
    37 + shots.len() * 2
        + shots.iter().map(|s| s.traces.len()).sum::<usize>() * 8
        + shots
            .iter()
            .flat_map(|s| s.traces.iter())
            .map(|t| t.i.len() + t.q.len())
            .sum::<usize>()
            * 4
}

#[allow(clippy::too_many_arguments)]
fn encode_request_body(
    out: &mut Vec<u8>,
    req_id: u64,
    device: u16,
    priority: Priority,
    tenant: u32,
    deadline_us: u64,
    allow_failover: bool,
    shots: &[Shot],
) {
    header(MSG_REQUEST, req_id, out);
    out.extend_from_slice(&device.to_le_bytes());
    out.push(match priority {
        Priority::Throughput => 0,
        Priority::Latency => 1,
    });
    out.extend_from_slice(&tenant.to_le_bytes());
    out.extend_from_slice(&deadline_us.to_le_bytes());
    out.push(if allow_failover { FLAG_ALLOW_FAILOVER } else { 0 });
    out.extend_from_slice(&(shots.len() as u32).to_le_bytes());
    for shot in shots {
        out.extend_from_slice(&(shot.traces.len() as u16).to_le_bytes());
        for trace in &shot.traces {
            // Separate counts per channel: a ragged trace must survive
            // the trip and be rejected typed at intake, not corrupt the
            // frame.
            out.extend_from_slice(&(trace.i.len() as u32).to_le_bytes());
            push_f32s(out, &trace.i);
            out.extend_from_slice(&(trace.q.len() as u32).to_le_bytes());
            push_f32s(out, &trace.q);
        }
    }
}

/// Encodes a classification request payload for the default tenant with
/// no deadline and no failover (see [`encode_request_opts`] for the
/// full v3/v4 fields).
pub fn encode_request(req_id: u64, device: u16, priority: Priority, shots: &[Shot]) -> Vec<u8> {
    encode_request_opts(req_id, device, priority, 0, 0, false, shots)
}

/// Encodes a classification request payload with the v3 QoS fields —
/// the tenant the request bills to and its relative deadline in
/// microseconds (`0` = none) — and the v4 failover opt-in flag.
pub fn encode_request_opts(
    req_id: u64,
    device: u16,
    priority: Priority,
    tenant: u32,
    deadline_us: u64,
    allow_failover: bool,
    shots: &[Shot],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(request_wire_size(shots));
    encode_request_body(
        &mut out,
        req_id,
        device,
        priority,
        tenant,
        deadline_us,
        allow_failover,
        shots,
    );
    out
}

/// Encodes a classification request as one finished *frame* — length
/// prefix and payload in a single buffer — so the submit path never
/// copies the payload a second time just to frame it (at ~70 KB per
/// bulk request that memcpy was a measurable slice of the wire budget).
/// `out` is cleared and reused: a pipelining client encodes thousands
/// of requests into one scratch buffer instead of allocating each.
///
/// # Errors
///
/// Returns the would-be payload size when it exceeds [`MAX_FRAME`]
/// (leaving `out` empty): refused before any byte is sent, because a
/// `usize` length silently cast to `u32` would wrap for ≥ 4 GiB
/// payloads and desync the peer.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_request_frame_into(
    out: &mut Vec<u8>,
    req_id: u64,
    device: u16,
    priority: Priority,
    tenant: u32,
    deadline_us: u64,
    allow_failover: bool,
    shots: &[Shot],
) -> Result<(), usize> {
    out.clear();
    out.reserve(4 + request_wire_size(shots));
    out.extend_from_slice(&[0u8; 4]);
    encode_request_body(
        out,
        req_id,
        device,
        priority,
        tenant,
        deadline_us,
        allow_failover,
        shots,
    );
    let len = out.len() - 4;
    if len > MAX_FRAME as usize {
        out.clear();
        return Err(len);
    }
    out[..4].copy_from_slice(&(len as u32).to_le_bytes());
    Ok(())
}

/// Encodes a response payload: one five-qubit state mask per shot.
pub fn encode_response(req_id: u64, states: &[ShotStates]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + states.len());
    header(MSG_RESPONSE, req_id, &mut out);
    out.extend_from_slice(&(states.len() as u32).to_le_bytes());
    for row in states {
        let mut mask = 0u8;
        for (qb, &state) in row.iter().enumerate() {
            mask |= (state as u8) << qb;
        }
        out.push(mask);
    }
    out
}

/// Encodes an error payload from a serve-layer error. Kind 2
/// (`Overloaded`) carries its retry-after hint as a trailing `u64` in
/// µs (`0` = no hint); kind 8 (`UnknownTenant`) carries the offending
/// tenant id as a trailing `u32`.
pub fn encode_error(req_id: u64, error: &ServeError) -> Vec<u8> {
    let (kind, msg): (u8, &str) = match error {
        ServeError::Closed => (0, ""),
        ServeError::InvalidRequest(msg) => (1, msg),
        ServeError::Overloaded { .. } => (2, ""),
        ServeError::Protocol(msg) => (3, msg),
        // A server never *originates* a timeout frame (the variant is
        // produced client-side), but the codec stays total so every
        // `ServeError` value survives a round trip.
        ServeError::Timeout => (4, ""),
        ServeError::Disconnected => (5, ""),
        ServeError::Draining => (6, ""),
        ServeError::DeadlineExceeded => (7, ""),
        ServeError::UnknownTenant(_) => (8, ""),
        ServeError::Poisoned => (9, ""),
        ServeError::ShardDown => (10, ""),
    };
    let mut out = Vec::with_capacity(29 + msg.len());
    header(MSG_ERROR, req_id, &mut out);
    out.push(kind);
    out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    out.extend_from_slice(msg.as_bytes());
    match error {
        ServeError::Overloaded { retry_after } => {
            let us = retry_after.map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
            out.extend_from_slice(&us.to_le_bytes());
        }
        ServeError::UnknownTenant(id) => out.extend_from_slice(&id.to_le_bytes()),
        _ => {}
    }
    out
}

/// Encodes a fleet health query (header-only, v4+).
pub fn encode_health(req_id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    header(MSG_HEALTH, req_id, &mut out);
    out
}

/// Encodes a fleet health report: per shard, its health code plus
/// lifetime restart and down counts.
pub fn encode_health_report(req_id: u64, shards: &[ShardHealthReport]) -> Vec<u8> {
    let mut out = Vec::with_capacity(14 + shards.len() * 17);
    header(MSG_HEALTH_REPORT, req_id, &mut out);
    out.extend_from_slice(&(shards.len() as u16).to_le_bytes());
    for shard in shards {
        out.push(shard.health.to_wire());
        out.extend_from_slice(&shard.restarts.to_le_bytes());
        out.extend_from_slice(&shard.downs.to_le_bytes());
    }
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked reader over a frame payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Checks that `count` items of at least `min_bytes` each can still
    /// be backed by the remaining bytes — BEFORE allocating `count`
    /// slots, so a hostile count fails typed instead of allocating.
    fn check_backing(&self, count: usize, min_bytes: usize) -> Result<(), WireError> {
        let needed = count.saturating_mul(min_bytes);
        if needed > self.remaining() {
            return Err(WireError::Truncated {
                expected: self.pos + needed,
                have: self.bytes.len(),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let have = self.bytes.len() - self.pos;
        if n > have {
            return Err(WireError::Truncated {
                expected: self.pos + n,
                have: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads exactly `N` bytes as a fixed-size array. `take` has already
    /// bounds-checked, so the conversion cannot fail in practice; the
    /// `map_err` keeps the decode path free of panicking conversions
    /// (no-panic-serve) instead of asserting the invariant.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?
            .try_into()
            .map_err(|_| WireError::Malformed(format!("internal: take({N}) length invariant")))
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, WireError> {
        // `take` bounds-checks n*4 against the remaining bytes *before*
        // this allocates, so a hostile count cannot force a huge alloc.
        let raw = self.take(n.checked_mul(4).ok_or(WireError::Malformed(
            "sample count overflows".to_string(),
        ))?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

/// Decodes one frame payload into a [`WireMessage`].
///
/// # Errors
///
/// Returns a typed [`WireError`] for any byte sequence that is not a
/// complete well-formed message; never panics, whatever the input.
pub fn decode_message(payload: &[u8]) -> Result<WireMessage, WireError> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    let magic = cur.u16()?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = cur.u8()?;
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion(version));
    }
    let msg_type = cur.u8()?;
    let req_id = cur.u64()?;
    let message = match msg_type {
        MSG_REQUEST => {
            let device = cur.u16()?;
            let priority = match cur.u8()? {
                0 => Priority::Throughput,
                1 => Priority::Latency,
                other => {
                    return Err(WireError::Malformed(format!("unknown priority byte {other}")))
                }
            };
            // Version tolerance: v2 requests carry no QoS fields and
            // mean "default tenant, no deadline"; pre-v4 requests carry
            // no flags and mean "no failover".
            let (tenant, deadline_us) = if version >= 3 {
                (cur.u32()?, cur.u64()?)
            } else {
                (0, 0)
            };
            let allow_failover = if version >= 4 {
                let flags = cur.u8()?;
                if flags & !FLAG_ALLOW_FAILOVER != 0 {
                    return Err(WireError::Malformed(format!(
                        "unknown request flags {flags:#04x}"
                    )));
                }
                flags & FLAG_ALLOW_FAILOVER != 0
            } else {
                false
            };
            let n_shots = cur.u32()?;
            if n_shots > MAX_REQUEST_SHOTS {
                return Err(WireError::Malformed(format!(
                    "request declares {n_shots} shots (limit {MAX_REQUEST_SHOTS})"
                )));
            }
            let n_shots = n_shots as usize;
            // Every declared shot needs at least its trace-count field.
            cur.check_backing(n_shots, 2)?;
            let mut shots = Vec::with_capacity(n_shots);
            for _ in 0..n_shots {
                let n_traces = cur.u16()? as usize;
                // Every declared trace needs at least its two counts.
                cur.check_backing(n_traces, 8)?;
                let mut traces = Vec::with_capacity(n_traces);
                for _ in 0..n_traces {
                    let n_i = cur.u32()? as usize;
                    let i = cur.f32s(n_i)?;
                    let n_q = cur.u32()? as usize;
                    let q = cur.f32s(n_q)?;
                    traces.push(IqTrace { i, q });
                }
                // The wire carries no labels — classification needs none.
                shots.push(Shot {
                    prepared: [false; NUM_QUBITS],
                    evolutions: [StateEvolution::Ground; NUM_QUBITS],
                    traces,
                });
            }
            WireMessage::Request {
                req_id,
                device,
                priority,
                tenant,
                deadline_us,
                allow_failover,
                shots,
            }
        }
        MSG_RESPONSE => {
            let n_shots = cur.u32()? as usize;
            let masks = cur.take(n_shots)?;
            let states = masks
                .iter()
                .map(|&mask| {
                    if mask >= 1 << NUM_QUBITS {
                        return Err(WireError::Malformed(format!(
                            "state mask {mask:#04x} sets non-qubit bits"
                        )));
                    }
                    Ok(std::array::from_fn(|qb| mask & (1 << qb) != 0))
                })
                .collect::<Result<Vec<ShotStates>, _>>()?;
            WireMessage::Response { req_id, states }
        }
        MSG_ERROR => {
            let kind = cur.u8()?;
            let len = cur.u32()? as usize;
            let msg = String::from_utf8(cur.take(len)?.to_vec())
                .map_err(|_| WireError::Malformed("error text is not UTF-8".to_string()))?;
            let error = match kind {
                0 => ServeError::Closed,
                1 => ServeError::InvalidRequest(msg),
                2 => {
                    // The retry-after extra exists only on v3 frames; a
                    // v2 `Overloaded` simply carries no hint.
                    let retry_after = if version >= 3 {
                        match cur.u64()? {
                            0 => None,
                            us => Some(std::time::Duration::from_micros(us)),
                        }
                    } else {
                        None
                    };
                    ServeError::Overloaded { retry_after }
                }
                3 => ServeError::Protocol(msg),
                4 => ServeError::Timeout,
                // Like `Timeout`, `Disconnected` is normally produced
                // client-side; the codec stays total regardless.
                5 => ServeError::Disconnected,
                6 => ServeError::Draining,
                7 => ServeError::DeadlineExceeded,
                8 => ServeError::UnknownTenant(cur.u32()?),
                9 => ServeError::Poisoned,
                10 => ServeError::ShardDown,
                other => {
                    return Err(WireError::Malformed(format!("unknown error kind {other}")))
                }
            };
            WireMessage::Error { req_id, error }
        }
        MSG_HEALTH => WireMessage::Health { req_id },
        MSG_HEALTH_REPORT => {
            let n_shards = cur.u16()? as usize;
            // Every declared shard needs its full 17-byte record.
            cur.check_backing(n_shards, 17)?;
            let mut shards = Vec::with_capacity(n_shards);
            for _ in 0..n_shards {
                let code = cur.u8()?;
                let health = ShardHealth::from_wire(code).ok_or_else(|| {
                    WireError::Malformed(format!("unknown shard health code {code}"))
                })?;
                let restarts = cur.u64()?;
                let downs = cur.u64()?;
                shards.push(ShardHealthReport {
                    health,
                    restarts,
                    downs,
                });
            }
            WireMessage::HealthReport { req_id, shards }
        }
        other => return Err(WireError::UnknownMessage(other)),
    };
    if cur.pos != payload.len() {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after the message",
            payload.len() - cur.pos
        )));
    }
    Ok(message)
}

// ---------------------------------------------------------------------
// Framing over a byte stream
// ---------------------------------------------------------------------

/// Builds one length-prefixed frame (prefix + payload, contiguous).
///
/// The reactor appends this to a connection's write buffer; blocking
/// paths hand it straight to `write_all`. Keeping prefix and payload in
/// a single buffer matters even there: a separate prefix write puts
/// every exchange into the classic write-write-read pattern, where
/// Nagle holds the payload until the peer's delayed ACK (~40 ms)
/// acknowledges the prefix segment — observed as a ~7 K shots/s wire
/// ceiling before this was fused.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one length-prefixed frame and flushes.
///
/// # Errors
///
/// Propagates the transport's I/O error; a payload over the frame-size
/// bound is refused with [`io::ErrorKind::InvalidInput`] before any
/// byte is sent — a `usize` length silently cast to `u32` would wrap
/// for ≥ 4 GiB payloads and desync the peer.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte bound",
                payload.len()
            ),
        ));
    }
    w.write_all(&frame(payload))?;
    w.flush()
}

/// Reads one length-prefixed frame payload. Returns `Ok(None)` on a
/// clean end-of-stream at a frame boundary (the peer closed between
/// messages).
///
/// # Errors
///
/// [`WireError::Truncated`] if the stream ends mid-frame,
/// [`WireError::FrameTooLarge`] for an oversized length prefix,
/// [`WireError::Timeout`] when a configured read deadline expires
/// (after which the stream position is unreliable — discard the
/// connection), and [`WireError::Io`] for other transport failures.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf)? {
        0 => return Ok(None),
        4 => {}
        got => {
            return Err(WireError::Truncated {
                expected: 4,
                have: got,
            })
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_exact_or_eof(r, &mut payload)?;
    if got != payload.len() {
        return Err(WireError::Truncated {
            expected: payload.len(),
            have: got,
        });
    }
    Ok(Some(payload))
}

/// Fills `buf` from the reader, returning how many bytes arrived before
/// end-of-stream (a short count means EOF, not an error).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // A blocking socket with a read deadline (SO_RCVTIMEO)
            // reports expiry as WouldBlock on unix, TimedOut on windows.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(WireError::Timeout)
            }
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(got)
}

// ---------------------------------------------------------------------
// Incremental reassembly
// ---------------------------------------------------------------------

/// Reassembles length-prefixed frames from a non-blocking byte stream.
///
/// The reactor reads whatever bytes a readiness event delivers and
/// [`extend`](Self::extend)s the assembler with them; complete frames
/// come back out of [`next_frame`](Self::next_frame) one at a time,
/// however the bytes were fragmented in transit. The oversized-length
/// check runs as soon as a prefix is visible, so a hostile peer cannot
/// grow the buffer toward a 256 MiB frame before being refused.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    /// Backing storage. Its `len()` is the *initialized* high-water
    /// mark, not the data length — [`read_from`](Self::read_from) hands
    /// `r` pre-zeroed spare room and bumps `filled`, so steady-state
    /// reads never pay a fresh `resize` memset per chunk.
    buf: Vec<u8>,
    /// Bytes of `buf` holding received data ([`consumed`](field@Self::consumed)`..filled`
    /// is what frames are extracted from).
    filled: usize,
    /// Bytes before this offset were already returned as frames; they
    /// are compacted away lazily so per-frame extraction never memmoves
    /// the whole buffer.
    consumed: usize,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compacts consumed bytes away before the buffer grows: wholesale
    /// when everything was consumed, by memmove once the dead prefix
    /// outweighs a page — so steady-state extraction never shifts the
    /// whole buffer per frame.
    fn compact(&mut self) {
        if self.consumed == self.filled {
            self.filled = 0;
            self.consumed = 0;
        } else if self.consumed > 4096 {
            self.buf.copy_within(self.consumed..self.filled, 0);
            self.filled -= self.consumed;
            self.consumed = 0;
        }
    }

    /// Makes sure `extra` initialized bytes exist past `filled`.
    fn reserve_filled(&mut self, extra: usize) {
        if self.buf.len() < self.filled + extra {
            self.buf.resize(self.filled + extra, 0);
        }
    }

    /// Appends bytes read from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.reserve_filled(bytes.len());
        self.buf[self.filled..self.filled + bytes.len()].copy_from_slice(bytes);
        self.filled += bytes.len();
    }

    /// Reads up to `max` bytes from `r` straight into the reassembly
    /// buffer — the read path lands bytes where the frames are
    /// extracted from, with no intermediate chunk buffer to copy
    /// through.
    ///
    /// # Errors
    ///
    /// Propagates `r`'s error verbatim (the buffer is unchanged then).
    pub fn read_from<R: Read>(&mut self, r: &mut R, max: usize) -> io::Result<usize> {
        self.compact();
        self.reserve_filled(max);
        let result = r.read(&mut self.buf[self.filled..self.filled + max]);
        if let Ok(n) = &result {
            self.filled += n;
        }
        result
    }

    /// Bytes buffered but not yet returned as a frame.
    pub fn pending(&self) -> usize {
        self.filled - self.consumed
    }

    /// Extracts the next complete frame payload, `Ok(None)` if more
    /// bytes are needed.
    ///
    /// # Errors
    ///
    /// [`WireError::FrameTooLarge`] when a visible length prefix exceeds
    /// the frame bound — the stream is poisoned and the connection must
    /// be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        Ok(self.next_frame_ref()?.map(<[u8]>::to_vec))
    }

    /// Like [`next_frame`](Self::next_frame), returning the payload as
    /// a borrow of the internal buffer. The reactor decodes straight
    /// from this slice, so bulk request payloads are never copied out
    /// of the reassembly buffer first.
    ///
    /// # Errors
    ///
    /// Same contract as [`next_frame`](Self::next_frame).
    pub fn next_frame_ref(&mut self) -> Result<Option<&[u8]>, WireError> {
        let avail = &self.buf[self.consumed..self.filled];
        if avail.len() < 4 {
            return Ok(None);
        }
        let Ok(len_bytes) = <[u8; 4]>::try_from(&avail[..4]) else {
            // `avail.len() >= 4` was checked above; keep the reassembly
            // path typed rather than panicking on the invariant.
            return Err(WireError::Malformed("internal: frame-length slice".into()));
        };
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME {
            return Err(WireError::FrameTooLarge(len));
        }
        let len = len as usize;
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let start = self.consumed + 4;
        self.consumed = start + len;
        Ok(Some(&self.buf[start..start + len]))
    }
}
