//! The readiness-driven reactor serving the wire protocol.
//!
//! PR 5's wire front end parked one std thread per TCP connection with
//! one blocking request in flight each — fine for a 4-client bench,
//! fatal for thousands of connections. This module replaces it with a
//! single event-loop thread multiplexing every connection:
//!
//! - **Epoll transport** (Linux): the loop parks in `epoll_wait` (via
//!   the thin syscall shim in `vendor/epoll`) and only touches sockets
//!   the kernel reports ready. An `eventfd` waker lets fleet collector
//!   threads push completed results into the loop from outside.
//! - **Poll-loop transport** (portable fallback): the same connection
//!   state machine driven by attempting non-blocking I/O on every
//!   connection in a bounded-sleep sweep. Slower under thousands of
//!   idle connections, but it builds and tests anywhere
//!   `set_nonblocking` exists. Selected automatically where epoll is
//!   unsupported, or explicitly via [`WireConfig::transport`] /
//!   `KLINQ_WIRE_TRANSPORT=fallback`.
//!
//! Requests decoded from a connection are submitted through the
//! in-process [`ReadoutClient::submit_with_priority`] path with a
//! completion callback, so wire traffic coalesces into the same
//! micro-batches as in-process traffic and results stay
//! bitwise-identical to `classify_shots_on` — only the transport
//! changed. Completions arrive out of order (different devices,
//! different batch closings); each is matched back to its connection
//! and request id.
//!
//! The connection budget ([`WireConfig::max_connections`]) applies
//! **accept backpressure**: at budget, the listener is deregistered
//! from the readiness set (a level-triggered listener would otherwise
//! busy-wake the loop) and re-registered as soon as a connection
//! closes; waiting peers queue in the kernel accept backlog instead of
//! being churned through. Idle connections are reaped after
//! [`WireConfig::idle_timeout`]. Both are observable through the
//! `wire_*` fields of [`ServeStats`].

use crate::chaos::{self, Chaos};
use crate::server::{ReadoutClient, ServeError, ServeStats};
use crate::shard::ShardedReadoutServer;
use crate::wire::codec::{
    decode_message, encode_error, encode_health_report, encode_response, WireError, WireMessage,
    CONNECTION_REQ_ID,
};
use crate::wire::conn::{Conn, ReadOutcome};
use klinq_core::ShotStates;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[cfg(target_os = "linux")]
use std::os::fd::AsRawFd;

/// Readiness token of the accept socket.
const LISTENER_TOKEN: u64 = 0;
/// Readiness token of the completion waker (eventfd).
const WAKER_TOKEN: u64 = 1;
/// First token handed to an accepted connection. Tokens are monotonic
/// and never reused, so a stale completion can never be delivered to a
/// *different* connection that recycled its slot.
const FIRST_CONN_TOKEN: u64 = 2;

/// How long the poll-loop transport sleeps when a sweep made no
/// progress. Bounds idle CPU burn without adding meaningful latency
/// (the linger windows it feeds are of the same order).
const POLL_IDLE_SLEEP: Duration = Duration::from_micros(300);

/// How long a draining reactor keeps reading peers. During the grace
/// window, new connections and new requests get typed
/// [`ServeError::Draining`] answers; after it, connections stop being
/// read (in-flight replies still deliver) so a stalled or chatty peer
/// cannot hold shutdown open forever.
const DRAIN_GRACE: Duration = Duration::from_millis(500);

/// Which readiness mechanism drives the reactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Pick per platform — epoll where supported, the poll-loop
    /// fallback elsewhere — unless the `KLINQ_WIRE_TRANSPORT`
    /// environment variable (`"epoll"` or `"fallback"`) overrides.
    #[default]
    Auto,
    /// The epoll event loop (Linux only; [`WireServer::start_with`]
    /// fails with [`io::ErrorKind::Unsupported`] elsewhere).
    Epoll,
    /// The portable non-blocking sweep. Works everywhere; CI runs the
    /// wire tests under it too so both paths stay green.
    PollLoop,
}

impl Transport {
    /// Resolves `Auto` against platform support and the
    /// `KLINQ_WIRE_TRANSPORT` override.
    fn resolve(self) -> io::Result<Transport> {
        match self {
            Transport::Epoll => {
                if epoll::SUPPORTED {
                    Ok(Transport::Epoll)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "epoll transport requested on a platform without epoll",
                    ))
                }
            }
            Transport::PollLoop => Ok(Transport::PollLoop),
            Transport::Auto => match std::env::var("KLINQ_WIRE_TRANSPORT") {
                Ok(v) if v == "epoll" => Transport::Epoll.resolve(),
                Ok(v) if v == "fallback" || v == "poll" || v == "poll-loop" => {
                    Ok(Transport::PollLoop)
                }
                Ok(v) => Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("unknown KLINQ_WIRE_TRANSPORT value {v:?} (expected \"epoll\" or \"fallback\")"),
                )),
                Err(_) => Ok(if epoll::SUPPORTED {
                    Transport::Epoll
                } else {
                    Transport::PollLoop
                }),
            },
        }
    }
}

/// Tuning knobs for a [`WireServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConfig {
    /// Connection budget: at this many open connections the listener
    /// stops accepting (peers queue in the kernel backlog) until one
    /// closes. Sized for thousands — each open connection costs one fd
    /// plus its buffers, not a thread.
    pub max_connections: usize,
    /// Reap connections completely quiet for this long (`None` keeps
    /// them forever). Protects the budget from peers that connect and
    /// walk away.
    pub idle_timeout: Option<Duration>,
    /// Which readiness mechanism drives the loop.
    pub transport: Transport,
    /// Deterministic fault injection (see [`crate::chaos`]): stalls and
    /// shrinks this server's socket reads/writes and defers completion
    /// wakeups, all correctness-transparently. `None` (production)
    /// falls back to the `KLINQ_CHAOS_SEED` environment variable, so CI
    /// can chaos-run entire suites without touching their code; unset
    /// both and injection is off.
    pub chaos_seed: Option<u64>,
}

impl Default for WireConfig {
    /// 4096-connection budget, 60 s idle reaping, auto transport, chaos
    /// off (unless `KLINQ_CHAOS_SEED` is set).
    fn default() -> Self {
        Self {
            max_connections: 4096,
            idle_timeout: Some(Duration::from_secs(60)),
            transport: Transport::Auto,
            chaos_seed: None,
        }
    }
}

/// Lifetime counters the reactor maintains, snapshot through
/// [`WireServer::stats`].
#[derive(Debug, Default)]
pub(crate) struct WireCounters {
    accepted: AtomicU64,
    reaped: AtomicU64,
    open: AtomicU64,
    peak: AtomicU64,
}

/// One finished request on its way back into the event loop.
struct Completion {
    token: u64,
    req_id: u64,
    result: Result<Vec<ShotStates>, ServeError>,
}

/// The cross-thread completion queue: fleet collector threads push via
/// the submission callback, the reactor drains in its loop. The waker
/// (epoll transport only) interrupts `epoll_wait` so a completion is
/// picked up immediately rather than at the next timeout.
pub(crate) struct Completions {
    queue: Mutex<Vec<Completion>>,
    #[cfg(target_os = "linux")]
    waker: Option<epoll::EventFd>,
    /// Whether a wake is already pending at the reactor: collector
    /// threads completing a burst of requests then pay one eventfd
    /// syscall for the burst, not one per completion.
    #[cfg(target_os = "linux")]
    notified: AtomicBool,
}

impl std::fmt::Debug for Completions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completions").finish_non_exhaustive()
    }
}

impl Completions {
    /// The queue mutex is held only across a `Vec` push or take, so a
    /// poisoned lock (some holder panicked) cannot have left the queue
    /// half-mutated — recover the guard instead of cascading the panic
    /// into every fleet collector thread that completes a request.
    fn queue(&self) -> std::sync::MutexGuard<'_, Vec<Completion>> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn push(&self, completion: Completion) {
        self.queue().push(completion);
        self.wake();
    }

    /// Interrupts a parked `epoll_wait` (no-op for the poll-loop
    /// transport, whose bounded sleep re-checks on its own). Coalesced:
    /// only the first wake since the reactor last drained pays the
    /// eventfd syscall.
    pub(crate) fn wake(&self) {
        #[cfg(target_os = "linux")]
        if let Some(waker) = &self.waker {
            if !self.notified.swap(true, Ordering::AcqRel) {
                waker.notify();
            }
        }
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue())
    }

    #[cfg(target_os = "linux")]
    fn drain_waker(&self) {
        // Re-arm before draining: a push racing past this point either
        // sees `false` and notifies (a harmless spurious wakeup) or is
        // already in the queue this iteration drains.
        self.notified.store(false, Ordering::Release);
        if let Some(waker) = &self.waker {
            waker.drain();
        }
    }
}

/// The readiness mechanism a running reactor holds.
enum Driver {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    PollLoop,
}

/// The event-loop state, owned by the reactor thread.
struct Reactor {
    listener: Option<TcpListener>,
    clients: Vec<ReadoutClient>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    driver: Driver,
    completions: Arc<Completions>,
    counters: Arc<WireCounters>,
    stop: Arc<AtomicBool>,
    max_connections: usize,
    idle_timeout: Option<Duration>,
    /// Whether the listener currently sits in the epoll set (accept
    /// backpressure toggles this).
    listener_registered: bool,
    last_reap: Instant,
    /// Shutdown observed: graceful drain in progress (see
    /// [`Self::enter_shutdown`]).
    draining: bool,
    /// When the drain's read-grace window ends (see [`DRAIN_GRACE`]).
    drain_deadline: Option<Instant>,
    /// The grace window ended: connections are no longer read.
    drain_forced: bool,
    /// Reactor-level fault injection: defers completion drains and
    /// seeds each accepted connection's own fault stream.
    chaos: Option<Chaos>,
}

impl Reactor {
    fn run(mut self) {
        match self.driver {
            #[cfg(target_os = "linux")]
            Driver::Epoll(_) => self.run_epoll(),
            Driver::PollLoop => self.run_poll(),
        }
    }

    #[cfg(target_os = "linux")]
    fn run_epoll(&mut self) {
        let mut events: Vec<epoll::Event> = Vec::new();
        let mut dirty: Vec<u64> = Vec::new();
        loop {
            if self.stop.load(Ordering::Acquire) && !self.draining {
                self.enter_shutdown(Instant::now());
            }
            if self.draining {
                if self.conns.is_empty() {
                    break;
                }
                self.drain_tick(Instant::now());
            }
            // Reaping (and drain progress after shutdown) needs a
            // bounded park; a reactor with neither can sleep until an
            // fd or the waker fires.
            let timeout = if self.draining {
                Some(Duration::from_millis(50))
            } else {
                self.idle_timeout.map(reap_interval)
            };
            {
                let Driver::Epoll(ep) = &self.driver else {
                    // klinq-lint: allow(no-panic-serve) run_epoll is only entered after resolve() selected the epoll driver
                    unreachable!("run_epoll requires the epoll driver")
                };
                if ep.wait(&mut events, timeout).is_err() {
                    // epoll_wait failing (beyond EINTR, retried in the
                    // shim) is not actionable; back off instead of
                    // spinning on the error.
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            }
            let now = Instant::now();
            dirty.clear();
            let mut accept_pending = false;
            for &event in &events {
                match event.token {
                    LISTENER_TOKEN => accept_pending = true,
                    WAKER_TOKEN => self.completions.drain_waker(),
                    token => {
                        if event.readable {
                            self.conn_readable(token, now);
                        }
                        if event.writable {
                            if let Some(conn) = self.conns.get_mut(&token) {
                                conn.flush(now);
                            }
                        }
                        dirty.push(token);
                    }
                }
            }
            dirty.extend(self.process_completions(now));
            if accept_pending {
                self.accept_ready(now);
            }
            dirty.sort_unstable();
            dirty.dedup();
            for &token in &dirty {
                self.settle_conn(token);
            }
            self.reap_idle(now);
            self.sync_listener_interest();
        }
    }

    fn run_poll(&mut self) {
        let mut tokens: Vec<u64> = Vec::new();
        loop {
            if self.stop.load(Ordering::Acquire) && !self.draining {
                self.enter_shutdown(Instant::now());
            }
            if self.draining {
                if self.conns.is_empty() {
                    break;
                }
                self.drain_tick(Instant::now());
            }
            let now = Instant::now();
            let mut progress = false;
            progress |= !self.process_completions(now).is_empty();
            progress |= self.accept_ready(now);
            // Sweep every connection: attempt a read (frames get
            // processed inside), then a flush if bytes are pending.
            tokens.clear();
            tokens.extend(self.conns.keys().copied());
            for &token in &tokens {
                progress |= self.conn_readable(token, now);
                if let Some(conn) = self.conns.get_mut(&token) {
                    if conn.wants_write() {
                        conn.flush(now);
                    }
                }
                self.settle_conn(token);
            }
            self.reap_idle(now);
            if !progress {
                std::thread::sleep(POLL_IDLE_SLEEP);
            }
        }
    }

    /// Shutdown transition: start the graceful drain. The listener
    /// stays open during the grace window so late connectors get a
    /// typed [`ServeError::Draining`] answer instead of a refused
    /// socket, and existing connections keep being read so their late
    /// requests get the same typed answer. Every in-flight request is
    /// still answered and every reply byte flushed — shutdown drains,
    /// it never drops. Once the grace window ends ([`DRAIN_GRACE`]),
    /// [`Self::drain_tick`] forces the wind-down.
    fn enter_shutdown(&mut self, now: Instant) {
        self.draining = true;
        self.drain_deadline = Some(now + DRAIN_GRACE);
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.flush(now);
            }
            self.settle_conn(token);
        }
    }

    /// Drain progress: once the grace window ends, stop listening and
    /// stop reading peers (`closing` connections ignore further inbound
    /// bytes) so a stalled or chatty peer cannot hold shutdown open.
    /// In-flight replies still deliver — `should_close` keeps a closing
    /// connection alive until its answers are flushed.
    fn drain_tick(&mut self, now: Instant) {
        if self.drain_forced {
            return;
        }
        let Some(deadline) = self.drain_deadline else {
            return;
        };
        if now < deadline {
            return;
        }
        self.drain_forced = true;
        self.listener = None;
        self.listener_registered = false;
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.closing = true;
                conn.flush(now);
            }
            self.settle_conn(token);
        }
    }

    /// Accepts as many queued peers as the budget allows. Returns
    /// whether any connection was accepted. A draining server still
    /// accepts (within budget) so it can answer each late connector
    /// with a typed [`ServeError::Draining`] frame and hang up.
    fn accept_ready(&mut self, now: Instant) -> bool {
        let mut any = false;
        loop {
            if self.conns.len() >= self.max_connections {
                break;
            }
            let Some(listener) = &self.listener else { break };
            match listener.accept() {
                Ok((stream, _)) => {
                    let Ok(mut conn) = Conn::new(stream, now) else {
                        continue;
                    };
                    let token = self.next_token;
                    self.next_token += 1;
                    if let Some(chaos) = &self.chaos {
                        conn.chaos = Some(chaos.derive(token));
                    }
                    if self.draining {
                        // Too late: say so with a connection-level
                        // error frame, then wind the connection down.
                        conn.queue_payload(&encode_error(
                            CONNECTION_REQ_ID,
                            &ServeError::Draining,
                        ));
                        conn.closing = true;
                        conn.flush(now);
                    }
                    self.conns.insert(token, conn);
                    if self.draining {
                        self.settle_conn(token);
                    } else {
                        self.register_conn(token);
                    }
                    self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    let open = self.conns.len() as u64;
                    self.counters.open.store(open, Ordering::Relaxed);
                    self.counters.peak.fetch_max(open, Ordering::Relaxed);
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Persistent accept errors (EMFILE, …) must not
                    // busy-spin the loop; back off and let closing
                    // connections free their fds.
                    std::thread::sleep(Duration::from_millis(10));
                    break;
                }
            }
        }
        any
    }

    /// Installs a fresh connection's initial read interest (epoll).
    fn register_conn(&mut self, token: u64) {
        #[cfg(target_os = "linux")]
        if let Driver::Epoll(ep) = &self.driver {
            if let Some(conn) = self.conns.get_mut(&token) {
                if ep.add(conn.stream().as_raw_fd(), token, true, false).is_ok() {
                    conn.reg = Some((true, false));
                } else {
                    conn.dead = true;
                }
            }
        }
        #[cfg(not(target_os = "linux"))]
        let _ = token;
    }

    /// Reads from a connection and processes every complete frame the
    /// bytes yield. Returns whether any frame was processed.
    fn conn_readable(&mut self, token: u64, now: Instant) -> bool {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            match conn.read_ready(now) {
                ReadOutcome::Progress | ReadOutcome::Eof => {}
                ReadOutcome::Err => return false,
            }
        }
        let mut any = false;
        loop {
            // Decode inside the connection borrow: the frame payload is
            // a borrow of the reassembly buffer (bulk requests are never
            // copied out of it), and `decode_message` produces the owned
            // message the dispatch below needs.
            let decoded = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return any;
                };
                match conn.next_frame() {
                    Ok(Some(payload)) => Ok(decode_message(payload)),
                    Ok(None) => return any,
                    Err(e) => Err(e),
                }
            };
            match decoded {
                Ok(message) => {
                    any = true;
                    self.handle_message(token, message, now);
                }
                Err(e) => {
                    // Oversized length prefix: the stream is poisoned.
                    // Say why, then hang up.
                    self.conn_protocol_error(token, e.to_string(), now);
                    return any;
                }
            }
        }
    }

    /// Routes one decoded inbound message: requests are submitted to
    /// the fleet with a completion callback; anything else is a
    /// protocol violation answered with a connection-level error.
    fn handle_message(
        &mut self,
        token: u64,
        message: Result<WireMessage, WireError>,
        now: Instant,
    ) {
        match message {
            Ok(WireMessage::Request {
                req_id,
                device,
                priority,
                tenant,
                deadline_us,
                allow_failover,
                shots,
            }) => {
                if req_id == CONNECTION_REQ_ID {
                    self.conn_protocol_error(
                        token,
                        format!("request id {CONNECTION_REQ_ID} is reserved"),
                        now,
                    );
                    return;
                }
                if self.draining {
                    // New work during the drain grace window gets a
                    // typed per-request answer; requests already in the
                    // fleet keep draining normally.
                    self.answer(token, req_id, &Err(ServeError::Draining), now);
                    return;
                }
                match self.clients.get(device as usize) {
                    Some(client) => {
                        let completions = Arc::clone(&self.completions);
                        let mut opts = crate::sched::RequestOptions::new()
                            .priority(priority)
                            .tenant(crate::sched::TenantId(tenant))
                            .failover(allow_failover);
                        if deadline_us > 0 {
                            opts = opts.deadline(Duration::from_micros(deadline_us));
                        }
                        // An unknown/oversized tenant id fails *here*,
                        // synchronously, and lands in the `Err` arm
                        // below — a typed per-request `UnknownTenant`
                        // error frame, never a connection hang-up.
                        let submitted = client.submit_opts(opts, shots, move |result| {
                            completions.push(Completion {
                                token,
                                req_id,
                                result,
                            });
                        });
                        match submitted {
                            Ok(()) => {
                                if let Some(conn) = self.conns.get_mut(&token) {
                                    conn.in_flight += 1;
                                }
                            }
                            // Shed (`Overloaded`) or fleet-gone
                            // (`Closed`): per-request, the connection
                            // stays up.
                            Err(e) => self.answer(token, req_id, &Err(e), now),
                        }
                    }
                    None => {
                        let devices = self.clients.len();
                        self.answer(
                            token,
                            req_id,
                            &Err(ServeError::InvalidRequest(format!(
                                "unknown device {device}: this fleet serves {devices} devices"
                            ))),
                            now,
                        );
                    }
                }
            }
            // Health queries are answered synchronously from the shard
            // monitors — no collector round trip — so fleet health stays
            // visible even while shards are down or the server drains.
            Ok(WireMessage::Health { req_id }) => {
                if req_id == CONNECTION_REQ_ID {
                    self.conn_protocol_error(
                        token,
                        format!("request id {CONNECTION_REQ_ID} is reserved"),
                        now,
                    );
                    return;
                }
                let shards: Vec<_> = self
                    .clients
                    .iter()
                    .map(ReadoutClient::health_report)
                    .collect();
                let payload = encode_health_report(req_id, &shards);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.queue_payload(&payload);
                    conn.flush(now);
                }
            }
            // A peer that sends undecodable payloads (or messages in
            // the wrong direction) cannot be trusted to frame correctly
            // either: answer with the typed error, then hang up.
            Ok(_) => {
                self.conn_protocol_error(token, "expected a request message".to_string(), now)
            }
            Err(e) => self.conn_protocol_error(token, e.to_string(), now),
        }
    }

    /// Queues one per-request reply frame and flushes opportunistically.
    fn answer(
        &mut self,
        token: u64,
        req_id: u64,
        result: &Result<Vec<ShotStates>, ServeError>,
        now: Instant,
    ) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let payload = match result {
            Ok(states) => encode_response(req_id, states),
            Err(e) => encode_error(req_id, e),
        };
        conn.queue_payload(&payload);
        conn.flush(now);
    }

    /// Answers a protocol violation with a connection-level error frame
    /// and marks the connection closing (hang up once it flushes).
    fn conn_protocol_error(&mut self, token: u64, msg: String, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.queue_payload(&encode_error(
            CONNECTION_REQ_ID,
            &ServeError::Protocol(msg),
        ));
        conn.closing = true;
        conn.flush(now);
    }

    /// Delivers every queued completion to its connection. Returns the
    /// tokens touched (for interest settling).
    fn process_completions(&mut self, now: Instant) -> Vec<u64> {
        // Fault injection: a delayed wakeup. Re-arming the wake before
        // returning makes the deferral a delay, never a hang — the loop
        // comes straight back around and draws again.
        if let Some(chaos) = &mut self.chaos {
            if chaos.defer_completions() {
                self.completions.wake();
                return Vec::new();
            }
        }
        let batch = self.completions.drain();
        let mut touched = Vec::with_capacity(batch.len());
        for completion in batch {
            // The connection may have died while its request was in the
            // fleet; the result is simply dropped.
            if let Some(conn) = self.conns.get_mut(&completion.token) {
                conn.in_flight = conn.in_flight.saturating_sub(1);
                touched.push(completion.token);
                self.answer(completion.token, completion.req_id, &completion.result, now);
            }
        }
        touched
    }

    /// Closes a connection that finished winding down, or re-syncs its
    /// epoll interest with its buffer state.
    fn settle_conn(&mut self, token: u64) {
        let should_close = match self.conns.get(&token) {
            // A draining server also closes connections that are simply
            // *done* — nothing in flight, nothing buffered either way —
            // without waiting for the peer to hang up first.
            Some(conn) => conn.should_close() || (self.draining && conn.drained()),
            None => return,
        };
        if should_close {
            self.close_conn(token);
        } else {
            self.sync_interest(token);
        }
    }

    /// Brings the epoll registration in line with what the connection
    /// can currently make progress on. A wound-down read side must drop
    /// its read interest — a level-triggered EOF would otherwise wake
    /// the loop forever — and a connection waiting only on fleet
    /// completions leaves the set entirely (the waker covers it).
    fn sync_interest(&mut self, token: u64) {
        #[cfg(target_os = "linux")]
        if let Driver::Epoll(ep) = &self.driver {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let desired = (
                !conn.peer_eof && !conn.closing && !conn.dead,
                conn.wants_write() && !conn.dead,
            );
            let fd = conn.stream().as_raw_fd();
            match (conn.reg, desired) {
                (None, (false, false)) => {}
                (None, (r, w)) if ep.add(fd, token, r, w).is_ok() => {
                    conn.reg = Some(desired);
                }
                (Some(_), (false, false)) => {
                    let _ = ep.delete(fd);
                    conn.reg = None;
                }
                (Some(current), (r, w)) if current != desired && ep.modify(fd, token, r, w).is_ok() => {
                    conn.reg = Some(desired);
                }
                _ => {}
            }
        }
        #[cfg(not(target_os = "linux"))]
        let _ = token;
    }

    /// Removes a connection (dropping the stream closes its fd, which
    /// also evicts any epoll registration).
    fn close_conn(&mut self, token: u64) {
        if self.conns.remove(&token).is_some() {
            self.counters
                .open
                .store(self.conns.len() as u64, Ordering::Relaxed);
        }
    }

    /// Reaps connections idle past the timeout, on a coarse cadence.
    fn reap_idle(&mut self, now: Instant) {
        let Some(timeout) = self.idle_timeout else {
            return;
        };
        if now.duration_since(self.last_reap) < reap_interval(timeout) {
            return;
        }
        self.last_reap = now;
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.is_idle(now, timeout))
            .map(|(&token, _)| token)
            .collect();
        for token in idle {
            self.counters.reaped.fetch_add(1, Ordering::Relaxed);
            self.close_conn(token);
        }
        self.counters
            .open
            .store(self.conns.len() as u64, Ordering::Relaxed);
    }

    /// Accept backpressure: the listener sits in the epoll set exactly
    /// when there is budget to accept. (The poll-loop transport gets
    /// the same policy for free — `accept_ready` checks the budget.)
    fn sync_listener_interest(&mut self) {
        #[cfg(target_os = "linux")]
        if let Driver::Epoll(ep) = &self.driver {
            let Some(listener) = &self.listener else {
                return;
            };
            let want = self.conns.len() < self.max_connections;
            if want && !self.listener_registered {
                if ep
                    .add(listener.as_raw_fd(), LISTENER_TOKEN, true, false)
                    .is_ok()
                {
                    self.listener_registered = true;
                }
            } else if !want && self.listener_registered {
                let _ = ep.delete(listener.as_raw_fd());
                self.listener_registered = false;
            }
        }
    }
}

/// How often the reap scan runs for a given idle timeout: fine-grained
/// enough to reap promptly, coarse enough that a busy loop is not
/// scanning thousands of connections every iteration.
fn reap_interval(timeout: Duration) -> Duration {
    (timeout / 4).clamp(Duration::from_millis(10), Duration::from_millis(250))
}

/// A TCP front end over a [`ShardedReadoutServer`]'s device fleet: one
/// reactor thread multiplexing every connection (see the module docs).
///
/// Decoded requests go through ordinary in-process [`ReadoutClient`]s,
/// so wire traffic coalesces with in-process traffic in the same
/// micro-batches and the responses are bitwise-identical.
#[derive(Debug)]
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    completions: Arc<Completions>,
    counters: Arc<WireCounters>,
    reactor: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Starts serving the fleet on `listener` with [`WireConfig`]
    /// defaults. The sharded server keeps its ownership — shut the wire
    /// front end down first, then the fleet (a fleet shut down first
    /// simply answers wire requests with [`ServeError::Closed`]).
    ///
    /// # Errors
    ///
    /// Propagates listener/reactor setup failures.
    pub fn start(fleet: &ShardedReadoutServer, listener: TcpListener) -> io::Result<Self> {
        Self::start_with(fleet, listener, WireConfig::default())
    }

    /// Starts serving with explicit [`WireConfig`] knobs.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::Unsupported`] when
    /// [`Transport::Epoll`] is requested on a platform without epoll,
    /// [`io::ErrorKind::InvalidInput`] for an unrecognized
    /// `KLINQ_WIRE_TRANSPORT` value, and otherwise propagates
    /// listener/epoll/thread setup failures.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_connections` is zero (a server that can
    /// never accept is a configuration bug, not a runtime state).
    pub fn start_with(
        fleet: &ShardedReadoutServer,
        listener: TcpListener,
        config: WireConfig,
    ) -> io::Result<Self> {
        assert!(
            config.max_connections > 0,
            "max_connections must be non-zero"
        );
        let clients: Vec<ReadoutClient> = (0..fleet.devices()).map(|d| fleet.client(d)).collect();
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let transport = config.transport.resolve()?;
        let (driver, completions, listener_registered) = match transport {
            #[cfg(target_os = "linux")]
            Transport::Epoll => {
                let ep = epoll::Epoll::new()?;
                let waker = epoll::EventFd::new()?;
                ep.add(listener.as_raw_fd(), LISTENER_TOKEN, true, false)?;
                ep.add(waker.as_raw_fd(), WAKER_TOKEN, true, false)?;
                (
                    Driver::Epoll(ep),
                    Arc::new(Completions {
                        queue: Mutex::new(Vec::new()),
                        waker: Some(waker),
                        notified: AtomicBool::new(false),
                    }),
                    true,
                )
            }
            #[cfg(not(target_os = "linux"))]
            // klinq-lint: allow(no-panic-serve) resolve() rejects epoll off-Linux before construction reaches this arm
            Transport::Epoll => unreachable!("resolve() rejects epoll off-Linux"),
            _ => (
                Driver::PollLoop,
                Arc::new(Completions {
                    queue: Mutex::new(Vec::new()),
                    #[cfg(target_os = "linux")]
                    waker: None,
                    #[cfg(target_os = "linux")]
                    notified: AtomicBool::new(false),
                }),
                false,
            ),
        };
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(WireCounters::default());
        let chaos_seed = config.chaos_seed.or_else(chaos::env_seed);
        let reactor = Reactor {
            listener: Some(listener),
            clients,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            driver,
            completions: Arc::clone(&completions),
            counters: Arc::clone(&counters),
            stop: Arc::clone(&stop),
            max_connections: config.max_connections,
            idle_timeout: config.idle_timeout,
            listener_registered,
            last_reap: Instant::now(),
            draining: false,
            drain_deadline: None,
            drain_forced: false,
            chaos: chaos_seed.map(Chaos::new),
        };
        let handle = std::thread::Builder::new()
            .name("klinq-wire-reactor".into())
            .spawn(move || reactor.run())?;
        Ok(Self {
            addr,
            stop,
            completions,
            counters,
            reactor: Some(handle),
        })
    }

    /// The address the server accepts connections on (useful with a
    /// `127.0.0.1:0` listener, whose port the OS assigns).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the wire front end's connection counters, carried
    /// in the `wire_*` fields of [`ServeStats`] (the coalescing fields
    /// stay zero here — [`merge`](ServeStats::merge) with the fleet's
    /// stats for the full picture).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            wire_accepted: self.counters.accepted.load(Ordering::Relaxed),
            wire_reaped: self.counters.reaped.load(Ordering::Relaxed),
            wire_open: self.counters.open.load(Ordering::Relaxed),
            wire_peak_open: self.counters.peak.load(Ordering::Relaxed),
            ..ServeStats::default()
        }
    }

    /// Stops accepting and winds every connection down. Idle
    /// connections close immediately; a connection with a request in
    /// flight still gets its reply once the fleet answers (the reactor
    /// keeps draining in the background — a blocking wait here would
    /// deadlock on batches that only the fleet's own shutdown can
    /// close, e.g. unfilled batches under a huge linger).
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        let Some(handle) = self.reactor.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        self.completions.wake();
        // Give the reactor a moment to finish cleanly (the common case:
        // nothing in flight), then detach — it exits on its own once
        // the last in-flight reply is delivered.
        let deadline = Instant::now() + Duration::from_millis(250);
        while !handle.is_finished() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        if handle.is_finished() {
            if let Err(payload) = handle.join() {
                // A dead reactor is a bug, not a quiet close: re-raise
                // its panic on the owner — unless teardown is already
                // unwinding, where a second panic would abort.
                if !std::thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.close();
    }
}
