//! Reactor-transport behaviors the codec tests can't see: request
//! pipelining with out-of-order completion matched by id (bitwise-equal
//! to direct classification on both backends and both transports),
//! client read timeouts, the connection budget's accept backpressure,
//! idle-connection reaping, wire-level version skew, and a
//! 256-connection pipelined load on one reactor thread.

use klinq_core::testkit;
use klinq_core::{Backend, BatchDiscriminator, KlinqSystem};
use klinq_serve::{
    wire, Priority, ServeConfig, ServeError, ShardedReadoutServer, Transport, WireClient,
    WireConfig, WireServer,
};
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::ops::Range;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The shared smoke system (disk-cached across the workspace's test
/// binaries, see `klinq_core::testkit`).
fn system() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| {
        Arc::new(testkit::cached_smoke_system(Path::new(env!(
            "CARGO_TARGET_TMPDIR"
        ))))
    }))
}

/// Both readiness mechanisms, so every scenario below exercises the
/// epoll loop *and* the portable poll-loop fallback in one run. `Auto`
/// additionally honours the `KLINQ_WIRE_TRANSPORT` override CI uses.
fn transports() -> Vec<Transport> {
    vec![Transport::PollLoop, Transport::Auto]
}

#[test]
fn a_server_that_accepts_but_never_replies_times_out_typed() {
    // The kernel completes the TCP handshake from the backlog, so a
    // listener that never calls accept() stands in for a wedged server:
    // the client's request vanishes into the void and only the read
    // timeout can get control back.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let mut client =
        WireClient::connect_timeout(&addr, 0, Duration::from_secs(5)).expect("handshake");
    client
        .set_read_timeout(Some(Duration::from_millis(200)))
        .expect("set read timeout");
    let req_id = client.submit(&[]).expect("request buffered by the kernel");
    assert_eq!(req_id, 1, "client request ids start at 1");
    let t0 = Instant::now();
    match client.recv_response() {
        Err(ServeError::Timeout) => {}
        other => panic!("expected ServeError::Timeout, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "timeout did not fire promptly: {:?}",
        t0.elapsed()
    );
    // The blocking wrapper surfaces the same typed error.
    let mut blocking =
        WireClient::connect_timeout(&addr, 0, Duration::from_secs(5)).expect("handshake");
    blocking
        .set_read_timeout(Some(Duration::from_millis(200)))
        .expect("set read timeout");
    let shot = system().test_data().shot(0).clone();
    match blocking.classify_shot(&shot) {
        Err(ServeError::Timeout) => {}
        other => panic!("expected ServeError::Timeout, got {other:?}"),
    }
}

#[test]
fn pipelined_requests_complete_out_of_order_and_match_direct() {
    // One connection, many frames in flight, responses matched by id:
    // throughput requests parked on device 0's lingering batch must NOT
    // block latency requests to device 1 from answering first, and every
    // response must be bitwise-identical to direct classification.
    let sys = system();
    let shots = sys.test_data().shots().to_vec();
    let park: [Range<usize>; 3] = [0..5, 5..9, 9..16];
    let overtake: [Range<usize>; 3] = [16..20, 20..27, 27..30];
    let flush: Range<usize> = 30..33;
    for backend in Backend::ALL {
        let direct =
            BatchDiscriminator::new(sys.discriminators()).classify_shots_on(backend, &shots);
        for transport in transports() {
            let fleet = ShardedReadoutServer::start(
                vec![system(), system()],
                ServeConfig {
                    backend,
                    // Long enough that parked responses can only arrive
                    // via the expediting latency request below — which
                    // makes the out-of-order assertion deterministic.
                    max_linger: Duration::from_secs(15),
                    max_batch_shots: usize::MAX,
                    ..ServeConfig::default()
                },
            );
            let server = WireServer::start_with(
                &fleet,
                TcpListener::bind("127.0.0.1:0").unwrap(),
                WireConfig {
                    transport,
                    ..WireConfig::default()
                },
            )
            .expect("start wire server");
            let mut client = WireClient::connect(server.local_addr(), 0).unwrap();
            let mut expected: HashMap<u64, Range<usize>> = HashMap::new();
            let mut parked_ids = Vec::new();
            for r in &park {
                let id = client
                    .submit_to(0, Priority::Throughput, &shots[r.clone()])
                    .unwrap();
                expected.insert(id, r.clone());
                parked_ids.push(id);
            }
            let mut overtaking_ids = Vec::new();
            for r in &overtake {
                let id = client
                    .submit_to(1, Priority::Latency, &shots[r.clone()])
                    .unwrap();
                expected.insert(id, r.clone());
                overtaking_ids.push(id);
            }
            assert_eq!(client.in_flight(), park.len() + overtake.len());
            // The device-1 responses arrive while device 0 still
            // lingers: completion order differs from submission order.
            for _ in &overtake {
                let (id, result) = client.recv_response().expect("transport alive");
                assert!(
                    overtaking_ids.contains(&id),
                    "device-0 request {id} answered while its batch should be parked \
                     ({backend}, {transport:?})"
                );
                let r = expected.remove(&id).expect("each id answered once");
                assert_eq!(result.expect("served"), direct[r], "{backend}, {transport:?}");
            }
            // A latency request to device 0 expedites the parked batch;
            // the three parked responses and this one drain in any order.
            let flush_id = client
                .submit_to(0, Priority::Latency, &shots[flush.clone()])
                .unwrap();
            expected.insert(flush_id, flush.clone());
            for _ in 0..=park.len() {
                let (id, result) = client.recv_response().expect("transport alive");
                let r = expected.remove(&id).expect("each id answered once");
                assert_eq!(result.expect("served"), direct[r], "{backend}, {transport:?}");
            }
            assert!(expected.is_empty());
            assert_eq!(client.in_flight(), 0);
            server.shutdown();
            let stats = fleet.shutdown();
            assert_eq!(stats.requests, 7, "{backend}, {transport:?}");
        }
    }
}

#[test]
fn the_connection_budget_applies_accept_backpressure() {
    let sys = system();
    let shot = sys.test_data().shot(0).clone();
    let direct = BatchDiscriminator::new(sys.discriminators()).classify_shot(&shot);
    for transport in transports() {
        let fleet = ShardedReadoutServer::start(vec![system()], ServeConfig::default());
        let server = WireServer::start_with(
            &fleet,
            TcpListener::bind("127.0.0.1:0").unwrap(),
            WireConfig {
                max_connections: 2,
                idle_timeout: None,
                transport,
                ..WireConfig::default()
            },
        )
        .unwrap();
        let mut c1 = WireClient::connect(server.local_addr(), 0).unwrap();
        let mut c2 = WireClient::connect(server.local_addr(), 0).unwrap();
        assert_eq!(c1.classify_shot(&shot).unwrap(), direct);
        assert_eq!(c2.classify_shot(&shot).unwrap(), direct);
        // The third connection handshakes (kernel backlog) but sits
        // unaccepted at the budget: its request gets no answer.
        let mut c3 = WireClient::connect(server.local_addr(), 0).unwrap();
        c3.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
        c3.submit(std::slice::from_ref(&shot)).unwrap();
        match c3.recv_response() {
            Err(ServeError::Timeout) => {}
            other => panic!("budget ignored: third connection got {other:?}"),
        }
        // A slot frees; the reactor resumes accepting, reads the
        // buffered request, and answers it.
        drop(c1);
        c3.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let (_, result) = c3.recv_response().expect("accepted after a slot freed");
        assert_eq!(result.expect("served"), vec![direct]);
        let stats = server.stats();
        assert_eq!(stats.wire_accepted, 3, "{transport:?}");
        assert_eq!(stats.wire_peak_open, 2, "{transport:?}: budget breached");
        server.shutdown();
        fleet.shutdown();
    }
}

#[test]
fn idle_connections_are_reaped_under_the_configured_timeout() {
    let sys = system();
    let shot = sys.test_data().shot(1).clone();
    let fleet = ShardedReadoutServer::start(vec![system()], ServeConfig::default());
    let server = WireServer::start_with(
        &fleet,
        TcpListener::bind("127.0.0.1:0").unwrap(),
        WireConfig {
            idle_timeout: Some(Duration::from_millis(200)),
            ..WireConfig::default()
        },
    )
    .unwrap();
    let mut idle = WireClient::connect(server.local_addr(), 0).unwrap();
    idle.classify_shot(&shot).expect("served before going idle");
    std::thread::sleep(Duration::from_millis(1200));
    let stats = server.stats();
    assert_eq!(stats.wire_reaped, 1, "quiet connection not reaped");
    assert_eq!(stats.wire_open, 0);
    // The reaped client transparently reconnects on its next call —
    // the server hung up, but the address still serves...
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(
        idle.classify_shot(&shot).expect("reconnected after the reap"),
        BatchDiscriminator::new(sys.discriminators()).classify_shot(&shot)
    );
    // ...and with reconnection disabled, the hang-up surfaces as a
    // typed `Disconnected` instead (never a panic or a silent hang).
    let mut doomed = WireClient::connect(server.local_addr(), 0).unwrap();
    doomed.set_reconnect(None);
    doomed.classify_shot(&shot).expect("served before going idle");
    std::thread::sleep(Duration::from_millis(1200));
    assert_eq!(doomed.classify_shot(&shot), Err(ServeError::Disconnected));
    // ...while fresh connections serve as ever.
    let mut fresh = WireClient::connect(server.local_addr(), 0).unwrap();
    assert_eq!(
        fresh.classify_shot(&shot).expect("server alive"),
        BatchDiscriminator::new(sys.discriminators()).classify_shot(&shot)
    );
    server.shutdown();
    fleet.shutdown();
}

#[test]
fn wire_version_skew_earns_a_typed_error_frame() {
    use std::io::Write;
    let fleet = ShardedReadoutServer::start(vec![system()], ServeConfig::default());
    let server = WireServer::start(&fleet, TcpListener::bind("127.0.0.1:0").unwrap()).unwrap();
    // A protocol-v1 peer (PR 5: no request ids) sends a well-formed v1
    // request; the server must answer with the version-skew error on the
    // connection lane, not misparse the body or hang up silently.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut v1 = Vec::new();
    v1.extend_from_slice(&0x514Bu16.to_le_bytes());
    v1.push(1); // version 1
    v1.push(1); // request
    v1.extend_from_slice(&0u16.to_le_bytes()); // device
    v1.push(0); // priority
    v1.extend_from_slice(&0u32.to_le_bytes()); // zero shots
    raw.write_all(&(v1.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&v1).unwrap();
    let payload = wire::read_frame(&mut raw)
        .expect("server answers before hanging up")
        .expect("an error frame, not a silent close");
    match wire::decode_message(&payload) {
        Ok(wire::WireMessage::Error {
            req_id: wire::CONNECTION_REQ_ID,
            error: ServeError::Protocol(msg),
        }) => assert!(msg.contains("version"), "{msg}"),
        other => panic!("expected a version-skew error frame, got {other:?}"),
    }
    server.shutdown();
    fleet.shutdown();
}

#[test]
fn the_reactor_sustains_256_pipelined_connections() {
    // 256 concurrent connections, each with two requests in flight,
    // multiplexed by ONE reactor thread — no thread-per-connection. A
    // single test thread drives them all; pipelining is what makes that
    // possible (submit everything, then drain).
    const CONNS: usize = 256;
    const REQS_PER_CONN: usize = 2;
    const SLICE: usize = 2;
    let sys = system();
    let shots = sys.test_data().shots().to_vec();
    let direct = BatchDiscriminator::new(sys.discriminators()).classify_shots(&shots);
    let fleet = ShardedReadoutServer::start(
        vec![system()],
        ServeConfig {
            max_pending: 4096,
            ..ServeConfig::default()
        },
    );
    let server = WireServer::start(&fleet, TcpListener::bind("127.0.0.1:0").unwrap()).unwrap();
    let mut clients = Vec::with_capacity(CONNS);
    for _ in 0..CONNS {
        clients.push(WireClient::connect(server.local_addr(), 0).unwrap());
    }
    let start = |c: usize, j: usize| (c * REQS_PER_CONN + j) * SLICE % (shots.len() - SLICE);
    let mut expected: Vec<HashMap<u64, usize>> = Vec::with_capacity(CONNS);
    for (c, client) in clients.iter_mut().enumerate() {
        let mut ids = HashMap::new();
        for j in 0..REQS_PER_CONN {
            let s = start(c, j);
            let id = client.submit(&shots[s..s + SLICE]).expect("submitted");
            ids.insert(id, s);
        }
        expected.push(ids);
    }
    for (client, ids) in clients.iter_mut().zip(&mut expected) {
        client.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        for _ in 0..REQS_PER_CONN {
            let (id, result) = client.recv_response().expect("response under load");
            let s = ids.remove(&id).expect("each id answered exactly once");
            assert_eq!(result.expect("served"), direct[s..s + SLICE]);
        }
        assert!(ids.is_empty());
    }
    let stats = server.stats();
    assert_eq!(stats.wire_peak_open, CONNS as u64);
    assert_eq!(stats.wire_accepted, CONNS as u64);
    drop(clients);
    server.shutdown();
    let fleet_stats = fleet.shutdown();
    assert_eq!(fleet_stats.requests, (CONNS * REQS_PER_CONN) as u64);
}
