//! Blue/green hot swap, canary lane, and drift monitor, end to end:
//! every response must be bitwise-identical to exactly one model
//! version — never a mix — across arbitrary swap timing, and the
//! running fidelity estimates must actually detect a degraded model.
//!
//! The "other" model everywhere below is the smoke system with its
//! students' output layers negated (`testkit::inverted_variant`): a
//! real, loadable `KlinqSystem` whose decisions observably differ from
//! the primary's, so a response tells us exactly which model served it.

use klinq_core::testkit;
use klinq_core::{BatchDiscriminator, KlinqSystem, ShotStates};
use klinq_serve::{Priority, ReadoutServer, ServeConfig, ServeError, ShardedReadoutServer};
use proptest::prelude::*;
use std::path::Path;
use std::sync::mpsc;
use std::sync::{Arc, Barrier, OnceLock};
use std::time::Duration;

/// The shared smoke system (disk-cached across the workspace's test
/// binaries, see `klinq_core::testkit`).
fn system() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| {
        Arc::new(testkit::cached_smoke_system(Path::new(env!(
            "CARGO_TARGET_TMPDIR"
        ))))
    }))
}

/// The distinguishable alternate model (output layers negated).
fn variant() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| Arc::new(testkit::inverted_variant(&system()))))
}

fn direct(sys: &KlinqSystem, shots: &[klinq_sim::Shot]) -> Vec<ShotStates> {
    BatchDiscriminator::new(sys.discriminators()).classify_shots(shots)
}

#[test]
fn swap_model_switches_decisions_and_bumps_the_version() {
    let shots = system().test_data().shots().to_vec();
    let on_a = direct(&system(), &shots);
    let on_b = direct(&variant(), &shots);
    assert_ne!(on_a, on_b, "the variant must be distinguishable");

    let server = ReadoutServer::start(system(), ServeConfig::default());
    assert_eq!(server.model_version(), 1);
    let client = server.client();
    assert_eq!(client.classify_shots(shots.clone()).unwrap(), on_a);

    let v2 = server.swap_model(variant()).expect("swap accepted");
    assert_eq!(v2, 2);
    assert_eq!(server.model_version(), 2);
    assert_eq!(client.classify_shots(shots.clone()).unwrap(), on_b);

    // And back: blue/green rollback is the same move.
    let v3 = server.swap_model(system()).expect("swap back accepted");
    assert_eq!(v3, 3);
    assert_eq!(client.classify_shots(shots).unwrap(), on_a);

    let stats = server.shutdown();
    assert_eq!(stats.model_swaps, 2);
    assert_eq!(stats.model_version, 3);
}

#[test]
fn sharded_swap_touches_only_its_device() {
    let shots = system().test_data().shots()[..6].to_vec();
    let on_a = direct(&system(), &shots);
    let on_b = direct(&variant(), &shots);
    let fleet = ShardedReadoutServer::start(vec![system(), system()], ServeConfig::default());
    assert_eq!(fleet.swap_model(1, variant()).unwrap(), 2);
    assert_eq!(fleet.client(0).classify_shots(shots.clone()).unwrap(), on_a);
    assert_eq!(fleet.client(1).classify_shots(shots.clone()).unwrap(), on_b);
    assert_eq!(fleet.model_version(0), 1);
    assert_eq!(fleet.model_version(1), 2);
    fleet.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The atomicity property: requests submitted before a swap command
    /// are answered by the old model, requests submitted after it by
    /// the new one — for any request sizes, any batch budget and
    /// linger, and any number of swap rounds. The intake channel is
    /// FIFO and controls apply strictly between micro-batches, so the
    /// boundary is exact, not approximate.
    #[test]
    fn every_response_is_exactly_one_models_work_across_swaps(
        sizes in prop::collection::vec(1usize..7, 1..10),
        rounds in 1usize..4,
        budget in 4usize..40,
        linger_us in 0u64..3000,
    ) {
        let primary = system();
        let alt = variant();
        let all_shots = primary.test_data().shots();
        let server = ReadoutServer::start(
            system(),
            ServeConfig {
                max_batch_shots: budget,
                max_linger: Duration::from_micros(linger_us),
                ..ServeConfig::default()
            },
        );
        let client = server.client();
        let (done_tx, done_rx) = mpsc::channel();
        let mut expected = Vec::new();
        let mut submitted = 0usize;
        // Alternate: a burst of requests, then a swap, then a burst…
        // Round r is served by model (r % 2): primary on even, the
        // inverted variant on odd.
        for round in 0..rounds {
            let model: &KlinqSystem = if round % 2 == 0 { &primary } else { &alt };
            for (i, &size) in sizes.iter().enumerate() {
                let start = (round * 13 + i * 5) % (all_shots.len() - size);
                let shots = all_shots[start..start + size].to_vec();
                expected.push(direct(model, &shots));
                let tag = submitted;
                let tx = done_tx.clone();
                client
                    .submit_with_priority(Priority::Throughput, shots, move |result| {
                        let _ = tx.send((tag, result));
                    })
                    .expect("intake open");
                submitted += 1;
            }
            // The swap queues behind everything submitted above (FIFO)
            // and returns only once applied.
            let next = if round % 2 == 0 {
                Arc::clone(&alt)
            } else {
                Arc::clone(&primary)
            };
            server.swap_model(next).expect("swap accepted");
        }
        let mut got = vec![None; submitted];
        for _ in 0..submitted {
            let (tag, result) = done_rx.recv().expect("collector alive");
            prop_assert!(got[tag].is_none(), "request {} answered twice", tag);
            got[tag] = Some(result.expect("request served"));
        }
        for (tag, (got, want)) in got.into_iter().zip(&expected).enumerate() {
            prop_assert_eq!(
                got.as_ref(),
                Some(want),
                "request {} crossed its swap boundary", tag
            );
        }
        server.shutdown();
    }
}

#[test]
fn concurrent_swaps_never_produce_a_mixed_response() {
    // Clients hammer classification from several threads while the
    // main thread flips the model back and forth. There is no ordering
    // to assert between a racing client and the swap — but every single
    // response must be *entirely* one model's work: bitwise-equal to
    // the primary's direct result or to the variant's, never a blend.
    let sys = system();
    let all_shots = sys.test_data().shots();
    let server = Arc::new(ReadoutServer::start(
        system(),
        ServeConfig {
            max_linger: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    ));
    let n_threads = 4;
    let rounds = 30;
    let barrier = Arc::new(Barrier::new(n_threads + 1));
    let mut workers = Vec::new();
    for t in 0..n_threads {
        let shots = all_shots[t * 4..t * 4 + 4].to_vec();
        let on_a = direct(&system(), &shots);
        let on_b = direct(&variant(), &shots);
        assert_ne!(on_a, on_b, "thread {t}'s slice must distinguish the models");
        let client = server.client();
        let barrier = Arc::clone(&barrier);
        workers.push(std::thread::spawn(move || {
            barrier.wait();
            let mut seen = [false; 2];
            for _ in 0..rounds {
                let got = client.classify_shots(shots.clone()).expect("server alive");
                if got == on_a {
                    seen[0] = true;
                } else if got == on_b {
                    seen[1] = true;
                } else {
                    panic!("response matches neither model: a mixed batch leaked");
                }
            }
            seen
        }));
    }
    barrier.wait();
    for flip in 0..10 {
        let next = if flip % 2 == 0 { variant() } else { system() };
        server.swap_model(next).expect("swap accepted");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut seen_any = [false; 2];
    for worker in workers {
        let seen = worker.join().expect("worker survived");
        seen_any[0] |= seen[0];
        seen_any[1] |= seen[1];
    }
    // With 10 flips across 30 rounds per thread, both versions serve.
    assert!(
        seen_any[0] && seen_any[1],
        "swaps never took effect under load: {seen_any:?}"
    );
    let stats = server.stats();
    assert_eq!(stats.model_swaps, 10);
    assert_eq!(stats.model_version, 11);
}

#[test]
fn an_identity_swap_is_accepted_and_keeps_serving() {
    // Swapping a model for an identically-trained one is the no-op
    // rollout; it must bump the version and keep answering.
    let server = ReadoutServer::start(system(), ServeConfig::default());
    assert_eq!(server.swap_model(system()).expect("swap accepted"), 2);
    let shot = system().test_data().shot(0).clone();
    server.client().classify_shot(shot).expect("still serving");
    server.shutdown();
}

#[test]
fn canary_lane_splits_traffic_and_reports_divergence() {
    let sys = system();
    let slice = sys.test_data().shots()[..4].to_vec();
    let on_a = direct(&system(), &slice);
    let on_b = direct(&variant(), &slice);
    assert_ne!(on_a, on_b);

    let server = ReadoutServer::start(system(), ServeConfig::default());
    let client = server.client();
    // Nothing staged yet: promotion is a typed error, abort a no-op.
    assert!(matches!(
        server.promote_canary(),
        Err(ServeError::InvalidRequest(_))
    ));
    assert!(!server.abort_canary().unwrap());

    server.stage_canary(variant(), 0.5).expect("canary staged");
    // Latency requests each close their own micro-batch, so the
    // fractional accumulator routes exactly every second batch to the
    // candidate: primary, canary, primary, canary…
    let mut canary_served = 0;
    let n = 8;
    for _ in 0..n {
        let got = client
            .classify_shots_with_priority(Priority::Latency, slice.clone())
            .expect("served");
        if got == on_b {
            canary_served += 1;
        } else {
            assert_eq!(got, on_a, "response matches neither model");
        }
    }
    assert_eq!(canary_served, n / 2, "0.5 canary fraction must route half");

    let stats = server.stats();
    assert_eq!(stats.canary_batches, n / 2);
    assert_eq!(stats.canary_shots, (n / 2) * slice.len() as u64);
    // The inverted candidate disagrees with the primary somewhere.
    assert!(stats.canary_divergent_shots > 0, "divergence not observed");
    let divergence = stats.canary_divergence().expect("canary traffic flowed");
    assert!(
        divergence > 0.0 && divergence <= 1.0,
        "divergence out of range: {divergence}"
    );

    // Promotion is a hot swap: all traffic moves to the candidate.
    let v2 = server.promote_canary().expect("promotion accepted");
    assert_eq!(v2, 2);
    for _ in 0..3 {
        assert_eq!(client.classify_shots(slice.clone()).unwrap(), on_b);
    }
    // The lane is empty again.
    assert!(matches!(
        server.promote_canary(),
        Err(ServeError::InvalidRequest(_))
    ));
    server.shutdown();
}

#[test]
fn canary_fraction_bounds_are_enforced_client_side() {
    let server = ReadoutServer::start(system(), ServeConfig::default());
    for bad in [-0.1, 1.1, f64::NAN] {
        assert!(matches!(
            server.stage_canary(variant(), bad),
            Err(ServeError::InvalidRequest(_))
        ));
    }
    // Staging then aborting leaves everything on the primary.
    server.stage_canary(variant(), 1.0).expect("staged");
    assert!(server.abort_canary().unwrap());
    let shots = system().test_data().shots()[..3].to_vec();
    assert_eq!(
        server.client().classify_shots(shots.clone()).unwrap(),
        direct(&system(), &shots)
    );
    server.shutdown();
}

#[test]
fn a_staged_canary_survives_a_primary_swap() {
    let slice = system().test_data().shots()[..3].to_vec();
    let on_b = direct(&variant(), &slice);
    let server = ReadoutServer::start(system(), ServeConfig::default());
    // Canary takes *all* batches, so the candidate's identity is
    // directly observable.
    server.stage_canary(variant(), 1.0).expect("staged");
    server.swap_model(system()).expect("primary swapped under canary");
    assert_eq!(
        server.client().classify_shots(slice).unwrap(),
        on_b,
        "the staged canary was lost in the swap"
    );
    server.shutdown();
}

#[test]
fn drift_monitor_tracks_excited_fraction_and_calibration_fidelity() {
    let shots = system().test_data().shots().to_vec();
    let n = shots.len() as u64;

    // Healthy model: calibration shots score against their prepared
    // states, so fidelity is the discriminator's real assignment
    // fidelity — high on the smoke system.
    let server = ReadoutServer::start(system(), ServeConfig::default());
    let client = server.client();
    client
        .classify_calibration_shots(shots.clone())
        .expect("calibration lane served");
    let healthy = server.stats();
    assert_eq!(healthy.calib_shots, n);
    assert_eq!(healthy.drift_shots, n, "calibration traffic also feeds drift");
    let healthy_fid: Vec<f64> = (0..klinq_serve::NUM_QUBITS)
        .map(|qb| healthy.calibration_fidelity(qb).expect("calib data present"))
        .collect();
    for (qb, fid) in healthy_fid.iter().enumerate() {
        assert!(
            (0.0..=1.0).contains(fid),
            "qubit {qb} fidelity out of range: {fid}"
        );
        let (p10, p01) = healthy.confusion(qb);
        assert!(p10.is_some() && p01.is_some(), "confusion needs both preparations");
        assert!(healthy.excited_fraction(qb).is_some());
    }
    server.shutdown();

    // Degraded model (decisions inverted): the same calibration
    // traffic scores far worse — this is the signal an operator alarms
    // on before staging a recalibrated candidate.
    let degraded_server = ReadoutServer::start(variant(), ServeConfig::default());
    degraded_server
        .client()
        .classify_calibration_shots(shots)
        .expect("calibration lane served");
    let degraded = degraded_server.stats();
    let mean_healthy: f64 = healthy_fid.iter().sum::<f64>() / healthy_fid.len() as f64;
    let mean_degraded: f64 = (0..klinq_serve::NUM_QUBITS)
        .map(|qb| degraded.calibration_fidelity(qb).expect("calib data present"))
        .sum::<f64>()
        / klinq_serve::NUM_QUBITS as f64;
    assert!(
        mean_degraded < mean_healthy,
        "drift monitor failed to rank the inverted model below the healthy one: \
         {mean_degraded} vs {mean_healthy}"
    );
    degraded_server.shutdown();
}
