//! Wire-codec properties: encode→decode identity for every message
//! type (request ids included), typed errors — never panics — for
//! truncated or corrupted bytes, and incremental reassembly equivalence
//! however the stream is fragmented.

use klinq_serve::wire::codec::encode_request_opts;
use klinq_serve::wire::{
    decode_message, encode_error, encode_request, encode_response, read_frame, FrameAssembler,
    WireError, WireMessage,
};
use klinq_serve::{Priority, ServeError, Shot, ShotStates};
use std::time::Duration;
use klinq_sim::dataset::IqTrace;
use klinq_sim::device::NUM_QUBITS;
use klinq_sim::trajectory::StateEvolution;
use proptest::prelude::*;

/// Builds an unlabeled shot from per-trace sample vectors (the wire
/// carries no labels, so decoded shots default them — mirror that here
/// so round-trip equality is exact). I and Q carry distinct values so a
/// codec that swapped or aliased the channels would fail the round trip.
fn shot_from_samples(trace_samples: Vec<Vec<f32>>) -> Shot {
    Shot {
        prepared: [false; NUM_QUBITS],
        evolutions: [StateEvolution::Ground; NUM_QUBITS],
        traces: trace_samples
            .into_iter()
            .map(|i| {
                let q = i.iter().map(|v| v * 0.5 - 1.0).collect();
                IqTrace { i, q }
            })
            .collect(),
    }
}

fn shots_strategy() -> impl Strategy<Value = Vec<Shot>> {
    prop::collection::vec(
        prop::collection::vec(
            prop::collection::vec(-1.0e3f32..1.0e3, 0..12),
            0..6,
        )
        .prop_map(shot_from_samples),
        0..5,
    )
}

fn states_strategy() -> impl Strategy<Value = Vec<ShotStates>> {
    prop::collection::vec(
        (0u32..32).prop_map(|mask| std::array::from_fn(|qb| mask & (1 << qb) != 0)),
        0..20,
    )
}

proptest! {
    #[test]
    fn request_round_trips_exactly(
        shots in shots_strategy(),
        req_id in any::<u64>(),
        device in 0u32..200,
        latency in prop::bool::ANY,
        tenant in any::<u32>(),
        deadline_us in any::<u64>(),
        failover in prop::bool::ANY
    ) {
        let device = device as u16;
        let priority = if latency { Priority::Latency } else { Priority::Throughput };
        let encoded =
            encode_request_opts(req_id, device, priority, tenant, deadline_us, failover, &shots);
        match decode_message(&encoded) {
            Ok(WireMessage::Request {
                req_id: r, device: d, priority: p, tenant: t, deadline_us: dl,
                allow_failover: fo, shots: s,
            }) => {
                prop_assert_eq!(r, req_id);
                prop_assert_eq!(d, device);
                prop_assert_eq!(p, priority);
                prop_assert_eq!(t, tenant);
                prop_assert_eq!(dl, deadline_us);
                prop_assert_eq!(fo, failover);
                prop_assert_eq!(s, shots);
            }
            other => prop_assert!(false, "decoded {:?}", other),
        }
    }

    #[test]
    fn response_round_trips_exactly(
        states in states_strategy(),
        req_id in any::<u64>()
    ) {
        let encoded = encode_response(req_id, &states);
        match decode_message(&encoded) {
            Ok(WireMessage::Response { req_id: r, states: s }) => {
                prop_assert_eq!(r, req_id);
                prop_assert_eq!(s, states);
            }
            other => prop_assert!(false, "decoded {:?}", other),
        }
    }

    #[test]
    fn every_truncation_of_a_request_is_a_typed_error(
        shots in shots_strategy(),
        cut_fraction in 0.0f64..1.0
    ) {
        // Any strict prefix of a valid frame payload must decode to a
        // typed error — the declared counts can no longer be satisfied —
        // and must never panic or silently succeed.
        let encoded = encode_request(7, 3, Priority::Throughput, &shots);
        let cut = ((encoded.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < encoded.len());
        prop_assert!(decode_message(&encoded[..cut]).is_err());
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in prop::collection::vec(0u32..256, 0..300)
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        // Any result is fine — only a panic would fail this test.
        let _ = decode_message(&bytes);
    }

    #[test]
    fn corrupting_the_header_yields_the_matching_typed_error(
        states in states_strategy()
    ) {
        let good = encode_response(1, &states);
        // Magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        prop_assert!(matches!(decode_message(&bad), Err(WireError::BadMagic(_))));
        // Version.
        let mut bad = good.clone();
        bad[2] = 99;
        prop_assert!(matches!(
            decode_message(&bad),
            Err(WireError::UnsupportedVersion(99))
        ));
        // Message type.
        let mut bad = good.clone();
        bad[3] = 77;
        prop_assert!(matches!(
            decode_message(&bad),
            Err(WireError::UnknownMessage(77))
        ));
    }

    #[test]
    fn reassembly_is_invariant_to_fragmentation(
        states in states_strategy(),
        shots in shots_strategy(),
        chunk in 1usize..64
    ) {
        // A byte stream carrying several frames must reassemble into
        // exactly those frames no matter how the transport fragments it.
        let payloads = [
            encode_request(1, 0, Priority::Throughput, &shots),
            encode_response(2, &states),
            encode_error(3, &ServeError::Overloaded { retry_after: None }),
        ];
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&(p.len() as u32).to_le_bytes());
            stream.extend_from_slice(p);
        }
        let mut asm = FrameAssembler::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        for piece in stream.chunks(chunk) {
            asm.extend(piece);
            while let Some(frame) = asm.next_frame().unwrap() {
                got.push(frame);
            }
        }
        prop_assert_eq!(got, payloads.to_vec());
        prop_assert_eq!(asm.pending(), 0);
    }
}

#[test]
fn every_error_variant_round_trips() {
    for error in [
        ServeError::Closed,
        ServeError::Overloaded { retry_after: None },
        // The retry-after hint is a typed extra on the error frame; an
        // exact microsecond value must survive the trip.
        ServeError::Overloaded {
            retry_after: Some(Duration::from_micros(2_750)),
        },
        ServeError::Timeout,
        ServeError::InvalidRequest("shot 3 qubit 1: ragged".to_string()),
        ServeError::Protocol("reply carries 0 shot states".to_string()),
        ServeError::Disconnected,
        ServeError::Draining,
        ServeError::DeadlineExceeded,
        // The offending tenant id travels as a typed extra, so a client
        // can log *which* id the server refused.
        ServeError::UnknownTenant(0),
        ServeError::UnknownTenant(u32::MAX),
        ServeError::Poisoned,
        ServeError::ShardDown,
    ] {
        let encoded = encode_error(42, &error);
        match decode_message(&encoded) {
            Ok(WireMessage::Error { req_id, error: decoded }) => {
                assert_eq!(req_id, 42);
                assert_eq!(decoded, error);
            }
            other => panic!("decoded {other:?}"),
        }
    }
}

#[test]
fn v2_frames_still_decode_as_the_default_tenant() {
    // Version tolerance: a PR-6 v2 client sends requests with no
    // tenant/deadline fields and `Overloaded` errors with no retry-after
    // extra. Both must decode — as the default tenant with no deadline,
    // and no hint — so old clients keep working against a v3 server.
    let mut v2_req = Vec::new();
    v2_req.extend_from_slice(&0x514Bu16.to_le_bytes());
    v2_req.push(2); // version 2
    v2_req.push(1); // request
    v2_req.extend_from_slice(&9u64.to_le_bytes()); // req id
    v2_req.extend_from_slice(&4u16.to_le_bytes()); // device
    v2_req.push(1); // priority: latency
    v2_req.extend_from_slice(&0u32.to_le_bytes()); // zero shots
    match decode_message(&v2_req) {
        Ok(WireMessage::Request {
            req_id, device, priority, tenant, deadline_us, allow_failover, shots,
        }) => {
            assert_eq!(req_id, 9);
            assert_eq!(device, 4);
            assert_eq!(priority, Priority::Latency);
            assert_eq!(tenant, 0, "v2 requests bill to the default tenant");
            assert_eq!(deadline_us, 0, "v2 requests carry no deadline");
            assert!(!allow_failover, "v2 requests never opt into failover");
            assert!(shots.is_empty());
        }
        other => panic!("decoded {other:?}"),
    }

    let mut v2_err = Vec::new();
    v2_err.extend_from_slice(&0x514Bu16.to_le_bytes());
    v2_err.push(2); // version 2
    v2_err.push(3); // error
    v2_err.extend_from_slice(&9u64.to_le_bytes()); // req id
    v2_err.push(2); // kind: Overloaded
    v2_err.extend_from_slice(&0u32.to_le_bytes()); // empty message
    match decode_message(&v2_err) {
        Ok(WireMessage::Error { error, .. }) => {
            assert_eq!(error, ServeError::Overloaded { retry_after: None });
        }
        other => panic!("decoded {other:?}"),
    }
}

#[test]
fn version_skew_is_a_typed_error() {
    // A protocol-v1 frame (PR 5: no request id) against this build must
    // fail typed as version skew — never parse the id-less header as if
    // eight body bytes were a request id.
    let mut v1 = Vec::new();
    v1.extend_from_slice(&0x514Bu16.to_le_bytes());
    v1.push(1); // version 1
    v1.push(1); // request
    v1.extend_from_slice(&0u16.to_le_bytes()); // device
    v1.push(0); // priority
    v1.extend_from_slice(&0u32.to_le_bytes()); // zero shots
    assert!(matches!(
        decode_message(&v1),
        Err(WireError::UnsupportedVersion(1))
    ));
}

#[test]
fn response_masks_with_non_qubit_bits_are_malformed() {
    let mut encoded = encode_response(1, &[[true; 5]]);
    // Set a sixth-qubit bit in the (single) state mask.
    let last = encoded.len() - 1;
    encoded[last] |= 1 << 5;
    assert!(matches!(
        decode_message(&encoded),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn ragged_traces_round_trip_exactly() {
    // The format carries separate I and Q counts precisely so ragged
    // traces survive the trip and get rejected typed at intake.
    let mut shot = shot_from_samples(vec![vec![1.0, 2.0, 3.0], vec![4.0]]);
    shot.traces[0].q.truncate(1);
    shot.traces[1].q.clear();
    let encoded = encode_request(1, 0, Priority::Throughput, std::slice::from_ref(&shot));
    match decode_message(&encoded) {
        Ok(WireMessage::Request { shots, .. }) => assert_eq!(shots, vec![shot]),
        other => panic!("decoded {other:?}"),
    }
}

#[test]
fn hostile_shot_counts_are_capped_before_allocation() {
    // A frame declaring an absurd shot count must fail typed without
    // the decoder allocating shot structs for it.
    let mut payload = encode_request(1, 0, Priority::Throughput, &[]);
    // Overwrite the trailing u32 shot count (last 4 bytes of an empty
    // request) with u32::MAX.
    let len = payload.len();
    payload[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    match decode_message(&payload) {
        Err(WireError::Malformed(msg)) => assert!(msg.contains("limit"), "{msg}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
    // A count under the cap but unbacked by bytes is typed truncation,
    // still before allocation.
    payload[len - 4..].copy_from_slice(&1_000_000u32.to_le_bytes());
    assert!(matches!(
        decode_message(&payload),
        Err(WireError::Truncated { .. })
    ));
}

#[test]
fn trailing_bytes_are_malformed() {
    let mut encoded = encode_response(1, &[[false; 5]]);
    encoded.push(0);
    match decode_message(&encoded) {
        Err(WireError::Malformed(msg)) => assert!(msg.contains("trailing"), "{msg}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn framing_rejects_truncation_and_oversized_lengths() {
    // Clean EOF at a frame boundary is `None`, not an error.
    let empty: &[u8] = &[];
    assert_eq!(read_frame(&mut &*empty).unwrap(), None);
    // A stream that dies mid-length-prefix or mid-payload is typed.
    let short_prefix: &[u8] = &[1, 0];
    assert!(matches!(
        read_frame(&mut &*short_prefix),
        Err(WireError::Truncated { .. })
    ));
    let short_payload: &[u8] = &[8, 0, 0, 0, 1, 2, 3];
    assert!(matches!(
        read_frame(&mut &*short_payload),
        Err(WireError::Truncated { expected: 8, have: 3 })
    ));
    // A garbage length prefix must produce a typed bound error, not a
    // giant allocation.
    let huge: &[u8] = &[0xff, 0xff, 0xff, 0xff];
    assert!(matches!(
        read_frame(&mut &*huge),
        Err(WireError::FrameTooLarge(_))
    ));
    // The incremental assembler enforces the same bound the moment the
    // prefix is visible — before any payload bytes arrive.
    let mut asm = FrameAssembler::new();
    asm.extend(&[0xff, 0xff, 0xff, 0xff]);
    assert!(matches!(
        asm.next_frame(),
        Err(WireError::FrameTooLarge(_))
    ));
}

/// A reader that hands out one byte per `read` call — the degenerate
/// fragmentation a slow or chaos-injected socket produces.
struct OneByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl std::io::Read for OneByteReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.bytes.len() || buf.is_empty() {
            return Ok(0);
        }
        buf[0] = self.bytes[self.pos];
        self.pos += 1;
        Ok(1)
    }
}

#[test]
fn one_byte_reads_reassemble_exactly_across_frame_boundaries() {
    // `read_from` fed one byte at a time must produce each frame at the
    // exact read that completes it — no frame early (a length-prefix
    // parse jumping the gun), none late, none merged across the
    // boundary where one frame's last byte and the next frame's prefix
    // meet.
    let payloads = [
        encode_error(7, &ServeError::Draining),
        encode_response(8, &[[true, false, true, false, true]]),
        encode_error(9, &ServeError::Disconnected),
    ];
    let mut stream = Vec::new();
    let mut ends = Vec::new();
    for p in &payloads {
        stream.extend_from_slice(&(p.len() as u32).to_le_bytes());
        stream.extend_from_slice(p);
        ends.push(stream.len());
    }
    let mut reader = OneByteReader {
        bytes: &stream,
        pos: 0,
    };
    let mut asm = FrameAssembler::new();
    let mut got: Vec<Vec<u8>> = Vec::new();
    for fed in 1..=stream.len() {
        // Ask for a big chunk; the reader still delivers one byte.
        assert_eq!(asm.read_from(&mut reader, 64 * 1024).unwrap(), 1);
        let complete_before = got.len();
        while let Some(frame) = asm.next_frame().unwrap() {
            got.push(frame);
        }
        let complete_now = ends.iter().filter(|&&e| e <= fed).count();
        assert_eq!(
            got.len(),
            complete_now,
            "after byte {fed}: {} frames out, expected {complete_now}",
            got.len()
        );
        // A frame may only appear on the byte that completes it.
        if got.len() > complete_before {
            assert!(ends.contains(&fed), "frame surfaced mid-frame at byte {fed}");
        }
    }
    assert_eq!(got, payloads.to_vec());
    assert_eq!(asm.pending(), 0);
    assert_eq!(asm.read_from(&mut reader, 64 * 1024).unwrap(), 0, "stream exhausted");
}
