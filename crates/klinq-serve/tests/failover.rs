//! The self-healing-fleet suite: shard death under live traffic.
//!
//! Covers the supervision contract end to end: a killed collector is a
//! routine, observable, recoverable event — requests are answered typed
//! (never lost, never duplicated), failover reroutes opted-in traffic
//! to healthy peers, the watchdog walks the shard through
//! `Down → Restarting → Healthy` with monotonic counters, poisoned
//! requests are quarantined without taking their batchmates down, and a
//! partially corrupt deploy bundle boots the fleet degraded and heals
//! from disk.

use klinq_core::{persist, testkit, BatchDiscriminator, KlinqSystem, ShotStates};
use klinq_serve::{
    CrashFaults, RequestOptions, ServeConfig, ServeError, ShardHealth, ShardedReadoutServer,
    SuperviseConfig, Transport, WireClient, WireConfig, WireServer,
};
use std::collections::HashMap;
use std::net::TcpListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

/// The shared smoke system (disk-cached across the workspace's test
/// binaries, see `klinq_core::testkit`).
fn system() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| {
        Arc::new(testkit::cached_smoke_system(Path::new(env!(
            "CARGO_TARGET_TMPDIR"
        ))))
    }))
}

/// The distinguishable alternate model (output layers negated).
fn variant() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| Arc::new(testkit::inverted_variant(&system()))))
}

fn direct(sys: &KlinqSystem, shots: &[klinq_sim::Shot]) -> Vec<ShotStates> {
    BatchDiscriminator::new(sys.discriminators()).classify_shots(shots)
}

fn transports() -> Vec<Transport> {
    vec![Transport::PollLoop, Transport::Auto]
}

/// Fast supervision for tests: quick watchdog sweeps and a `Down`
/// window wide enough to observe (and to deterministically land probe
/// requests in) before the restart fires.
fn supervision(restart_backoff: Duration) -> SuperviseConfig {
    SuperviseConfig {
        watchdog_interval: Duration::from_millis(2),
        restart_backoff,
        ..SuperviseConfig::default()
    }
}

/// `Healthy` or `Degraded` — the states in which a shard serves. Under
/// the fleet-wide `KLINQ_CHAOS_CRASH` knob a freshly recovered shard
/// can be re-degraded by a transient injected panic at any time, so
/// "recovered" assertions accept either serving state.
fn serving(health: ShardHealth) -> bool {
    matches!(health, ShardHealth::Healthy | ShardHealth::Degraded)
}

/// Polls `probe` until it returns true or `timeout` elapses.
fn wait_for(timeout: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

/// The tentpole soak: a two-device fleet over TCP, a pipelined worker
/// hammering device 0 with failover-enabled requests, and a seeded
/// mid-stream collector crash on that shard. Every submitted request is
/// answered exactly once — `Ok` bitwise-identical to direct
/// classification, or typed `ShardDown` for requests the dead collector
/// owned (the worker resubmits those). While the shard is down,
/// failover requests land on the peer (observed via the fleet failover
/// counter) and opted-out requests answer `ShardDown`; afterwards the
/// shard is serving again with `downs`/`restarts` incremented.
fn kill_a_shard_under_load_on(transport: Transport) {
    let sys = system();
    let all_shots = sys.test_data().shots().to_vec();
    let fleet = ShardedReadoutServer::start(
        vec![system(), system()],
        ServeConfig {
            max_linger: Duration::from_micros(500),
            supervise: supervision(Duration::from_millis(600)),
            ..ServeConfig::default()
        },
    );
    let server = WireServer::start_with(
        &fleet,
        TcpListener::bind("127.0.0.1:0").unwrap(),
        WireConfig {
            transport,
            ..WireConfig::default()
        },
    )
    .expect("start wire server");
    let addr = server.local_addr();

    const WINDOW: usize = 4;
    const SLICE: usize = 4;
    let stop = Arc::new(AtomicBool::new(false));
    let worker = {
        let stop = Arc::clone(&stop);
        let shots = all_shots.clone();
        let sys = Arc::clone(&sys);
        std::thread::spawn(move || {
            let mut client = WireClient::connect(addr, 0).expect("worker connects");
            client
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            let mut served = 0u64;
            let mut shard_down = 0u64;
            let mut round = 0usize;
            while !stop.load(Ordering::Acquire) {
                // Each round pipelines WINDOW requests and collects
                // every answer; ids lost or answered twice fail here.
                let mut expected: HashMap<u64, Vec<ShotStates>> = HashMap::new();
                for j in 0..WINDOW {
                    let start = ((round * 13 + j * 5) * SLICE) % (shots.len() - SLICE);
                    let slice = &shots[start..start + SLICE];
                    let id = client
                        .submit_opts(RequestOptions::new().failover(true), slice)
                        .expect("submit while the fleet self-heals");
                    assert!(
                        expected.insert(id, direct(&sys, slice)).is_none(),
                        "request id {id} issued twice"
                    );
                }
                for _ in 0..WINDOW {
                    let (id, result) = client.recv_response().expect("no response lost");
                    let want = expected
                        .remove(&id)
                        .expect("each id answered exactly once — a duplicate would miss here");
                    match result {
                        Ok(got) => {
                            assert_eq!(got, want, "round {round}: survivor response corrupted");
                            served += 1;
                        }
                        // The dead collector owned this request when it
                        // crashed; the reply guard answered it typed.
                        // Classification is pure, so resubmitting is
                        // safe — and must succeed eventually.
                        Err(ServeError::ShardDown) => shard_down += 1,
                        Err(other) => panic!("round {round}: unexpected error {other:?}"),
                    }
                }
                assert!(expected.is_empty(), "round {round}: responses lost");
                round += 1;
            }
            (served, shard_down)
        })
    };

    // Probe clients connected up front so their submissions land inside
    // the Down window with no connect latency in the way.
    let mut probe_over = WireClient::connect(addr, 0).unwrap();
    probe_over
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut probe_strict = WireClient::connect(addr, 0).unwrap();
    probe_strict
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Let traffic flow, then crash shard 0's collector mid-stream.
    std::thread::sleep(Duration::from_millis(100));
    fleet.kill_shard(0).expect("inject the crash");
    assert!(
        wait_for(Duration::from_secs(10), || !serving(fleet.health(0))),
        "watchdog never observed the crash"
    );

    // Inside the Down window (600 ms backoff): a failover-enabled
    // request is served by the healthy peer, bitwise-correct; an
    // opted-out request answers typed ShardDown.
    let slice = &all_shots[0..SLICE];
    let want = direct(&sys, slice);
    let over_id = probe_over
        .submit_opts(RequestOptions::new().failover(true), slice)
        .unwrap();
    let strict_id = probe_strict.submit_opts(RequestOptions::new(), slice).unwrap();
    let (id, result) = probe_over.recv_response().unwrap();
    assert_eq!(id, over_id);
    assert_eq!(
        result.expect("failover request served by the peer"),
        want,
        "failover response corrupted"
    );
    let (id, result) = probe_strict.recv_response().unwrap();
    assert_eq!(id, strict_id);
    assert!(
        matches!(result, Err(ServeError::ShardDown)),
        "expected typed ShardDown without failover, got {result:?}"
    );

    // The watchdog restarts the shard and it serves again.
    assert!(
        wait_for(Duration::from_secs(10), || serving(fleet.health(0))),
        "shard never recovered"
    );
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Release);
    let (served, shard_down) = worker.join().expect("worker survived the crash");
    assert!(served > 0, "worker never saw a successful response");

    server.shutdown();
    let stats = fleet.shutdown();
    assert!(stats.downs >= 1, "down transition not counted: {stats:?}");
    assert!(stats.restarts >= 1, "restart not counted: {stats:?}");
    assert!(stats.failovers >= 1, "failover not counted: {stats:?}");
    assert!(stats.recovery_us > 0, "recovery time not recorded");
    assert!(
        stats.shard_down_rejections >= 1,
        "strict probe's rejection not counted"
    );
    // In-flight requests at crash time are the only ShardDown answers a
    // failover-enabled worker sees; they are bounded by what one window
    // can hold (per crash), not proportional to the outage.
    assert!(
        shard_down <= (WINDOW * 4) as u64,
        "too many ShardDown answers for failover-enabled traffic: {shard_down}"
    );
}

#[test]
fn kill_a_shard_under_load_fails_over_and_recovers_epoll_or_auto() {
    kill_a_shard_under_load_on(Transport::Auto);
}

#[test]
fn kill_a_shard_under_load_fails_over_and_recovers_poll_loop() {
    kill_a_shard_under_load_on(Transport::PollLoop);
}

#[test]
fn failover_routes_in_process_and_opt_out_stays_typed() {
    let sys = system();
    let shots = sys.test_data().shots()[0..4].to_vec();
    let want = direct(&sys, &shots);
    // A backoff far beyond the test keeps the shard deterministically
    // Down while the probes run.
    let fleet = ShardedReadoutServer::start(
        vec![system(), system()],
        ServeConfig {
            supervise: supervision(Duration::from_secs(60)),
            ..ServeConfig::default()
        },
    );
    let client = fleet.client(0);
    assert_eq!(client.classify_shots(shots.clone()).unwrap(), want);

    fleet.kill_shard(0).expect("inject the crash");
    assert!(
        wait_for(Duration::from_secs(10), || fleet.health(0) == ShardHealth::Down),
        "watchdog never marked the shard down"
    );

    // Same handle, three outcomes: opted-in requests ride the peer,
    // opted-out requests fail typed, and the peer stays untouched.
    assert_eq!(
        client
            .classify_shots_opts(RequestOptions::new().failover(true), shots.clone())
            .expect("failover request served by the peer"),
        want
    );
    assert!(matches!(
        client.classify_shots(shots.clone()),
        Err(ServeError::ShardDown)
    ));
    assert_eq!(fleet.client(1).classify_shots(shots).unwrap(), want);

    let stats = fleet.stats();
    assert!(stats.failovers >= 1, "{stats:?}");
    assert!(stats.shard_down_rejections >= 1, "{stats:?}");
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.shards_down, 1, "{stats:?}");
    // The failover is billed to tenant 0 on the down shard.
    let tenants = fleet.tenant_stats();
    assert!(tenants[0].failovers >= 1, "{tenants:?}");
    fleet.shutdown();
}

#[test]
fn counters_stay_monotonic_across_restart_and_swap() {
    let sys = system();
    let alt = variant();
    let shots = sys.test_data().shots()[0..6].to_vec();
    let on_primary = direct(&sys, &shots);
    let on_alt = direct(&alt, &shots);
    assert_ne!(on_primary, on_alt, "the slice must distinguish the models");

    let fleet = ShardedReadoutServer::start(
        vec![system()],
        ServeConfig {
            supervise: supervision(Duration::from_millis(40)),
            ..ServeConfig::default()
        },
    );
    let client = fleet.client(0);
    for _ in 0..3 {
        assert_eq!(client.classify_shots(shots.clone()).unwrap(), on_primary);
    }
    let before = fleet.stats();
    assert_eq!(before.model_version, 1);
    assert_eq!(before.requests, 3);

    // Crash and recover: every counter picks up where it left off.
    fleet.kill_shard(0).expect("inject the crash");
    assert!(
        wait_for(Duration::from_secs(10), || {
            let s = fleet.stats();
            s.restarts >= 1 && serving(fleet.health(0))
        }),
        "shard never recovered"
    );
    assert_eq!(client.classify_shots(shots.clone()).unwrap(), on_primary);
    let after = fleet.stats();
    assert_eq!(after.requests, before.requests + 1, "requests reset by restart");
    assert!(after.shots >= before.shots + shots.len() as u64, "shots reset");
    assert!(after.batches > before.batches, "batches reset");
    assert_eq!(after.model_version, 1, "restart must not bump the model version");
    assert!(after.downs >= 1 && after.restarts >= 1, "{after:?}");
    assert!(after.recovery_us > 0, "recovery time not recorded");

    // Hot swap, then crash again: the restart resumes the *swapped*
    // model (the restart source tracked the swap), and the version
    // gauge survives the restart.
    let v2 = fleet.swap_model(0, Arc::clone(&alt)).expect("swap accepted");
    assert_eq!(v2, 2);
    assert_eq!(client.classify_shots(shots.clone()).unwrap(), on_alt);
    let restarts_before = fleet.stats().restarts;
    fleet.kill_shard(0).expect("inject the second crash");
    assert!(
        wait_for(Duration::from_secs(10), || {
            fleet.stats().restarts > restarts_before && serving(fleet.health(0))
        }),
        "shard never recovered from the second crash"
    );
    assert_eq!(
        client.classify_shots(shots).unwrap(),
        on_alt,
        "restart resumed the pre-swap model"
    );
    let last = fleet.stats();
    assert_eq!(last.model_version, 2, "version gauge reset by restart");
    assert!(last.downs >= 2 && last.restarts >= 2, "{last:?}");
    fleet.shutdown();
}

#[test]
fn poisoned_requests_are_quarantined_and_batchmates_replayed() {
    let sys = system();
    let all_shots = sys.test_data().shots().to_vec();
    // A long linger with an unbounded shot budget coalesces all the
    // async submissions below into one micro-batch, so the poisoned
    // request genuinely takes batchmates down with it before the
    // quarantine replays them.
    let server = klinq_serve::ReadoutServer::start(
        system(),
        ServeConfig {
            max_linger: Duration::from_millis(300),
            max_batch_shots: usize::MAX,
            crash: Some(CrashFaults::new(0xBAD_5EED).poison(35)),
            ..ServeConfig::default()
        },
    );
    let client = server.client();

    let submit_all = |slices: &[Vec<klinq_sim::Shot>]| {
        let mut rxs = Vec::new();
        for slice in slices {
            let (tx, rx) = mpsc::channel();
            client
                .submit_with_priority(klinq_serve::Priority::Throughput, slice.clone(), move |r| {
                    let _ = tx.send(r);
                })
                .expect("submission accepted");
            rxs.push(rx);
        }
        rxs.into_iter()
            .map(|rx| rx.recv_timeout(Duration::from_secs(60)).expect("answered"))
            .collect::<Vec<_>>()
    };

    let slices: Vec<Vec<klinq_sim::Shot>> = (0..8)
        .map(|i| all_shots[i * 3..i * 3 + 3].to_vec())
        .collect();
    let first = submit_all(&slices);
    let poisoned: Vec<usize> = first
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r, Err(ServeError::Poisoned)))
        .map(|(i, _)| i)
        .collect();
    for (i, result) in first.iter().enumerate() {
        match result {
            Ok(got) => assert_eq!(
                got,
                &direct(&sys, &slices[i]),
                "batchmate {i} of a poisoned request answered wrong"
            ),
            Err(ServeError::Poisoned) => {}
            Err(other) => panic!("request {i}: unexpected error {other:?}"),
        }
    }
    // The 35% content-keyed draw over 8 distinct slices must split them
    // (both outcomes present) for this test to mean anything; the fixed
    // seed makes this deterministic.
    assert!(
        !poisoned.is_empty() && poisoned.len() < slices.len(),
        "seed must yield a mix of poisoned and clean requests, got {poisoned:?}"
    );

    // The verdict is content-keyed: resubmitting draws identically, so
    // a poisoned request stays quarantined (answered typed without
    // another classification attempt) and a clean one stays correct.
    let second = submit_all(&slices);
    for (i, result) in second.iter().enumerate() {
        if poisoned.contains(&i) {
            assert!(
                matches!(result, Err(ServeError::Poisoned)),
                "request {i} escaped quarantine on resubmission: {result:?}"
            );
        } else {
            assert_eq!(result.as_ref().expect("clean request stays served"), &direct(&sys, &slices[i]));
        }
    }

    let stats = server.stats();
    assert!(stats.panics >= 1, "the poisoned batch's panic not counted");
    assert_eq!(
        stats.poisoned,
        2 * poisoned.len() as u64,
        "every poisoned answer counts once: {stats:?}"
    );
    assert!(serving(server.health()), "quarantine must keep the shard serving");
    let tenants = server.tenant_stats();
    assert_eq!(tenants[0].poisoned, 2 * poisoned.len() as u64);
    server.shutdown();
}

#[test]
fn transient_batch_panics_are_correctness_transparent() {
    let sys = system();
    let shots = sys.test_data().shots().to_vec();
    let server = klinq_serve::ReadoutServer::start(
        system(),
        ServeConfig {
            crash: Some(CrashFaults::new(271_828).batch_panics(50)),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    // Sequential single-request batches: the per-batch fault draw is
    // deterministic in batch order, and with 20 draws at 50% the fixed
    // seed guarantees hits. Every answer must still be exact — the solo
    // replay serves what the crashed batch would have.
    for i in 0..20 {
        let slice = &shots[i * 2..i * 2 + 2];
        assert_eq!(
            client.classify_shots(slice.to_vec()).expect("replay answers everyone"),
            direct(&sys, slice),
            "request {i} corrupted by a transient panic"
        );
    }
    let stats = server.stats();
    assert!(stats.panics >= 1, "no transient panic fired: {stats:?}");
    assert_eq!(stats.poisoned, 0, "transient faults must not poison anyone");
    assert_eq!(stats.requests, 20);
    server.shutdown();
}

/// XORs the low bit of the `nth` `"checksum"` field in a serialized
/// artifact, corrupting exactly that device's integrity seal. (The
/// bundle envelope carries no checksum of its own — integrity is
/// per-device so corruption quarantines per-device — hence occurrence
/// `n` is device `n`.)
fn flip_checksum(json: &str, nth: usize) -> String {
    let needle = "\"checksum\":";
    let mut at = 0;
    for _ in 0..=nth {
        at += json[at..].find(needle).expect("checksum field") + needle.len();
    }
    let end = at + json[at..]
        .find(|c: char| !c.is_ascii_digit())
        .expect("digits end");
    let stored: u64 = json[at..end].parse().expect("checksum digits");
    format!("{}{}{}", &json[..at], stored ^ 1, &json[end..])
}

#[test]
fn corrupt_device_boots_degraded_and_heals_from_disk() {
    let sys = system();
    let shots = sys.test_data().shots()[0..4].to_vec();
    let want = direct(&sys, &shots);
    let dir = std::env::temp_dir().join(format!("klinq_failover_bundle_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fleet.json");
    persist::save_device_bundle(&path, &[sys.as_ref(), sys.as_ref()]).unwrap();
    let good = std::fs::read_to_string(&path).unwrap();

    // Corrupt device 1's artifact on disk; the fleet must still boot.
    std::fs::write(&path, flip_checksum(&good, 1)).unwrap();
    let fleet = ShardedReadoutServer::load_bundle(
        &path,
        ServeConfig {
            supervise: supervision(Duration::from_millis(100)),
            ..ServeConfig::default()
        },
    )
    .expect("a partially corrupt bundle boots degraded, not dead");
    assert_eq!(fleet.devices(), 2);
    assert!(serving(fleet.health(0)), "the intact device must serve");
    let report = fleet.shard_health();
    assert_eq!(report[1].health, ShardHealth::Down, "{report:?}");

    // The intact shard serves; the quarantined one answers typed, or
    // hands opted-in requests to its healthy peer.
    assert_eq!(fleet.client(0).classify_shots(shots.clone()).unwrap(), want);
    assert!(matches!(
        fleet.client(1).classify_shots(shots.clone()),
        Err(ServeError::ShardDown)
    ));
    assert_eq!(
        fleet
            .client(1)
            .classify_shots_opts(RequestOptions::new().failover(true), shots.clone())
            .expect("failover rides the intact shard"),
        want
    );

    // Fix the artifact on disk: the watchdog's next retry reloads the
    // device through the (now passing) checksum gate and the shard
    // comes up without a fleet restart.
    std::fs::write(&path, &good).unwrap();
    assert!(
        wait_for(Duration::from_secs(30), || serving(fleet.health(1))),
        "shard never healed after the artifact was repaired"
    );
    assert_eq!(fleet.client(1).classify_shots(shots).unwrap(), want);
    let stats = fleet.stats();
    assert!(stats.restarts >= 1, "{stats:?}");
    fleet.shutdown();

    // A bundle with *no* loadable device is a load error, not a fleet
    // of dead shards.
    std::fs::write(&path, flip_checksum(&flip_checksum(&good, 0), 1)).unwrap();
    let err = ShardedReadoutServer::load_bundle(&path, ServeConfig::default()).unwrap_err();
    assert!(
        err.to_string().contains("no loadable device"),
        "unexpected error for an all-corrupt bundle: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wire_health_query_tracks_the_recovery_cycle() {
    for transport in transports() {
        let fleet = ShardedReadoutServer::start(
            vec![system(), system()],
            ServeConfig {
                supervise: supervision(Duration::from_millis(300)),
                ..ServeConfig::default()
            },
        );
        let server = WireServer::start_with(
            &fleet,
            TcpListener::bind("127.0.0.1:0").unwrap(),
            WireConfig {
                transport,
                ..WireConfig::default()
            },
        )
        .unwrap();
        let mut client = WireClient::connect(server.local_addr(), 0).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();

        let initial = client.fleet_health().expect("health query answered");
        assert_eq!(initial.len(), 2, "{transport:?}: one report per shard");
        assert!(initial.iter().all(|r| serving(r.health)), "{initial:?}");
        assert!(initial.iter().all(|r| r.restarts == 0), "{initial:?}");

        fleet.kill_shard(0).expect("inject the crash");
        // The health query is answered synchronously by the reactor, so
        // the outage itself is wire-visible…
        assert!(
            wait_for(Duration::from_secs(10), || {
                let h = client.fleet_health().expect("health visible during the outage");
                !serving(h[0].health)
            }),
            "{transport:?}: outage never became wire-visible"
        );
        // …and so is the recovery, with the restart counted.
        assert!(
            wait_for(Duration::from_secs(10), || {
                let h = client.fleet_health().expect("health query answered");
                serving(h[0].health) && h[0].restarts >= 1 && h[0].downs >= 1
            }),
            "{transport:?}: recovery never became wire-visible"
        );
        let final_report = client.fleet_health().unwrap();
        assert!(
            serving(final_report[1].health) && final_report[1].restarts == 0,
            "{transport:?}: the healthy peer must be untouched: {final_report:?}"
        );
        server.shutdown();
        fleet.shutdown();
    }
}
