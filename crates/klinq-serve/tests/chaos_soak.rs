//! The fault-injection soak and the failure-path regressions: hot
//! swaps under server-side chaos with flaky peers (zero lost,
//! duplicated, or cross-version-mixed responses), graceful drain on
//! shutdown, client reconnect with backoff, and the reactor edge cases
//! the chaos harness is built to reach (completion delivery racing
//! connection close, accept backpressure re-registration).

use klinq_core::testkit;
use klinq_core::{BatchDiscriminator, KlinqSystem, ShotStates};
use klinq_serve::chaos::Chaos;
use klinq_serve::{
    wire, Priority, ServeConfig, ServeError, ShardedReadoutServer, Transport, WireClient,
    WireConfig, WireServer,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The shared smoke system (disk-cached across the workspace's test
/// binaries, see `klinq_core::testkit`).
fn system() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| {
        Arc::new(testkit::cached_smoke_system(Path::new(env!(
            "CARGO_TARGET_TMPDIR"
        ))))
    }))
}

/// The distinguishable alternate model (output layers negated).
fn variant() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| Arc::new(testkit::inverted_variant(&system()))))
}

fn direct(sys: &KlinqSystem, shots: &[klinq_sim::Shot]) -> Vec<ShotStates> {
    BatchDiscriminator::new(sys.discriminators()).classify_shots(shots)
}

/// Both readiness mechanisms, so every scenario exercises the epoll
/// loop *and* the portable poll-loop fallback in one run.
fn transports() -> Vec<Transport> {
    vec![Transport::PollLoop, Transport::Auto]
}

/// The soak: a two-device fleet served through a chaos-injected reactor
/// (stalled/shrunk reads and writes, deferred completion wakeups),
/// pipelined clients on both devices, deliberately misbehaving peers on
/// the side, and blue/green swaps flipping both shards mid-traffic.
/// Every response must arrive (none lost), arrive once (none
/// duplicated), and be bitwise-identical to exactly one model version's
/// direct output (never a mix) — chaos is correctness-transparent.
fn soak_on(transport: Transport, seed: u64) {
    const WORKERS: usize = 3;
    const ROUNDS: usize = 6;
    const WINDOW: usize = 4; // pipelined requests in flight per round
    const SLICE: usize = 4;

    let primary = system();
    let alt = variant();
    let all_shots = primary.test_data().shots().to_vec();
    let fleet = ShardedReadoutServer::start(
        vec![system(), system()],
        ServeConfig {
            max_linger: Duration::from_micros(500),
            ..ServeConfig::default()
        },
    );
    let server = WireServer::start_with(
        &fleet,
        TcpListener::bind("127.0.0.1:0").unwrap(),
        WireConfig {
            transport,
            chaos_seed: Some(seed),
            ..WireConfig::default()
        },
    )
    .expect("start chaos-injected wire server");
    let addr = server.local_addr();

    // Flaky peers: dribbled writes, mid-frame hang-ups, and garbage,
    // all from a deterministic stream — the reactor's error paths stay
    // hot for the whole soak while the workers assert correctness.
    let stop = Arc::new(AtomicBool::new(false));
    let flaky = {
        let stop = Arc::clone(&stop);
        let shot = all_shots[0].clone();
        std::thread::spawn(move || {
            let mut chaos = Chaos::new(seed ^ 0xF1AC);
            let mut kind = 0u64;
            while !stop.load(Ordering::Acquire) {
                let Ok(mut raw) = TcpStream::connect(addr) else {
                    break;
                };
                let payload =
                    wire::encode_request(1, 0, Priority::Throughput, std::slice::from_ref(&shot));
                let framed = wire::codec::frame(&payload);
                match kind % 3 {
                    0 => {
                        // Byte-dribbling writer: a legal request, split
                        // at chaos-chosen points. The server must
                        // reassemble and answer it like any other.
                        let mut sent = 0;
                        while sent < framed.len() {
                            let n = 1 + chaos.below(framed.len() - sent);
                            if raw.write_all(&framed[sent..sent + n]).is_err() {
                                break;
                            }
                            sent += n;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        raw.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
                        // Any decodable frame is fine (a response from
                        // whichever model is live); a lost reply is not.
                        let frame = wire::read_frame(&mut raw)
                            .expect("dribbled request answered, not poisoned")
                            .expect("dribbled request answered, not hung up on");
                        wire::decode_message(&frame).expect("server frames stay decodable");
                    }
                    1 => {
                        // Mid-frame hang-up: the peer dies partway
                        // through a request. Nothing to answer — the
                        // server just has to survive it.
                        let cut = 1 + chaos.below(framed.len() - 1);
                        let _ = raw.write_all(&framed[..cut]);
                    }
                    _ => {
                        // Garbage: a protocol violation earns a typed
                        // connection-level error frame (or the server
                        // already hung up — either is acceptable; a
                        // wedged server is not, and the workers would
                        // catch that).
                        let mut junk = vec![0u8; 16];
                        for b in &mut junk {
                            *b = chaos.next_u64() as u8;
                        }
                        let _ = raw.write_all(&(junk.len() as u32).to_le_bytes());
                        let _ = raw.write_all(&junk);
                        raw.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
                        let mut sink = [0u8; 256];
                        let _ = raw.read(&mut sink);
                    }
                }
                kind += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let device = (w % 2) as u16;
        let shots = all_shots.clone();
        let primary = Arc::clone(&primary);
        let alt = Arc::clone(&alt);
        workers.push(std::thread::spawn(move || {
            let mut client = WireClient::connect(addr, device).expect("worker connects");
            // A lost or shed response must fail loudly, not hang the
            // soak forever.
            client
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            for round in 0..ROUNDS {
                let mut expected: HashMap<u64, (Vec<ShotStates>, Vec<ShotStates>)> =
                    HashMap::new();
                for j in 0..WINDOW {
                    let start = ((w * 31 + round * 7 + j * 3) * SLICE) % (shots.len() - SLICE);
                    let slice = &shots[start..start + SLICE];
                    let on_a = direct(&primary, slice);
                    let on_b = direct(&alt, slice);
                    assert_ne!(on_a, on_b, "slice at {start} must distinguish the models");
                    let id = client.submit(slice).expect("submit under chaos");
                    assert!(
                        expected.insert(id, (on_a, on_b)).is_none(),
                        "request id {id} issued twice"
                    );
                }
                for _ in 0..WINDOW {
                    let (id, result) = client.recv_response().expect("no response lost");
                    let (on_a, on_b) = expected
                        .remove(&id)
                        .expect("each id answered exactly once — a duplicate would miss here");
                    let got = result.expect("chaos is correctness-transparent");
                    assert!(
                        got == *on_a || got == *on_b,
                        "worker {w} round {round}: response matches neither model version \
                         — a cross-version mix or corruption leaked"
                    );
                }
                assert!(expected.is_empty(), "worker {w} round {round}: responses lost");
            }
        }));
    }

    // Blue/green swaps on both shards while the soak runs.
    for flip in 0..8u64 {
        let next = if flip % 2 == 0 { variant() } else { system() };
        fleet
            .swap_model((flip % 2) as usize, next)
            .expect("swap accepted under chaos");
        std::thread::sleep(Duration::from_millis(5));
    }

    for worker in workers {
        worker.join().expect("worker survived the soak");
    }
    stop.store(true, Ordering::Release);
    flaky.join().expect("flaky peer thread survived");

    server.shutdown();
    let stats = fleet.shutdown();
    assert!(
        stats.requests >= (WORKERS * ROUNDS * WINDOW) as u64,
        "fewer requests served than submitted: {}",
        stats.requests
    );
    assert!(stats.model_swaps >= 8, "swaps lost: {}", stats.model_swaps);
}

#[test]
fn chaos_soak_with_hot_swaps_loses_nothing_epoll_or_auto() {
    soak_on(Transport::Auto, 0xDAC_2025);
}

#[test]
fn chaos_soak_with_hot_swaps_loses_nothing_poll_loop() {
    soak_on(Transport::PollLoop, 0x5EED_0007);
}

#[test]
fn graceful_drain_answers_in_flight_and_refuses_new_work() {
    for transport in transports() {
        let sys = system();
        let all_shots = sys.test_data().shots().to_vec();
        let fleet = ShardedReadoutServer::start(
            vec![system()],
            ServeConfig {
                // Long enough that the parked batch is still open when
                // shutdown begins: the drain — not luck — must deliver
                // the answers.
                max_linger: Duration::from_millis(400),
                max_batch_shots: usize::MAX,
                ..ServeConfig::default()
            },
        );
        let server = WireServer::start_with(
            &fleet,
            TcpListener::bind("127.0.0.1:0").unwrap(),
            WireConfig {
                transport,
                ..WireConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let mut client = WireClient::connect(addr, 0).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        // Park a pipeline of requests on the lingering batch…
        let slices = [0..3usize, 3..5, 5..9];
        let mut expected: HashMap<u64, Vec<ShotStates>> = HashMap::new();
        for r in &slices {
            let slice = &all_shots[r.clone()];
            let id = client.submit(slice).unwrap();
            expected.insert(id, direct(&sys, slice));
        }
        // …then shut down mid-pipeline. `shutdown` waits briefly for
        // the reactor, which is busy draining — run it on the side so
        // the drain-window assertions below happen *during* the drain.
        let shutdown = std::thread::spawn(move || server.shutdown());
        std::thread::sleep(Duration::from_millis(50));

        // New work on the existing connection is refused typed, per
        // request — the connection itself stays up for its answers.
        let late_id = client.submit(&all_shots[9..10]).unwrap();
        // A new connection is answered with a connection-level Draining
        // frame, surfacing as the outer error.
        let mut late_conn = WireClient::connect(addr, 0).expect("drain still accepts to refuse");
        late_conn.set_reconnect(None);
        late_conn
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        late_conn.submit(&all_shots[0..1]).unwrap();
        match late_conn.recv_response() {
            Err(ServeError::Draining) => {}
            other => panic!("{transport:?}: expected Draining for a late connection, got {other:?}"),
        }

        // The parked pipeline drains completely: every response arrives,
        // bitwise-identical, and the late request got its typed refusal.
        let mut late_result = None;
        for _ in 0..slices.len() + 1 {
            let (id, result) = client.recv_response().expect("drain delivers, never drops");
            if id == late_id {
                late_result = Some(result);
                continue;
            }
            let want = expected.remove(&id).expect("each id answered exactly once");
            assert_eq!(
                result.expect("in-flight request answered during drain"),
                want,
                "{transport:?}: drained response corrupted"
            );
        }
        assert!(expected.is_empty(), "{transport:?}: shutdown lost responses");
        match late_result {
            Some(Err(ServeError::Draining)) => {}
            other => panic!("{transport:?}: expected Draining for late work, got {other:?}"),
        }
        shutdown.join().expect("shutdown thread");
        fleet.shutdown();
    }
}

#[test]
fn a_lost_connection_surfaces_disconnected_then_reconnects_with_backoff() {
    let sys = system();
    let shot = sys.test_data().shot(0).clone();
    let want = BatchDiscriminator::new(sys.discriminators()).classify_shot(&shot);

    // A listener that never accepts stands in for a server about to
    // die: the client handshakes against the kernel backlog, submits,
    // and then the "server" goes away entirely.
    let doomed = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = doomed.local_addr().unwrap();
    let mut client = WireClient::connect(addr, 0).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let id = client.submit(std::slice::from_ref(&shot)).unwrap();
    // Closing the listener tears down the backlogged connection — the
    // in-flight request must surface as a typed per-request
    // `Disconnected`, never a panic or a silent hang.
    drop(doomed);
    match client.recv_response() {
        Ok((rid, Err(ServeError::Disconnected))) => assert_eq!(rid, id),
        other => panic!("expected the in-flight request to fail typed, got {other:?}"),
    }

    // Now the outage ends mid-backoff: a real server comes up on the
    // same address ~150 ms in, while the blocking call is already
    // retrying. The default policy (8 attempts, 25 ms doubling) rides
    // that out and the retried request — same id, reconnected stream —
    // succeeds.
    let fleet = ShardedReadoutServer::start(vec![system()], ServeConfig::default());
    let rescue = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        WireServer::start(
            &fleet,
            TcpListener::bind(addr).expect("rebind the vacated port"),
        )
        .map(|server| (server, fleet))
        .expect("rescue server starts")
    });
    let got = client
        .classify_shot(&shot)
        .expect("reconnect under backoff reaches the rescued server");
    assert_eq!(got, want, "reconnected result must match direct");
    let (server, fleet) = rescue.join().expect("rescue thread");
    server.shutdown();
    fleet.shutdown();
}

#[test]
fn a_completion_racing_connection_close_is_dropped_not_delivered() {
    // The waker-notify-vs-close race: a client submits into a lingering
    // batch and hangs up before the answer exists. The completion fires
    // against a closed token; the reactor must drop it on the floor and
    // keep serving — not deliver to a recycled slot (tokens are never
    // reused) and not die.
    for transport in transports() {
        let sys = system();
        let shot = sys.test_data().shot(2).clone();
        let want = BatchDiscriminator::new(sys.discriminators()).classify_shot(&shot);
        let fleet = ShardedReadoutServer::start(
            vec![system()],
            ServeConfig {
                max_linger: Duration::from_millis(250),
                max_batch_shots: usize::MAX,
                ..ServeConfig::default()
            },
        );
        let server = WireServer::start_with(
            &fleet,
            TcpListener::bind("127.0.0.1:0").unwrap(),
            WireConfig {
                transport,
                ..WireConfig::default()
            },
        )
        .unwrap();
        let mut doomed = WireClient::connect(server.local_addr(), 0).unwrap();
        doomed.submit(std::slice::from_ref(&shot)).unwrap();
        // Hang up while the request sits in the fleet's open batch.
        drop(doomed);
        std::thread::sleep(Duration::from_millis(500));
        // The completion has fired into a closed connection by now; the
        // reactor is still healthy if a fresh client gets served.
        let mut fresh = WireClient::connect(server.local_addr(), 0).unwrap();
        fresh
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(
            fresh.classify_shot(&shot).expect("reactor survived the race"),
            want,
            "{transport:?}"
        );
        let stats = server.stats();
        assert_eq!(stats.wire_accepted, 2, "{transport:?}");
        server.shutdown();
        fleet.shutdown();
    }
}

#[test]
fn accept_backpressure_reregisters_after_every_freed_slot() {
    // Budget 1: every connection pushes the listener out of the
    // readiness set; every close must bring it back. Three full cycles
    // prove re-registration is a loop invariant, not a one-shot.
    for transport in transports() {
        let sys = system();
        let shot = sys.test_data().shot(1).clone();
        let want = BatchDiscriminator::new(sys.discriminators()).classify_shot(&shot);
        let fleet = ShardedReadoutServer::start(vec![system()], ServeConfig::default());
        let server = WireServer::start_with(
            &fleet,
            TcpListener::bind("127.0.0.1:0").unwrap(),
            WireConfig {
                max_connections: 1,
                idle_timeout: None,
                transport,
                ..WireConfig::default()
            },
        )
        .unwrap();
        for cycle in 0..3 {
            let mut client = WireClient::connect(server.local_addr(), 0).unwrap();
            client
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            assert_eq!(
                client.classify_shot(&shot).expect("served at budget"),
                want,
                "{transport:?} cycle {cycle}"
            );
            drop(client);
            // Give the reactor a beat to observe the close and re-arm
            // the listener before the next cycle connects.
            std::thread::sleep(Duration::from_millis(50));
        }
        let stats = server.stats();
        assert_eq!(stats.wire_accepted, 3, "{transport:?}");
        assert_eq!(stats.wire_peak_open, 1, "{transport:?}: budget breached");
        server.shutdown();
        fleet.shutdown();
    }
}
