//! Deadline semantics, end to end: an expired request is answered with
//! [`ServeError::DeadlineExceeded`] and **never** with states, and a
//! batch never lingers past its oldest queued deadline — on both
//! backends and over both submission paths (in-process client and the
//! TCP wire protocol).
//!
//! The wire transport (epoll vs the portable poll-loop) is chosen by
//! `KLINQ_WIRE_TRANSPORT`, exactly as in the rest of the wire suite —
//! CI runs this binary under both.

use klinq_core::testkit;
use klinq_core::{Backend, BatchDiscriminator, KlinqSystem, ShotStates};
use klinq_serve::{
    ReadoutServer, RequestOptions, ServeConfig, ServeError, ShardedReadoutServer, TenantId,
    TenantSpec, WireClient, WireServer,
};
use proptest::prelude::*;
use std::net::TcpListener;
use std::path::Path;
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

/// The shared smoke system (disk-cached across the workspace's test
/// binaries, see `klinq_core::testkit`).
fn system() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| {
        Arc::new(testkit::cached_smoke_system(Path::new(env!(
            "CARGO_TARGET_TMPDIR"
        ))))
    }))
}

fn direct(sys: &KlinqSystem, backend: Backend, shots: &[klinq_sim::Shot]) -> Vec<ShotStates> {
    BatchDiscriminator::new(sys.discriminators()).classify_shots_on(backend, shots)
}

/// Per-request deadline shape a proptest case assigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// No deadline: must be served with states.
    None,
    /// Already expired at submission: must fail typed, never serve.
    Expired,
    /// Far in the future: must be served with states.
    Generous,
}

/// Maps a generated index onto a [`Shape`] (the vendored proptest has
/// no `prop_oneof`; a small integer range serves the same purpose).
fn shape(ix: u8) -> Shape {
    match ix % 3 {
        0 => Shape::None,
        1 => Shape::Expired,
        _ => Shape::Generous,
    }
}

fn options_for(shape: Shape) -> RequestOptions {
    match shape {
        Shape::None => RequestOptions::new(),
        // `Duration::ZERO` is already in the past by the time anything
        // can look at it (the wire path rounds it up to 1 µs — still
        // expired long before a batch could classify a shot).
        Shape::Expired => RequestOptions::new().deadline(Duration::ZERO),
        Shape::Generous => RequestOptions::new().deadline(Duration::from_secs(30)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The core deadline property, in process: whatever the mix of
    /// expired, deadline-free and comfortably-deadlined requests, and
    /// whatever the batch shape, an expired request is answered
    /// `DeadlineExceeded` — never with states — and everything else is
    /// answered bitwise-identically to the direct classifier. Both
    /// backends.
    #[test]
    fn expired_requests_never_get_states_in_process(
        sizes_and_shapes in prop::collection::vec((1usize..6, 0u8..3), 1..12),
        budget in 4usize..48,
        linger_us in 0u64..2000,
        hardware in any::<bool>(),
    ) {
        let backend = if hardware { Backend::Hardware } else { Backend::Float };
        let sys = system();
        let all_shots = sys.test_data().shots();
        let server = ReadoutServer::start(
            Arc::clone(&sys),
            ServeConfig {
                backend,
                max_batch_shots: budget,
                max_linger: Duration::from_micros(linger_us),
                ..ServeConfig::default()
            },
        );
        let client = server.client();
        let (done_tx, done_rx) = mpsc::channel();
        let mut expected = Vec::new();
        for (i, &(size, shape_ix)) in sizes_and_shapes.iter().enumerate() {
            let shape = shape(shape_ix);
            let start = (i * 7) % (all_shots.len() - size);
            let shots = all_shots[start..start + size].to_vec();
            expected.push((shape, direct(&sys, backend, &shots)));
            let tx = done_tx.clone();
            client
                .submit_opts(options_for(shape), shots, move |result| {
                    let _ = tx.send((i, result));
                })
                .expect("intake open");
        }
        let mut got = vec![None; expected.len()];
        for _ in 0..expected.len() {
            let (i, result) = done_rx
                .recv_timeout(Duration::from_secs(30))
                .expect("every request is answered exactly once");
            prop_assert!(got[i].is_none(), "request {i} answered twice");
            got[i] = Some(result);
        }
        for (i, (result, (shape, states))) in got.into_iter().zip(&expected).enumerate() {
            match (shape, result.expect("collected above")) {
                (Shape::Expired, Err(ServeError::DeadlineExceeded)) => {}
                (Shape::Expired, other) => {
                    prop_assert!(
                        false,
                        "expired request {i} got {:?}, want DeadlineExceeded",
                        other.map(|s| s.len())
                    );
                }
                (_, Ok(served)) => prop_assert_eq!(&served, states, "request {} diverges", i),
                (shape, Err(e)) => {
                    prop_assert!(false, "{shape:?} request {i} failed: {e}");
                }
            }
        }
        server.shutdown();
    }

    /// The same property over the wire: deadlines survive encoding, and
    /// an expired request comes back as a typed per-request error frame
    /// on a connection that keeps serving. Both backends.
    #[test]
    fn expired_requests_never_get_states_over_the_wire(
        shapes in prop::collection::vec(0u8..3, 1..8),
        hardware in any::<bool>(),
    ) {
        let backend = if hardware { Backend::Hardware } else { Backend::Float };
        let sys = system();
        let all_shots = sys.test_data().shots();
        let fleet = ShardedReadoutServer::start(
            vec![Arc::clone(&sys)],
            ServeConfig {
                backend,
                max_linger: Duration::from_micros(200),
                sched: klinq_serve::SchedPolicy::new(vec![TenantSpec::new("t", 1)]),
                ..ServeConfig::default()
            },
        );
        let server = WireServer::start(
            &fleet,
            TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
        )
        .expect("start wire server");
        let mut client = WireClient::connect(server.local_addr(), 0).expect("connect");
        // Pipelined: submit the whole mix, then drain — responses may
        // interleave with batch boundaries however they like.
        let mut by_req = Vec::new();
        for (i, &shape_ix) in shapes.iter().enumerate() {
            let shape = shape(shape_ix);
            let size = 1 + i % 4;
            let start = (i * 11) % (all_shots.len() - size);
            let shots = &all_shots[start..start + size];
            let req_id = client
                .submit_opts(options_for(shape).tenant(TenantId(0)), shots)
                .expect("submit");
            by_req.push((req_id, shape, direct(&sys, backend, shots)));
        }
        for _ in 0..by_req.len() {
            let (req_id, result) = client.recv_response().expect("connection alive");
            let (_, shape, states) = by_req
                .iter()
                .find(|(id, _, _)| *id == req_id)
                .expect("response matches a request");
            match (shape, result) {
                (Shape::Expired, Err(ServeError::DeadlineExceeded)) => {}
                (Shape::Expired, other) => {
                    prop_assert!(
                        false,
                        "expired wire request got {:?}, want DeadlineExceeded",
                        other.map(|s| s.len())
                    );
                }
                (_, Ok(served)) => prop_assert_eq!(&served, states),
                (shape, Err(e)) => prop_assert!(false, "{shape:?} wire request failed: {e}"),
            }
        }
        drop(client);
        server.shutdown();
        fleet.shutdown();
    }

    /// Deadline-aware batch closing: with a linger far longer than the
    /// deadline, a deadlined request is still answered around its
    /// deadline (the batch closes `deadline_slack` early), not at the
    /// linger horizon — and the answer is served states, not a miss.
    #[test]
    fn no_batch_lingers_past_the_oldest_deadline(
        deadline_ms in 20u64..80,
        hardware in any::<bool>(),
        wire in any::<bool>(),
    ) {
        let backend = if hardware { Backend::Hardware } else { Backend::Float };
        let linger = Duration::from_secs(5);
        let deadline = Duration::from_millis(deadline_ms);
        let sys = system();
        let shots = sys.test_data().shots()[..4].to_vec();
        let expected = direct(&sys, backend, &shots);
        let config = ServeConfig {
            backend,
            // A budget no request reaches: only the deadline (or the
            // 5 s linger) can close the batch.
            max_batch_shots: usize::MAX,
            max_linger: linger,
            ..ServeConfig::default()
        };
        let t0 = Instant::now();
        let served = if wire {
            let fleet = ShardedReadoutServer::start(vec![Arc::clone(&sys)], config);
            let server = WireServer::start(
                &fleet,
                TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
            )
            .expect("start wire server");
            let mut client = WireClient::connect(server.local_addr(), 0).expect("connect");
            let served = client
                .classify_shots_opts(RequestOptions::new().deadline(deadline), &shots);
            drop(client);
            server.shutdown();
            fleet.shutdown();
            served
        } else {
            let server = ReadoutServer::start(Arc::clone(&sys), config);
            let served = server
                .client()
                .classify_shots_opts(RequestOptions::new().deadline(deadline), shots.clone());
            server.shutdown();
            served
        };
        let elapsed = t0.elapsed();
        // The answer must arrive around the deadline — the batch closes
        // `deadline_slack` ahead of it — nowhere near the 5 s linger. A
        // generous margin absorbs scheduler jitter on loaded CI boxes.
        prop_assert!(
            elapsed < deadline + Duration::from_secs(1),
            "answered after {elapsed:?}; the {deadline:?} deadline should have closed the batch"
        );
        match served {
            Ok(served) => prop_assert_eq!(served, expected),
            // A loaded box can miss a tens-of-ms deadline legitimately;
            // the miss must be typed, and it still proves the batch
            // closed on the deadline rather than the linger.
            Err(ServeError::DeadlineExceeded) => {}
            Err(e) => prop_assert!(false, "unexpected serve error: {e}"),
        }
    }
}
