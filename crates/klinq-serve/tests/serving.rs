//! End-to-end serving tests: coalesced responses must be exactly what a
//! direct batched classification would produce, for every client, on
//! both backends, under real concurrency.

use klinq_core::testkit;
use klinq_core::{Backend, BatchDiscriminator, KlinqSystem};
use klinq_serve::{Priority, ReadoutServer, ServeConfig, ServeError};
use std::path::Path;
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

/// The shared smoke system (disk-cached across the workspace's test
/// binaries, see `klinq_core::testkit`).
fn system() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| {
        Arc::new(testkit::cached_smoke_system(Path::new(env!(
            "CARGO_TARGET_TMPDIR"
        ))))
    }))
}

#[test]
fn single_client_matches_direct_batch_on_both_backends() {
    let sys = system();
    let shots = sys.test_data().shots().to_vec();
    for backend in Backend::ALL {
        let server = ReadoutServer::start(
            system(),
            ServeConfig {
                backend,
                ..ServeConfig::default()
            },
        );
        let served = server.client().classify_shots(shots.clone()).expect("server alive");
        let direct = BatchDiscriminator::new(sys.discriminators()).classify_shots_on(backend, &shots);
        assert_eq!(served, direct, "served results diverged on {backend}");
        let stats = server.shutdown();
        assert_eq!(stats.shots, shots.len() as u64);
        assert_eq!(stats.requests, 1);
    }
}

#[test]
fn four_concurrent_clients_each_get_their_own_results() {
    let sys = system();
    let shots = sys.test_data().shots();
    let direct = BatchDiscriminator::new(sys.discriminators()).classify_shots(shots);

    // Generous linger so the four clients' requests actually coalesce.
    let server = ReadoutServer::start(
        system(),
        ServeConfig {
            max_linger: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    );
    let n_clients = 4;
    let rounds = 3;
    let barrier = Barrier::new(n_clients);
    std::thread::scope(|scope| {
        for c in 0..n_clients {
            let client = server.client();
            let barrier = &barrier;
            let direct = &direct;
            scope.spawn(move || {
                // Interleaved slices so every client's shots are spread
                // over the whole set, several requests per client.
                for round in 0..rounds {
                    let indices: Vec<usize> = (0..shots.len())
                        .filter(|i| (i + round) % n_clients == c)
                        .collect();
                    let mine: Vec<_> = indices.iter().map(|&i| shots[i].clone()).collect();
                    barrier.wait();
                    let states = client.classify_shots(mine).expect("server alive");
                    assert_eq!(states.len(), indices.len());
                    for (k, &i) in indices.iter().enumerate() {
                        assert_eq!(states[k], direct[i], "client {c} shot {i} diverged");
                    }
                }
            });
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.requests, (n_clients * rounds) as u64);
    assert_eq!(stats.shots, (shots.len() * rounds) as u64);
    // Coalescing must have actually merged concurrent requests: with
    // four barrier-aligned clients and a 100 ms linger, the collector
    // cannot have run one batch per request every single round.
    assert!(
        stats.batches < stats.requests,
        "no coalescing happened: {stats:?}"
    );
    assert!(stats.largest_batch > (shots.len() / n_clients) as u64, "{stats:?}");
}

#[test]
fn oversized_request_is_never_split() {
    let sys = system();
    let shots = sys.test_data().shots().to_vec();
    let server = ReadoutServer::start(
        system(),
        ServeConfig {
            // Budget far below the request size: the request must still
            // be answered atomically in one oversized batch.
            max_batch_shots: 8,
            max_linger: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let served = server.client().classify_shots(shots.clone()).expect("server alive");
    let direct = BatchDiscriminator::new(sys.discriminators()).classify_shots(&shots);
    assert_eq!(served, direct);
    let stats = server.shutdown();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.largest_batch, shots.len() as u64);
}

#[test]
fn single_shot_api_and_empty_requests() {
    let sys = system();
    let shot = sys.test_data().shot(5).clone();
    let server = ReadoutServer::start(system(), ServeConfig::default());
    let client = server.client();
    let states = client.classify_shot(shot.clone()).expect("server alive");
    let direct = BatchDiscriminator::new(sys.discriminators()).classify_shot(&shot);
    assert_eq!(states, direct);
    // Empty requests complete locally without touching the server.
    assert!(client.classify_shots(Vec::new()).expect("empty ok").is_empty());
    let stats = server.shutdown();
    assert_eq!(stats.requests, 1);
}

#[test]
fn huge_linger_does_not_panic_the_collector() {
    // Regression: `Instant::now() + max_linger` overflowed (and panicked
    // the collector) for huge lingers like `Duration::MAX` as "wait
    // until the budget fills", after which every client got `Closed`.
    let sys = system();
    let shot = sys.test_data().shot(0).clone();
    let server = ReadoutServer::start(
        system(),
        ServeConfig {
            max_linger: Duration::MAX,
            // Budget of one: the first request closes its own batch, so
            // the infinite linger never actually waits.
            max_batch_shots: 1,
            ..ServeConfig::default()
        },
    );
    let states = server.client().classify_shot(shot.clone()).expect("server alive");
    assert_eq!(
        states,
        BatchDiscriminator::new(sys.discriminators()).classify_shot(&shot)
    );
    server.shutdown();
}

#[test]
fn shutdown_mid_coalesce_answers_the_in_flight_batch() {
    // An infinite linger with an unreachable budget parks the collector
    // in a plain `recv` with a batch open; `Shutdown` must close that
    // batch and answer it, not strand the client.
    let sys = system();
    let shots = sys.test_data().shots()[..3].to_vec();
    let direct = BatchDiscriminator::new(sys.discriminators()).classify_shots(&shots);
    let server = ReadoutServer::start(
        system(),
        ServeConfig {
            max_linger: Duration::MAX,
            max_batch_shots: usize::MAX,
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| client.classify_shots(shots.clone()));
        // Let the request open its batch before shutting down.
        std::thread::sleep(Duration::from_millis(200));
        let stats = server.shutdown();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.batches, 1);
        let states = handle.join().expect("client thread").expect("answered at shutdown");
        assert_eq!(states, direct);
    });
}

#[test]
fn latency_priority_skips_the_linger_window() {
    let sys = system();
    let shot = sys.test_data().shot(0).clone();
    // A linger long enough that a lingering batch would time the test
    // out; only the priority lane can answer quickly.
    let server = ReadoutServer::start(
        system(),
        ServeConfig {
            max_linger: Duration::from_secs(600),
            max_batch_shots: usize::MAX,
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let start = Instant::now();
    let states = client
        .classify_shots_with_priority(Priority::Latency, vec![shot.clone()])
        .expect("server alive");
    let elapsed = start.elapsed();
    assert_eq!(
        states[0],
        BatchDiscriminator::new(sys.discriminators()).classify_shot(&shot)
    );
    assert!(
        elapsed < Duration::from_secs(60),
        "latency request waited out the linger: {elapsed:?}"
    );
    let stats = server.shutdown();
    assert_eq!(stats.latency_requests, 1);
    assert_eq!(stats.expedited_batches, 1, "{stats:?}");
}

#[test]
fn latency_arrival_closes_a_lingering_batch() {
    let sys = system();
    let shots = sys.test_data().shots();
    let direct = BatchDiscriminator::new(sys.discriminators()).classify_shots(shots);
    let server = ReadoutServer::start(
        system(),
        ServeConfig {
            max_linger: Duration::from_secs(600),
            max_batch_shots: usize::MAX,
            ..ServeConfig::default()
        },
    );
    std::thread::scope(|scope| {
        let throughput_client = server.client();
        let bulk: Vec<_> = shots[..4].to_vec();
        let bulk_handle = scope.spawn(move || throughput_client.classify_shots(bulk));
        // Give the throughput request time to open its batch and start
        // lingering, then let a latency request cut the linger short.
        std::thread::sleep(Duration::from_millis(200));
        let latency_client = server.client();
        let states = latency_client
            .classify_shots_with_priority(Priority::Latency, vec![shots[7].clone()])
            .expect("server alive");
        assert_eq!(states[0], direct[7]);
        // The bulk request rode in the same expedited batch.
        let bulk_states = bulk_handle.join().expect("bulk thread").expect("server alive");
        assert_eq!(bulk_states, direct[..4]);
    });
    let stats = server.shutdown();
    assert_eq!(stats.requests, 2);
    assert_eq!(
        stats.batches, 1,
        "the latency request must join the open batch, not start its own: {stats:?}"
    );
    assert_eq!(stats.expedited_batches, 1);
    assert_eq!(stats.latency_requests, 1);
}

#[test]
fn full_intake_queue_sheds_with_overloaded() {
    let sys = system();
    let shots = sys.test_data().shots();
    // A deliberately long request keeps the collector busy classifying
    // while the intake queue (capacity 1) fills behind it: the Q16.16
    // backend (several times slower than float) and a request scaled by
    // the worker-pool size keep the busy window well past the sleeps
    // below even on fast release builds and multi-core pools.
    let copies = 64 * std::thread::available_parallelism().map_or(1, |n| n.get());
    let big: Vec<_> = std::iter::repeat_with(|| shots.iter().cloned())
        .take(copies)
        .flatten()
        .collect();
    let server = ReadoutServer::start(
        system(),
        ServeConfig {
            backend: Backend::Hardware,
            max_batch_shots: 1,
            max_linger: Duration::ZERO,
            max_pending: 1,
            ..ServeConfig::default()
        },
    );
    std::thread::scope(|scope| {
        let big_client = server.client();
        let big_request = {
            let big = big.clone();
            scope.spawn(move || big_client.classify_shots(big))
        };
        // Let the collector dequeue the big request and start
        // classifying (it parks in `recv`, so pickup is immediate; the
        // classification itself takes far longer than this sleep).
        std::thread::sleep(Duration::from_millis(30));
        let queued_client = server.client();
        let queued = {
            let shot = shots[0].clone();
            scope.spawn(move || queued_client.classify_shot(shot))
        };
        std::thread::sleep(Duration::from_millis(10));
        // Queue slot taken and the collector is busy: shed, immediately.
        let start = Instant::now();
        let overflow = server.client().classify_shot(shots[1].clone());
        // A channel-full shed has no backlog estimate, so no hint.
        assert_eq!(overflow, Err(ServeError::Overloaded { retry_after: None }));
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "shedding must not wait for the collector"
        );
        // The queued request is answered once the collector frees up.
        let state = queued.join().expect("queued thread").expect("server alive");
        assert_eq!(
            state,
            BatchDiscriminator::new(sys.discriminators())
                .classify_shot_on(Backend::Hardware, &shots[0])
        );
        let big_states = big_request.join().expect("big thread").expect("server alive");
        assert_eq!(big_states.len(), big.len());
    });
    let stats = server.shutdown();
    assert_eq!(stats.shed, 1, "{stats:?}");
    assert_eq!(stats.requests, 2, "shed requests must not count as served");
}

#[test]
fn oversized_requests_scatter_one_to_one() {
    // Two concurrent requests, each alone bigger than the batch budget:
    // each must form its own oversized batch and get exactly its own
    // states back — never a merged or split scatter.
    let sys = system();
    let shots = sys.test_data().shots();
    let direct = BatchDiscriminator::new(sys.discriminators()).classify_shots(shots);
    let half = shots.len() / 2;
    let server = ReadoutServer::start(
        system(),
        ServeConfig {
            max_batch_shots: 8,
            max_linger: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    std::thread::scope(|scope| {
        let handles: Vec<_> = [(0, half), (half, shots.len())]
            .into_iter()
            .map(|(lo, hi)| {
                let client = server.client();
                let mine = shots[lo..hi].to_vec();
                scope.spawn(move || (lo, client.classify_shots(mine).expect("server alive")))
            })
            .collect();
        for handle in handles {
            let (lo, states) = handle.join().expect("client thread");
            assert_eq!(states, direct[lo..lo + states.len()]);
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.batches, 2, "oversized requests never coalesce: {stats:?}");
    assert_eq!(stats.shots, shots.len() as u64);
}

#[test]
fn clients_fail_fast_after_shutdown() {
    let sys = system();
    let shot = sys.test_data().shot(0).clone();
    let server = ReadoutServer::start(system(), ServeConfig::default());
    let client = server.client();
    server.shutdown();
    assert_eq!(client.classify_shot(shot), Err(ServeError::Closed));
}

#[test]
fn malformed_requests_are_rejected_without_killing_the_server() {
    let sys = system();
    let server = ReadoutServer::start(system(), ServeConfig::default());
    let client = server.client();
    // Traces far below the feature front end's floor: a typed rejection,
    // not a collector panic.
    let mut bad = sys.test_data().shot(0).clone();
    for t in &mut bad.traces {
        t.i.truncate(3);
        t.q.truncate(3);
    }
    match client.classify_shot(bad) {
        Err(ServeError::InvalidRequest(msg)) => {
            assert!(msg.contains("front end"), "{msg}")
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
    // The server is still alive and still serves valid requests.
    let good = sys.test_data().shot(1).clone();
    let states = client.classify_shot(good.clone()).expect("server alive");
    assert_eq!(
        states,
        BatchDiscriminator::new(sys.discriminators()).classify_shot(&good)
    );
    // The floor is per qubit: a mid-circuit truncation of an FNN-A qubit
    // (floor 15) below the FNN-B floor (100) is still a servable request.
    let mut truncated = sys.test_data().shot(2).clone();
    truncated.traces[0].i.truncate(72);
    truncated.traces[0].q.truncate(72);
    let states = client.classify_shot(truncated.clone()).expect("per-qubit floor");
    assert_eq!(
        states,
        BatchDiscriminator::new(sys.discriminators()).classify_shot(&truncated)
    );
    let stats = server.shutdown();
    assert_eq!(stats.requests, 2, "rejected request must not be counted as served");
}

#[test]
fn invalid_configs_panic_at_start_not_silently_on_the_collector() {
    let zero_chunk = std::panic::catch_unwind(|| {
        ReadoutServer::start(
            system(),
            ServeConfig {
                chunk_size: Some(0),
                ..ServeConfig::default()
            },
        )
    });
    assert!(zero_chunk.is_err(), "chunk_size Some(0) must be rejected");
    let zero_batch = std::panic::catch_unwind(|| {
        ReadoutServer::start(
            system(),
            ServeConfig {
                max_batch_shots: 0,
                ..ServeConfig::default()
            },
        )
    });
    assert!(zero_batch.is_err(), "max_batch_shots 0 must be rejected");
}

#[test]
fn chunk_size_override_changes_nothing_but_scheduling() {
    let sys = system();
    let shots = sys.test_data().shots().to_vec();
    let reference = BatchDiscriminator::new(sys.discriminators()).classify_shots(&shots);
    for chunk in [1usize, 7, 1024] {
        let server = ReadoutServer::start(
            system(),
            ServeConfig {
                chunk_size: Some(chunk),
                ..ServeConfig::default()
            },
        );
        let served = server.client().classify_shots(shots.clone()).expect("server alive");
        assert_eq!(served, reference, "chunk {chunk} diverged");
        server.shutdown();
    }
}
