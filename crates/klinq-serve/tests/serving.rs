//! End-to-end serving tests: coalesced responses must be exactly what a
//! direct batched classification would produce, for every client, on
//! both backends, under real concurrency.

use klinq_core::testkit;
use klinq_core::{Backend, BatchDiscriminator, KlinqSystem};
use klinq_serve::{ReadoutServer, ServeConfig, ServeError};
use std::path::Path;
use std::sync::{Arc, Barrier, OnceLock};
use std::time::Duration;

/// The shared smoke system (disk-cached across the workspace's test
/// binaries, see `klinq_core::testkit`).
fn system() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| {
        Arc::new(testkit::cached_smoke_system(Path::new(env!(
            "CARGO_TARGET_TMPDIR"
        ))))
    }))
}

#[test]
fn single_client_matches_direct_batch_on_both_backends() {
    let sys = system();
    let shots = sys.test_data().shots().to_vec();
    for backend in Backend::ALL {
        let server = ReadoutServer::start(
            system(),
            ServeConfig {
                backend,
                ..ServeConfig::default()
            },
        );
        let served = server.client().classify_shots(shots.clone()).expect("server alive");
        let direct = BatchDiscriminator::new(sys.discriminators()).classify_shots_on(backend, &shots);
        assert_eq!(served, direct, "served results diverged on {backend}");
        let stats = server.shutdown();
        assert_eq!(stats.shots, shots.len() as u64);
        assert_eq!(stats.requests, 1);
    }
}

#[test]
fn four_concurrent_clients_each_get_their_own_results() {
    let sys = system();
    let shots = sys.test_data().shots();
    let direct = BatchDiscriminator::new(sys.discriminators()).classify_shots(shots);

    // Generous linger so the four clients' requests actually coalesce.
    let server = ReadoutServer::start(
        system(),
        ServeConfig {
            max_linger: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    );
    let n_clients = 4;
    let rounds = 3;
    let barrier = Barrier::new(n_clients);
    std::thread::scope(|scope| {
        for c in 0..n_clients {
            let client = server.client();
            let barrier = &barrier;
            let direct = &direct;
            scope.spawn(move || {
                // Interleaved slices so every client's shots are spread
                // over the whole set, several requests per client.
                for round in 0..rounds {
                    let indices: Vec<usize> = (0..shots.len())
                        .filter(|i| (i + round) % n_clients == c)
                        .collect();
                    let mine: Vec<_> = indices.iter().map(|&i| shots[i].clone()).collect();
                    barrier.wait();
                    let states = client.classify_shots(mine).expect("server alive");
                    assert_eq!(states.len(), indices.len());
                    for (k, &i) in indices.iter().enumerate() {
                        assert_eq!(states[k], direct[i], "client {c} shot {i} diverged");
                    }
                }
            });
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.requests, (n_clients * rounds) as u64);
    assert_eq!(stats.shots, (shots.len() * rounds) as u64);
    // Coalescing must have actually merged concurrent requests: with
    // four barrier-aligned clients and a 100 ms linger, the collector
    // cannot have run one batch per request every single round.
    assert!(
        stats.batches < stats.requests,
        "no coalescing happened: {stats:?}"
    );
    assert!(stats.largest_batch > (shots.len() / n_clients) as u64, "{stats:?}");
}

#[test]
fn oversized_request_is_never_split() {
    let sys = system();
    let shots = sys.test_data().shots().to_vec();
    let server = ReadoutServer::start(
        system(),
        ServeConfig {
            // Budget far below the request size: the request must still
            // be answered atomically in one oversized batch.
            max_batch_shots: 8,
            max_linger: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let served = server.client().classify_shots(shots.clone()).expect("server alive");
    let direct = BatchDiscriminator::new(sys.discriminators()).classify_shots(&shots);
    assert_eq!(served, direct);
    let stats = server.shutdown();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.largest_batch, shots.len() as u64);
}

#[test]
fn single_shot_api_and_empty_requests() {
    let sys = system();
    let shot = sys.test_data().shot(5).clone();
    let server = ReadoutServer::start(system(), ServeConfig::default());
    let client = server.client();
    let states = client.classify_shot(shot.clone()).expect("server alive");
    let direct = BatchDiscriminator::new(sys.discriminators()).classify_shot(&shot);
    assert_eq!(states, direct);
    // Empty requests complete locally without touching the server.
    assert!(client.classify_shots(Vec::new()).expect("empty ok").is_empty());
    let stats = server.shutdown();
    assert_eq!(stats.requests, 1);
}

#[test]
fn clients_fail_fast_after_shutdown() {
    let sys = system();
    let shot = sys.test_data().shot(0).clone();
    let server = ReadoutServer::start(system(), ServeConfig::default());
    let client = server.client();
    server.shutdown();
    assert_eq!(client.classify_shot(shot), Err(ServeError::Closed));
}

#[test]
fn malformed_requests_are_rejected_without_killing_the_server() {
    let sys = system();
    let server = ReadoutServer::start(system(), ServeConfig::default());
    let client = server.client();
    // Traces far below the feature front end's floor: a typed rejection,
    // not a collector panic.
    let mut bad = sys.test_data().shot(0).clone();
    for t in &mut bad.traces {
        t.i.truncate(3);
        t.q.truncate(3);
    }
    match client.classify_shot(bad) {
        Err(ServeError::InvalidRequest(msg)) => {
            assert!(msg.contains("front end"), "{msg}")
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
    // The server is still alive and still serves valid requests.
    let good = sys.test_data().shot(1).clone();
    let states = client.classify_shot(good.clone()).expect("server alive");
    assert_eq!(
        states,
        BatchDiscriminator::new(sys.discriminators()).classify_shot(&good)
    );
    // The floor is per qubit: a mid-circuit truncation of an FNN-A qubit
    // (floor 15) below the FNN-B floor (100) is still a servable request.
    let mut truncated = sys.test_data().shot(2).clone();
    truncated.traces[0].i.truncate(72);
    truncated.traces[0].q.truncate(72);
    let states = client.classify_shot(truncated.clone()).expect("per-qubit floor");
    assert_eq!(
        states,
        BatchDiscriminator::new(sys.discriminators()).classify_shot(&truncated)
    );
    let stats = server.shutdown();
    assert_eq!(stats.requests, 2, "rejected request must not be counted as served");
}

#[test]
fn invalid_configs_panic_at_start_not_silently_on_the_collector() {
    let zero_chunk = std::panic::catch_unwind(|| {
        ReadoutServer::start(
            system(),
            ServeConfig {
                chunk_size: Some(0),
                ..ServeConfig::default()
            },
        )
    });
    assert!(zero_chunk.is_err(), "chunk_size Some(0) must be rejected");
    let zero_batch = std::panic::catch_unwind(|| {
        ReadoutServer::start(
            system(),
            ServeConfig {
                max_batch_shots: 0,
                ..ServeConfig::default()
            },
        )
    });
    assert!(zero_batch.is_err(), "max_batch_shots 0 must be rejected");
}

#[test]
fn chunk_size_override_changes_nothing_but_scheduling() {
    let sys = system();
    let shots = sys.test_data().shots().to_vec();
    let reference = BatchDiscriminator::new(sys.discriminators()).classify_shots(&shots);
    for chunk in [1usize, 7, 1024] {
        let server = ReadoutServer::start(
            system(),
            ServeConfig {
                chunk_size: Some(chunk),
                ..ServeConfig::default()
            },
        );
        let served = server.client().classify_shots(shots.clone()).expect("server alive");
        assert_eq!(served, reference, "chunk {chunk} diverged");
        server.shutdown();
    }
}
