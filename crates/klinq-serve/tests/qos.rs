//! Multi-tenant QoS end to end: tenant identity threads from client
//! options through intake, scheduling and stats; quota overruns shed
//! typed with a retry-after hint; an unknown tenant is a typed
//! per-request error on every transport, never a hang-up.

use klinq_core::testkit;
use klinq_core::KlinqSystem;
use klinq_serve::{
    Priority, ReadoutServer, RequestOptions, SchedPolicy, ServeConfig, ServeError,
    ShardedReadoutServer, TenantId, TenantSpec, WireClient, WireServer,
};
use std::net::TcpListener;
use std::path::Path;
use std::sync::{mpsc, Arc, OnceLock};
use std::time::Duration;

/// The shared smoke system (disk-cached across the workspace's test
/// binaries, see `klinq_core::testkit`).
fn system() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| {
        Arc::new(testkit::cached_smoke_system(Path::new(env!(
            "CARGO_TARGET_TMPDIR"
        ))))
    }))
}

fn two_tenant_policy() -> SchedPolicy {
    SchedPolicy::new(vec![
        TenantSpec::new("gold", 3),
        TenantSpec::new("bronze", 1).with_quota(12),
    ])
}

#[test]
fn tenant_identity_lands_in_per_tenant_stats() {
    let server = ReadoutServer::start(
        system(),
        ServeConfig {
            sched: two_tenant_policy(),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let shots = system().test_data().shots()[..6].to_vec();
    client
        .classify_shots_opts(RequestOptions::new().tenant(TenantId(0)), shots[..4].to_vec())
        .expect("gold request served");
    client
        .classify_shots_opts(RequestOptions::new().tenant(TenantId(1)), shots[4..].to_vec())
        .expect("bronze request served");

    let stats = server.tenant_stats();
    assert_eq!(stats.len(), 2);
    assert_eq!((stats[0].name.as_str(), stats[0].weight), ("gold", 3));
    assert_eq!((stats[1].name.as_str(), stats[1].weight), ("bronze", 1));
    assert_eq!((stats[0].requests, stats[0].shots), (1, 4));
    assert_eq!((stats[1].requests, stats[1].shots), (1, 2));
    assert_eq!(stats[0].shed + stats[1].shed, 0);
    server.shutdown();
}

#[test]
fn quota_overrun_sheds_typed_with_a_retry_hint() {
    let server = ReadoutServer::start(
        system(),
        ServeConfig {
            // A long linger holds admitted requests queued, so the
            // second bronze request meets a full quota (12 shots) while
            // the first (8) still occupies it.
            max_linger: Duration::from_millis(300),
            max_batch_shots: 10_000,
            sched: two_tenant_policy(),
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let shots = system().test_data().shots().to_vec();
    // Warm the service-rate estimate: one latency-class batch executes
    // immediately and feeds the EWMA behind the retry-after hint.
    client
        .classify_shots_opts(
            RequestOptions::new().tenant(TenantId(0)).priority(Priority::Latency),
            shots[..4].to_vec(),
        )
        .expect("warmup served");

    let (tx, rx) = mpsc::channel();
    for i in 0..2 {
        let tx = tx.clone();
        client
            .submit_opts(
                RequestOptions::new().tenant(TenantId(1)),
                shots[..8].to_vec(),
                move |result| {
                    let _ = tx.send((i, result.map(|s| s.len())));
                },
            )
            .expect("intake channel open");
    }
    let mut outcomes = [None, None];
    for _ in 0..2 {
        let (i, result) = rx.recv_timeout(Duration::from_secs(10)).expect("answered");
        outcomes[i] = Some(result);
    }
    // FIFO intake: the first request occupies the quota and is served
    // after the linger; the second overruns 12 and sheds immediately —
    // typed, with a backlog-derived hint (the EWMA is warm).
    assert_eq!(outcomes[0], Some(Ok(8)));
    match outcomes[1].take().expect("collected") {
        Err(ServeError::Overloaded { retry_after }) => {
            let hint = retry_after.expect("warm EWMA yields a hint");
            assert!(
                hint >= Duration::from_micros(100) && hint <= Duration::from_secs(5),
                "hint {hint:?} outside sane bounds"
            );
        }
        other => panic!("quota overrun got {other:?}, want Overloaded"),
    }
    let stats = server.tenant_stats();
    assert_eq!(stats[1].shed, 1);
    server.shutdown();
}

#[test]
fn unknown_tenant_is_rejected_synchronously_in_process() {
    let server = ReadoutServer::start(system(), ServeConfig::default());
    let client = server.client();
    let shots = system().test_data().shots()[..2].to_vec();
    let err = client
        .classify_shots_opts(RequestOptions::new().tenant(TenantId(7)), shots.clone())
        .expect_err("tenant 7 is not in the default single-tenant table");
    assert_eq!(err, ServeError::UnknownTenant(7));
    // The server is unharmed: the default tenant still serves.
    assert_eq!(client.classify_shots(shots).expect("served").len(), 2);
    server.shutdown();
}

#[test]
fn unknown_tenant_over_the_wire_is_a_typed_frame_not_a_hangup() {
    let fleet = ShardedReadoutServer::start(
        vec![system()],
        ServeConfig {
            sched: two_tenant_policy(),
            ..ServeConfig::default()
        },
    );
    let server = WireServer::start(
        &fleet,
        TcpListener::bind("127.0.0.1:0").expect("bind loopback"),
    )
    .expect("start wire server");
    let mut client = WireClient::connect(server.local_addr(), 0).expect("connect");
    let shots = system().test_data().shots()[..3].to_vec();

    let bad = client
        .submit_opts(RequestOptions::new().tenant(TenantId(u32::MAX)), &shots)
        .expect("submission is accepted; the rejection arrives as a frame");
    let (req_id, result) = client.recv_response().expect("connection stays up");
    assert_eq!(req_id, bad);
    assert_eq!(result.unwrap_err(), ServeError::UnknownTenant(u32::MAX));

    // Same connection, valid tenant: still serving.
    let served = client
        .classify_shots_opts(RequestOptions::new().tenant(TenantId(1)), &shots)
        .expect("valid tenant served on the same connection");
    assert_eq!(served.len(), 3);

    drop(client);
    server.shutdown();
    fleet.shutdown();
}

#[test]
fn fleet_tenant_stats_merge_across_shards() {
    let fleet = ShardedReadoutServer::start(
        vec![system(), system()],
        ServeConfig {
            sched: two_tenant_policy(),
            ..ServeConfig::default()
        },
    );
    let shots = system().test_data().shots()[..4].to_vec();
    for device in 0..2 {
        fleet
            .client(device)
            .classify_shots_opts(RequestOptions::new().tenant(TenantId(0)), shots.clone())
            .expect("served");
    }
    let stats = fleet.tenant_stats();
    assert_eq!(stats.len(), 2);
    assert_eq!(stats[0].requests, 2, "one gold request per shard");
    assert_eq!(stats[0].shots, 8);
    assert_eq!(stats[1].requests, 0);
    fleet.shutdown();
}
