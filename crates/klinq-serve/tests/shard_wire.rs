//! Sharded + wire-protocol serving end to end: a TCP client against a
//! two-device fleet must see exactly what direct batched classification
//! produces, on both backends, and the priority lane must observably
//! skip the linger window.

use klinq_core::testkit;
use klinq_core::{persist, Backend, BatchDiscriminator, KlinqSystem};
use klinq_serve::{
    wire, Priority, ServeConfig, ServeError, ShardedReadoutServer, WireClient, WireServer,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The shared smoke system (disk-cached across the workspace's test
/// binaries, see `klinq_core::testkit`).
fn system() -> Arc<KlinqSystem> {
    static SYS: OnceLock<Arc<KlinqSystem>> = OnceLock::new();
    Arc::clone(SYS.get_or_init(|| {
        Arc::new(testkit::cached_smoke_system(Path::new(env!(
            "CARGO_TARGET_TMPDIR"
        ))))
    }))
}

#[test]
fn wire_clients_match_direct_batches_on_a_two_device_fleet() {
    let sys = system();
    let shots = sys.test_data().shots().to_vec();
    for backend in Backend::ALL {
        // Two device shards (the same trained system twice: a second
        // training would dominate the suite's wall clock without
        // exercising any extra sharding or wire code).
        let fleet = ShardedReadoutServer::start(
            vec![system(), system()],
            ServeConfig {
                backend,
                ..ServeConfig::default()
            },
        );
        let server =
            WireServer::start(&fleet, TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
                .expect("start wire server");
        let direct =
            BatchDiscriminator::new(sys.discriminators()).classify_shots_on(backend, &shots);
        for device in 0..2u16 {
            let mut client =
                WireClient::connect(server.local_addr(), device).expect("connect loopback");
            let states = client.classify_shots(&shots).expect("served over the wire");
            assert_eq!(
                states, direct,
                "wire states diverged from direct on {backend}, device {device}"
            );
        }
        // Device routing is validated at the wire front end: an unknown
        // device is a typed rejection, not a panic or a hang.
        let mut stray =
            WireClient::connect(server.local_addr(), 7).expect("connect loopback");
        match stray.classify_shot(&shots[0]) {
            Err(ServeError::InvalidRequest(msg)) => assert!(msg.contains("device"), "{msg}"),
            other => panic!("expected InvalidRequest for unknown device, got {other:?}"),
        }
        server.shutdown();
        let stats = fleet.shutdown();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.shots, 2 * shots.len() as u64);
        assert_eq!(stats.batches, 2);
    }
}

#[test]
fn in_process_sharded_clients_route_and_aggregate_stats() {
    let sys = system();
    let shots = sys.test_data().shots();
    let direct = BatchDiscriminator::new(sys.discriminators()).classify_shots(shots);
    let fleet = ShardedReadoutServer::start(vec![system(), system()], ServeConfig::default());
    assert_eq!(fleet.devices(), 2);
    // Device 0 sees two requests, device 1 sees one.
    let d0 = fleet.client(0);
    let d1 = fleet.client(1);
    assert_eq!(d0.classify_shots(shots[..8].to_vec()).unwrap(), direct[..8]);
    assert_eq!(d0.classify_shots(shots[8..12].to_vec()).unwrap(), direct[8..12]);
    assert_eq!(d1.classify_shots(shots[12..20].to_vec()).unwrap(), direct[12..20]);
    let per_shard = fleet.shard_stats();
    assert_eq!(per_shard.len(), 2);
    assert_eq!(per_shard[0].requests, 2);
    assert_eq!(per_shard[0].shots, 12);
    assert_eq!(per_shard[1].requests, 1);
    assert_eq!(per_shard[1].shots, 8);
    let total = fleet.stats();
    assert_eq!(total.requests, 3);
    assert_eq!(total.shots, 20);
    assert_eq!(total.largest_batch, 8);
    let final_stats = fleet.shutdown();
    assert_eq!(final_stats.requests, 3);
}

#[test]
fn fleet_deploys_from_a_device_bundle() {
    let sys = system();
    let dir = std::env::temp_dir().join(format!("klinq_shard_bundle_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fleet.json");
    persist::save_device_bundle(&path, &[sys.as_ref(), sys.as_ref()]).unwrap();
    let fleet = ShardedReadoutServer::load_bundle(&path, ServeConfig::default())
        .expect("bundle loads into a fleet");
    assert_eq!(fleet.devices(), 2);
    let shot = sys.test_data().shot(3).clone();
    let expected = BatchDiscriminator::new(sys.discriminators()).classify_shot(&shot);
    for device in 0..2 {
        assert_eq!(
            fleet.client(device).classify_shot(shot.clone()).unwrap(),
            expected,
            "bundle-loaded device {device} diverged"
        );
    }
    fleet.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wire_latency_priority_skips_the_linger_window() {
    let sys = system();
    let shot = sys.test_data().shot(0).clone();
    let fleet = ShardedReadoutServer::start(
        vec![system()],
        ServeConfig {
            // Long enough that only the priority lane can answer in time.
            max_linger: Duration::from_secs(600),
            max_batch_shots: usize::MAX,
            ..ServeConfig::default()
        },
    );
    let server = WireServer::start(&fleet, TcpListener::bind("127.0.0.1:0").unwrap()).unwrap();
    let mut client = WireClient::connect(server.local_addr(), 0).unwrap();
    let start = Instant::now();
    let states = client
        .classify_shots_with_priority(Priority::Latency, std::slice::from_ref(&shot))
        .expect("served over the wire");
    let elapsed = start.elapsed();
    assert_eq!(
        states[0],
        BatchDiscriminator::new(sys.discriminators()).classify_shot(&shot)
    );
    assert!(
        elapsed < Duration::from_secs(60),
        "wire latency request waited out the linger: {elapsed:?}"
    );
    server.shutdown();
    let stats = fleet.shutdown();
    assert_eq!(stats.latency_requests, 1);
    assert_eq!(stats.expedited_batches, 1, "{stats:?}");
}

#[test]
fn wire_shutdown_does_not_deadlock_on_an_in_flight_lingering_batch() {
    // A wire request parked in an unfilled batch under an infinite
    // linger can only be answered by the FLEET's shutdown; the wire
    // front end's shutdown must return promptly anyway (it must not
    // block joining the parked handler), and the client must still get
    // its reply when the fleet closes the batch.
    let sys = system();
    let shots = sys.test_data().shots()[..3].to_vec();
    let direct = BatchDiscriminator::new(sys.discriminators()).classify_shots(&shots);
    let fleet = ShardedReadoutServer::start(
        vec![system()],
        ServeConfig {
            max_linger: Duration::MAX,
            max_batch_shots: usize::MAX,
            ..ServeConfig::default()
        },
    );
    let server = WireServer::start(&fleet, TcpListener::bind("127.0.0.1:0").unwrap()).unwrap();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        let request = {
            let shots = shots.clone();
            scope.spawn(move || {
                let mut client = WireClient::connect(addr, 0).expect("connect loopback");
                client.classify_shots(&shots)
            })
        };
        // Let the request reach the collector and open its batch.
        std::thread::sleep(Duration::from_millis(200));
        let t0 = Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "wire shutdown blocked on the parked handler"
        );
        let stats = fleet.shutdown();
        assert_eq!(stats.requests, 1);
        let states = request
            .join()
            .expect("client thread")
            .expect("answered when the fleet closed the batch");
        assert_eq!(states, direct);
    });
}

#[test]
fn wire_rejections_reach_the_client_typed() {
    let sys = system();
    let fleet = ShardedReadoutServer::start(vec![system()], ServeConfig::default());
    let server = WireServer::start(&fleet, TcpListener::bind("127.0.0.1:0").unwrap()).unwrap();
    let mut client = WireClient::connect(server.local_addr(), 0).unwrap();
    // A request the serving system cannot classify: the intake
    // validation's typed rejection crosses the wire intact.
    let mut bad = sys.test_data().shot(0).clone();
    for t in &mut bad.traces {
        t.i.truncate(3);
        t.q.truncate(3);
    }
    match client.classify_shot(&bad) {
        Err(ServeError::InvalidRequest(msg)) => assert!(msg.contains("front end"), "{msg}"),
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
    // A ragged trace (I and Q lengths differing) must cross the wire
    // intact — the format carries both counts — and earn the same typed
    // intake rejection an in-process client gets, not a corrupt frame.
    let mut ragged = sys.test_data().shot(4).clone();
    let shorter = ragged.traces[2].q.len() - 1;
    ragged.traces[2].q.truncate(shorter);
    match client.classify_shot(&ragged) {
        Err(ServeError::InvalidRequest(msg)) => assert!(msg.contains("samples but Q"), "{msg}"),
        other => panic!("expected InvalidRequest for ragged trace, got {other:?}"),
    }
    // The connection survives a rejection: valid requests still serve.
    let good = sys.test_data().shot(1).clone();
    assert_eq!(
        client.classify_shot(&good).expect("connection still serves"),
        BatchDiscriminator::new(sys.discriminators()).classify_shot(&good)
    );
    server.shutdown();
    fleet.shutdown();
}

#[test]
fn garbage_frames_get_a_typed_protocol_error_not_a_dead_server() {
    let fleet = ShardedReadoutServer::start(vec![system()], ServeConfig::default());
    let server = WireServer::start(&fleet, TcpListener::bind("127.0.0.1:0").unwrap()).unwrap();
    // A raw socket speaking nonsense: the server must answer with a
    // typed error frame, close that connection, and keep serving others.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let junk = *b"completely not a klinq frame";
    raw.write_all(&(junk.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&junk).unwrap();
    let payload = wire::read_frame(&mut raw)
        .expect("server answers before hanging up")
        .expect("an error frame, not a silent close");
    match wire::decode_message(&payload) {
        Ok(wire::WireMessage::Error {
            req_id: wire::CONNECTION_REQ_ID,
            error: ServeError::Protocol(msg),
        }) => {
            assert!(msg.contains("magic"), "{msg}")
        }
        other => panic!("expected a connection-level protocol error frame, got {other:?}"),
    }
    // After the error the server hangs up on the corrupt stream.
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    // And a well-behaved client on a fresh connection still serves.
    let sys = system();
    let shot = sys.test_data().shot(2).clone();
    let mut client = WireClient::connect(server.local_addr(), 0).unwrap();
    assert_eq!(
        client.classify_shot(&shot).expect("server alive"),
        BatchDiscriminator::new(sys.discriminators()).classify_shot(&shot)
    );
    server.shutdown();
    fleet.shutdown();
}
