//! Model persistence: a trained [`KlinqSystem`] as a loadable artifact.
//!
//! The paper's whole point is *deployable* lightweight discriminators,
//! so a trained system must be shippable without retraining. This module
//! serializes everything inference needs — the five
//! [`crate::KlinqDiscriminator`]s (student networks, fitted feature
//! pipelines, compiled Q16.16 datapaths), the five teachers (Baseline-FNN
//! comparators, still needed for re-distillation sweeps) and the
//! [`ExperimentConfig`] — into one versioned JSON artifact.
//!
//! The datasets are **not** stored: everything stochastic in generation
//! derives from the config's seeds, so [`KlinqSystem::load`] regenerates
//! the exact same training/held-out shots bit for bit. Combined with the
//! exact float round-trip of the vendored JSON writer (shortest
//! representation that parses back to the same bits), a loaded system is
//! indistinguishable from the one that was saved:
//! `load(save(sys)).evaluate_on(b) == sys.evaluate_on(b)` exactly, for
//! both [`Backend`](crate::Backend)s.
//!
//! # Format
//!
//! ```json
//! {
//!   "format": "klinq-system",
//!   "version": 3,
//!   "checksum": 1234567890,
//!   "config": { ... },
//!   "teachers": [ ... ],
//!   "discriminators": [ ... ]
//! }
//! ```
//!
//! Unknown format markers and future versions are rejected with
//! [`KlinqError::Artifact`] rather than misparsed. The `checksum` field
//! (version 3+) is an FNV-1a hash of the artifact's own serialized
//! contents (with the checksum field zeroed); a bit-flipped or
//! hand-edited artifact fails the load with a typed corruption error
//! instead of deserializing into a subtly wrong model. The hash is
//! well-defined because the vendored JSON writer emits every float in
//! its shortest exact round-trip form — re-serializing a parsed
//! artifact reproduces the saved bytes exactly.
//!
//! # Multi-device bundles
//!
//! Sharded serving (`klinq-serve`) runs several trained systems — one
//! per physical device — behind one intake. [`save_device_bundle`] /
//! [`load_device_bundle`] ship that fleet as one versioned artifact
//! (`"format": "klinq-bundle"`) whose `devices` array holds ordinary
//! system artifacts; every per-system guarantee (exact float round-trip,
//! load-time consistency checks, typed errors) applies to each device.
//! Integrity is deliberately **per-device** — each nested system
//! artifact carries its own checksum, the bundle envelope none — so one
//! corrupt device quarantines that shard alone:
//! [`load_device_bundle_quarantined`] returns a per-device
//! `Result`, letting a fleet boot degraded and report exactly which
//! shard is down.

use crate::discriminator::{KlinqDiscriminator, KlinqSystem};
use crate::error::KlinqError;
use crate::experiments::ExperimentConfig;
use crate::teacher::Teacher;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The artifact's `format` marker.
const FORMAT: &str = "klinq-system";
/// The current artifact version. Version history:
///
/// - 1: initial format.
/// - 2: `QuantizedDense` weights flattened to one row-major buffer (the
///   batched Q16.16 kernel streams them contiguously), and the float
///   feature pipeline re-baselined to the blocked averaging summation
///   order — version-1 artifacts would neither deserialize nor reproduce
///   the new float path bit for bit, so they are rejected and retrained.
/// - 3: a mandatory `checksum` field (FNV-1a over the artifact's own
///   serialized contents with the checksum zeroed) so corruption fails
///   typed at load instead of deserializing into a subtly wrong model.
const VERSION: u32 = 3;

/// The device-bundle artifact's `format` marker.
const BUNDLE_FORMAT: &str = "klinq-bundle";
/// The current device-bundle version. The bundle versions independently
/// of the per-system artifact it nests: version 1 wrapped version-2
/// system artifacts; version 2 wraps the checksummed version-3 ones.
const BUNDLE_VERSION: u32 = 2;

/// On-disk shape of a saved system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SystemArtifact {
    format: String,
    version: u32,
    /// FNV-1a over this artifact's serialized JSON with this field set
    /// to `0` — see [`artifact_checksum`].
    checksum: u64,
    config: ExperimentConfig,
    teachers: Vec<Teacher>,
    discriminators: Vec<KlinqDiscriminator>,
}

/// On-disk shape of a multi-device bundle: one system artifact per
/// device, in shard order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BundleArtifact {
    format: String,
    version: u32,
    devices: Vec<SystemArtifact>,
}

impl KlinqSystem {
    /// Serializes this system to the versioned artifact JSON.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError::Artifact`] if serialization fails (only
    /// possible for non-finite values, which a trained system never
    /// contains).
    pub fn to_artifact_json(&self) -> Result<String, KlinqError> {
        serde_json::to_string(&self.artifact()?).map_err(|e| KlinqError::Artifact(e.to_string()))
    }

    /// The serializable artifact view of this system, checksum sealed.
    fn artifact(&self) -> Result<SystemArtifact, KlinqError> {
        let mut artifact = SystemArtifact {
            format: FORMAT.to_string(),
            version: VERSION,
            checksum: 0,
            config: self.config().clone(),
            teachers: self.teachers().to_vec(),
            discriminators: self.discriminators().to_vec(),
        };
        artifact.checksum = artifact_checksum(&artifact)?;
        Ok(artifact)
    }

    /// Rebuilds a system from artifact JSON, regenerating the datasets
    /// from the stored configuration's seeds.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError::Artifact`] on malformed JSON, a wrong
    /// format marker, an unsupported version or inconsistent contents,
    /// and [`KlinqError::InvalidConfig`] if the stored configuration is
    /// unusable.
    pub fn from_artifact_json(json: &str) -> Result<Self, KlinqError> {
        // Peek at the format marker and version through an untyped parse
        // *before* deserializing the full artifact: older versions also
        // differ structurally (v1 stored nested `QuantizedDense` weight
        // rows), so a typed parse of a v1 file would die on a field-shape
        // serde error instead of the version message this module
        // promises.
        peek_marker(json, FORMAT, VERSION)?;
        let artifact: SystemArtifact =
            serde_json::from_str(json).map_err(|e| KlinqError::Artifact(e.to_string()))?;
        Self::from_artifact(artifact)
    }

    /// Validates an already-parsed artifact and rebuilds its system,
    /// regenerating the datasets from the stored configuration.
    fn from_artifact(artifact: SystemArtifact) -> Result<Self, KlinqError> {
        // Re-checked here (not only in the top-level peek) because
        // bundle loading reaches this point with *nested* artifacts whose
        // markers the peek never saw.
        if artifact.format != FORMAT {
            return Err(KlinqError::Artifact(format!(
                "unknown format marker `{}` (expected `{FORMAT}`)",
                artifact.format
            )));
        }
        if artifact.version != VERSION {
            return Err(KlinqError::Artifact(format!(
                "unsupported artifact version {} (this build reads {VERSION})",
                artifact.version
            )));
        }
        // Integrity gate before any semantic check: a corrupt artifact
        // should say "corrupt", not whatever downstream check its
        // flipped bits happen to trip first.
        let expected = artifact_checksum(&artifact)?;
        if artifact.checksum != expected {
            return Err(KlinqError::Artifact(format!(
                "artifact checksum mismatch: stored {:#018x}, contents hash to {expected:#018x} \
                 — the artifact is corrupt",
                artifact.checksum
            )));
        }
        if artifact.discriminators.len() != 5 || artifact.teachers.len() != 5 {
            return Err(KlinqError::Artifact(format!(
                "expected 5 discriminators and 5 teachers, got {} and {}",
                artifact.discriminators.len(),
                artifact.teachers.len()
            )));
        }
        for (qb, d) in artifact.discriminators.iter().enumerate() {
            if d.qubit() != qb {
                return Err(KlinqError::Artifact(format!(
                    "discriminator {qb} claims qubit {}",
                    d.qubit()
                )));
            }
        }
        for (qb, t) in artifact.teachers.iter().enumerate() {
            if t.qubit() != qb {
                return Err(KlinqError::Artifact(format!(
                    "teacher {qb} claims qubit {}",
                    t.qubit()
                )));
            }
        }
        artifact.config.validate()?;
        let (train_data, test_data) = Self::datasets_for(&artifact.config);
        // Cross-consistency: the stored models must actually fit the
        // traces the stored config regenerates, otherwise the first
        // prediction would panic deep inside feature extraction instead
        // of load() failing with a typed error (e.g. a hand-edited
        // `duration_ns` shorter than the fitted front ends expect).
        let samples = test_data.samples().min(train_data.samples());
        for (qb, d) in artifact.discriminators.iter().enumerate() {
            let needed = d.student().pipeline.averager().outputs();
            if needed > samples {
                return Err(KlinqError::Artifact(format!(
                    "discriminator {qb}'s pipeline averages {needed} points per channel \
                     but the config's traces carry only {samples} samples"
                )));
            }
        }
        for (qb, t) in artifact.teachers.iter().enumerate() {
            let needed = t.net().input_dim();
            if needed > 2 * samples {
                return Err(KlinqError::Artifact(format!(
                    "teacher {qb} expects {needed} raw inputs but the config's traces \
                     flatten to only {} samples",
                    2 * samples
                )));
            }
        }
        Ok(Self::from_parts(
            artifact.discriminators,
            artifact.teachers,
            train_data,
            test_data,
            artifact.config,
        ))
    }

    /// Writes this trained system to `path` as a versioned JSON artifact.
    ///
    /// The write goes through a sibling temporary file plus an atomic
    /// rename, so a crash mid-save never leaves a truncated artifact
    /// where a loadable one is expected.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError::Io`] if the file cannot be written and
    /// [`KlinqError::Artifact`] if serialization fails.
    pub fn save(&self, path: &Path) -> Result<(), KlinqError> {
        write_atomic(path, &self.to_artifact_json()?)
    }

    /// Loads a system previously written by [`Self::save`].
    ///
    /// The datasets are regenerated deterministically from the stored
    /// configuration, so the loaded system's predictions — and its
    /// [`Self::evaluate_on`](KlinqSystem::evaluate_on) reports — are
    /// bitwise-identical to the saved one's on both backends.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError::Io`] if the file cannot be read and
    /// [`KlinqError::Artifact`] if its contents are malformed.
    pub fn load(path: &Path) -> Result<Self, KlinqError> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| KlinqError::Io(format!("{}: {e}", path.display())))?;
        Self::from_artifact_json(&json)
    }
}

/// FNV-1a over a byte string: tiny, dependency-free, and plenty to
/// catch bit flips and hand edits (this is an integrity check, not a
/// cryptographic signature).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The checksum an artifact's contents *should* carry: FNV-1a over its
/// serialized JSON with the checksum field zeroed. Well-defined because
/// the vendored JSON writer emits floats in shortest exact round-trip
/// form, so serialize → parse → serialize is byte-stable.
fn artifact_checksum(artifact: &SystemArtifact) -> Result<u64, KlinqError> {
    let mut scratch = artifact.clone();
    scratch.checksum = 0;
    let json = serde_json::to_string(&scratch).map_err(|e| KlinqError::Artifact(e.to_string()))?;
    Ok(fnv1a(json.as_bytes()))
}

/// Checks a JSON artifact's `format`/`version` markers through an
/// untyped parse *before* the typed deserialize: structurally old
/// versions would otherwise die on a field-shape serde error instead of
/// the version message this module promises.
fn peek_marker(json: &str, want_format: &str, want_version: u32) -> Result<(), KlinqError> {
    let peek: serde_json::Value =
        serde_json::from_str(json).map_err(|e| KlinqError::Artifact(e.to_string()))?;
    let format = peek.get("format").and_then(|v| v.as_str()).unwrap_or("");
    if format != want_format {
        return Err(KlinqError::Artifact(format!(
            "unknown format marker `{format}` (expected `{want_format}`)"
        )));
    }
    // `as_u64`, not a float parse: `as_f64() as u32` would truncate a
    // fractional version (2.3 → 2) into a spurious pass and wrap a
    // negative one — the same lossy-parse class benchdiff's
    // `worker_threads` fix addresses.
    let version = match peek.get("version") {
        None => 0,
        Some(v) => v.as_u64().ok_or_else(|| {
            KlinqError::Artifact(format!(
                "artifact version {v:?} is not an unsigned integer"
            ))
        })?,
    };
    if version != u64::from(want_version) {
        return Err(KlinqError::Artifact(format!(
            "unsupported artifact version {version} (this build reads {want_version})"
        )));
    }
    Ok(())
}

/// Serializes a fleet of trained systems — one per physical device, in
/// shard order — to the versioned `klinq-bundle` JSON.
///
/// # Errors
///
/// Returns [`KlinqError::Artifact`] for an empty fleet (a bundle with no
/// devices cannot shard anything) or if serialization fails.
pub fn device_bundle_to_json(systems: &[&KlinqSystem]) -> Result<String, KlinqError> {
    if systems.is_empty() {
        return Err(KlinqError::Artifact(
            "a device bundle needs at least one system".to_string(),
        ));
    }
    let bundle = BundleArtifact {
        format: BUNDLE_FORMAT.to_string(),
        version: BUNDLE_VERSION,
        devices: systems
            .iter()
            .map(|s| s.artifact())
            .collect::<Result<_, _>>()?,
    };
    serde_json::to_string(&bundle).map_err(|e| KlinqError::Artifact(e.to_string()))
}

/// Rebuilds a device fleet from bundle JSON; element `i` is device `i`'s
/// system, with its datasets regenerated exactly as [`KlinqSystem::load`]
/// would.
///
/// # Errors
///
/// Returns [`KlinqError::Artifact`] on malformed JSON, wrong markers, an
/// empty `devices` array, or any device artifact that fails the
/// per-system consistency checks.
pub fn device_bundle_from_json(json: &str) -> Result<Vec<KlinqSystem>, KlinqError> {
    device_bundle_from_json_quarantined(json)?.into_iter().collect()
}

/// Like [`device_bundle_from_json`], but a device artifact that fails
/// its own integrity or consistency checks is **quarantined** — element
/// `i` is `Err` for that device alone, with the device index in the
/// message — instead of failing the whole bundle. This is what lets a
/// sharded fleet boot degraded (healthy devices serving, the corrupt
/// shard reported `Down`) rather than refuse to start.
///
/// The quarantine covers per-device corruption that keeps the file
/// well-formed JSON (a flipped digit, a hand edit — caught by the
/// device's checksum). Corruption that breaks the JSON grammar itself
/// necessarily fails the whole file, as does a wrong bundle envelope.
///
/// # Errors
///
/// Returns [`KlinqError::Artifact`] on malformed JSON, wrong bundle
/// markers, or an empty `devices` array.
pub fn device_bundle_from_json_quarantined(
    json: &str,
) -> Result<Vec<Result<KlinqSystem, KlinqError>>, KlinqError> {
    peek_marker(json, BUNDLE_FORMAT, BUNDLE_VERSION)?;
    let bundle: BundleArtifact =
        serde_json::from_str(json).map_err(|e| KlinqError::Artifact(e.to_string()))?;
    if bundle.devices.is_empty() {
        return Err(KlinqError::Artifact(
            "device bundle holds no devices".to_string(),
        ));
    }
    Ok(bundle
        .devices
        .into_iter()
        .enumerate()
        .map(|(dev, artifact)| {
            KlinqSystem::from_artifact(artifact)
                .map_err(|e| KlinqError::Artifact(format!("device {dev}: {e}")))
        })
        .collect())
}

/// Writes a multi-device bundle to `path` (atomic rename, like
/// [`KlinqSystem::save`]).
///
/// # Errors
///
/// Returns [`KlinqError::Io`] if the file cannot be written and
/// [`KlinqError::Artifact`] if serialization fails or the fleet is empty.
pub fn save_device_bundle(path: &Path, systems: &[&KlinqSystem]) -> Result<(), KlinqError> {
    write_atomic(path, &device_bundle_to_json(systems)?)
}

/// The one atomic artifact writer every save path shares: a sibling
/// temporary file plus rename, so a crash mid-save never leaves a
/// truncated artifact where a loadable one is expected.
fn write_atomic(path: &Path, json: &str) -> Result<(), KlinqError> {
    let io_err = |e: std::io::Error| KlinqError::Io(format!("{}: {e}", path.display()));
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, json).map_err(io_err)?;
    std::fs::rename(&tmp, path).map_err(io_err)
}

/// Loads a device fleet previously written by [`save_device_bundle`].
///
/// # Errors
///
/// Returns [`KlinqError::Io`] if the file cannot be read and
/// [`KlinqError::Artifact`] if its contents are malformed.
pub fn load_device_bundle(path: &Path) -> Result<Vec<KlinqSystem>, KlinqError> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| KlinqError::Io(format!("{}: {e}", path.display())))?;
    device_bundle_from_json(&json)
}

/// Loads a device fleet with per-device quarantine (see
/// [`device_bundle_from_json_quarantined`]): element `i` is `Err` when
/// device `i`'s artifact is corrupt or inconsistent, without failing
/// the healthy devices around it.
///
/// # Errors
///
/// Returns [`KlinqError::Io`] if the file cannot be read and
/// [`KlinqError::Artifact`] if the bundle envelope itself is malformed.
pub fn load_device_bundle_quarantined(
    path: &Path,
) -> Result<Vec<Result<KlinqSystem, KlinqError>>, KlinqError> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| KlinqError::Io(format!("{}: {e}", path.display())))?;
    device_bundle_from_json_quarantined(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::testutil::smoke_system;

    #[test]
    fn json_round_trip_preserves_the_whole_system() {
        let sys = smoke_system();
        let json = sys.to_artifact_json().unwrap();
        let loaded = KlinqSystem::from_artifact_json(&json).unwrap();
        // Everything — weights, pipelines, compiled datapaths, teachers,
        // config, regenerated datasets — must compare equal.
        assert_eq!(&loaded, sys);
        // And the reports are exactly reproducible on both backends.
        for backend in Backend::ALL {
            assert_eq!(loaded.evaluate_on(backend), sys.evaluate_on(backend));
        }
    }

    #[test]
    fn save_and_load_through_a_file() {
        let sys = smoke_system();
        // Per-process dir: a fixed path would collide across concurrent
        // workspaces sharing the same temp dir.
        let dir = std::env::temp_dir().join(format!("klinq_persist_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("system.json");
        sys.save(&path).unwrap();
        let loaded = KlinqSystem::load(&path).unwrap();
        assert_eq!(&loaded, sys);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn device_bundle_round_trips_every_device() {
        let sys = smoke_system();
        // A two-device fleet (same trained system on both shards — a
        // distinct second training would dominate the suite's wall
        // clock without exercising any extra bundle code).
        let json = device_bundle_to_json(&[sys, sys]).unwrap();
        let fleet = device_bundle_from_json(&json).unwrap();
        assert_eq!(fleet.len(), 2);
        for device in &fleet {
            assert_eq!(device, sys);
        }
        let dir = std::env::temp_dir().join(format!("klinq_bundle_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.json");
        save_device_bundle(&path, &[sys, sys]).unwrap();
        assert_eq!(load_device_bundle(&path).unwrap(), fleet);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_bundles_are_rejected_typed() {
        let sys = smoke_system();
        assert!(matches!(
            device_bundle_to_json(&[]),
            Err(KlinqError::Artifact(_))
        ));
        // A plain system artifact is not a bundle.
        let system_json = sys.to_artifact_json().unwrap();
        let err = device_bundle_from_json(&system_json).unwrap_err();
        assert!(err.to_string().contains("format"), "{err}");
        // Future bundle versions are refused with the version message.
        let json = device_bundle_to_json(&[sys]).unwrap();
        let wrong_version = json.replacen("\"version\":2", "\"version\":99", 1);
        let err = device_bundle_from_json(&wrong_version).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        // An empty device array sharded nothing.
        let empty = r#"{"format":"klinq-bundle","version":2,"devices":[]}"#;
        let err = device_bundle_from_json(empty).unwrap_err();
        assert!(err.to_string().contains("no devices"), "{err}");
        // A corrupted nested device fails with its device index.
        let corrupt = json.replacen("klinq-system", "not-a-system", 1);
        let err = device_bundle_from_json(&corrupt).unwrap_err();
        assert!(err.to_string().contains("device 0"), "{err}");
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = KlinqSystem::load(Path::new("/nonexistent/klinq/system.json")).unwrap_err();
        assert!(matches!(err, KlinqError::Io(_)), "{err}");
        assert!(err.to_string().contains("nonexistent"));
    }

    #[test]
    fn wrong_format_and_version_are_rejected() {
        let sys = smoke_system();
        let json = sys.to_artifact_json().unwrap();
        let wrong_format = json.replacen("klinq-system", "not-a-system", 1);
        let err = KlinqSystem::from_artifact_json(&wrong_format).unwrap_err();
        assert!(matches!(err, KlinqError::Artifact(_)), "{err}");
        assert!(err.to_string().contains("format"));
        let wrong_version = json.replacen("\"version\":3", "\"version\":99", 1);
        let err = KlinqSystem::from_artifact_json(&wrong_version).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // A fractional version must not truncate into a spurious match
        // (3.3 as u32 == 3): it is rejected typed before the shape parse.
        let frac_version = json.replacen("\"version\":3", "\"version\":3.3", 1);
        let err = KlinqSystem::from_artifact_json(&frac_version).unwrap_err();
        assert!(err.to_string().contains("not an unsigned integer"), "{err}");
        // A structurally old artifact (v1 bodies differ — nested
        // QuantizedDense weight rows, fields missing here entirely) must
        // still produce the version message, not a serde shape error:
        // the version peek runs before the typed parse.
        let v1_shape = r#"{"format":"klinq-system","version":1,"legacy":true}"#;
        let err = KlinqSystem::from_artifact_json(v1_shape).unwrap_err();
        assert!(
            err.to_string().contains("unsupported artifact version 1"),
            "{err}"
        );
    }

    #[test]
    fn inconsistent_duration_is_rejected_at_load_not_at_predict() {
        // Hand-edit the stored duration below what the fitted models
        // need: load must fail typed instead of the first prediction
        // panicking inside feature extraction. The raw edit trips the
        // checksum gate first; resealing the checksum gets past it and
        // proves the semantic cross-check still stands on its own.
        let sys = smoke_system();
        let json = sys.to_artifact_json().unwrap();
        assert!(json.contains("\"duration_ns\":300.0"), "smoke duration changed?");
        let shrunk = json.replacen("\"duration_ns\":300.0", "\"duration_ns\":200.0", 1);
        let err = KlinqSystem::from_artifact_json(&shrunk).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        let mut resealed: SystemArtifact = serde_json::from_str(&shrunk).unwrap();
        resealed.checksum = artifact_checksum(&resealed).unwrap();
        let resealed = serde_json::to_string(&resealed).unwrap();
        let err = KlinqSystem::from_artifact_json(&resealed).unwrap_err();
        assert!(matches!(err, KlinqError::Artifact(_)), "{err}");
        assert!(err.to_string().contains("samples"), "{err}");
    }

    /// Flips the stored checksum value itself — the smallest corruption
    /// that keeps the JSON well-formed. `nth` selects which `checksum`
    /// field when several artifacts nest in one file (0 = first).
    fn flip_checksum(json: &str, nth: usize) -> String {
        let needle = "\"checksum\":";
        let mut at = 0;
        for _ in 0..=nth {
            at += json[at..].find(needle).expect("checksum field") + needle.len();
        }
        let end = at + json[at..]
            .find(|c: char| !c.is_ascii_digit())
            .expect("digits end");
        let stored: u64 = json[at..end].parse().expect("checksum digits");
        format!("{}{}{}", &json[..at], stored ^ 1, &json[end..])
    }

    #[test]
    fn corruption_fails_the_checksum_gate_typed() {
        let sys = smoke_system();
        let json = sys.to_artifact_json().unwrap();
        let err = KlinqSystem::from_artifact_json(&flip_checksum(&json, 0)).unwrap_err();
        assert!(matches!(err, KlinqError::Artifact(_)), "{err}");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn corrupt_device_is_quarantined_not_fatal() {
        let sys = smoke_system();
        let json = device_bundle_to_json(&[sys, sys]).unwrap();
        // Corrupt device 1's artifact only (the bundle envelope carries
        // no checksum field, so occurrence 1 is the second device's).
        let corrupt = flip_checksum(&json, 1);
        // The strict loader fails the whole bundle, naming the device.
        let err = device_bundle_from_json(&corrupt).unwrap_err();
        assert!(err.to_string().contains("device 1"), "{err}");
        // The quarantined loader boots the healthy device and types the
        // corrupt one.
        let fleet = device_bundle_from_json_quarantined(&corrupt).unwrap();
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet[0].as_ref().unwrap(), sys);
        let err = fleet[1].as_ref().unwrap_err();
        assert!(err.to_string().contains("device 1"), "{err}");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn truncated_artifact_is_a_malformed_artifact_error() {
        let sys = smoke_system();
        let json = sys.to_artifact_json().unwrap();
        let truncated = &json[..json.len() / 2];
        let err = KlinqSystem::from_artifact_json(truncated).unwrap_err();
        assert!(matches!(err, KlinqError::Artifact(_)), "{err}");
    }
}
