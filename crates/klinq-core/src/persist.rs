//! Model persistence: a trained [`KlinqSystem`] as a loadable artifact.
//!
//! The paper's whole point is *deployable* lightweight discriminators,
//! so a trained system must be shippable without retraining. This module
//! serializes everything inference needs — the five
//! [`crate::KlinqDiscriminator`]s (student networks, fitted feature
//! pipelines, compiled Q16.16 datapaths), the five teachers (Baseline-FNN
//! comparators, still needed for re-distillation sweeps) and the
//! [`ExperimentConfig`] — into one versioned JSON artifact.
//!
//! The datasets are **not** stored: everything stochastic in generation
//! derives from the config's seeds, so [`KlinqSystem::load`] regenerates
//! the exact same training/held-out shots bit for bit. Combined with the
//! exact float round-trip of the vendored JSON writer (shortest
//! representation that parses back to the same bits), a loaded system is
//! indistinguishable from the one that was saved:
//! `load(save(sys)).evaluate_on(b) == sys.evaluate_on(b)` exactly, for
//! both [`Backend`](crate::Backend)s.
//!
//! # Format
//!
//! ```json
//! {
//!   "format": "klinq-system",
//!   "version": 2,
//!   "config": { ... },
//!   "teachers": [ ... ],
//!   "discriminators": [ ... ]
//! }
//! ```
//!
//! Unknown format markers and future versions are rejected with
//! [`KlinqError::Artifact`] rather than misparsed.

use crate::discriminator::{KlinqDiscriminator, KlinqSystem};
use crate::error::KlinqError;
use crate::experiments::ExperimentConfig;
use crate::teacher::Teacher;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The artifact's `format` marker.
const FORMAT: &str = "klinq-system";
/// The current artifact version. Version history:
///
/// - 1: initial format.
/// - 2: `QuantizedDense` weights flattened to one row-major buffer (the
///   batched Q16.16 kernel streams them contiguously), and the float
///   feature pipeline re-baselined to the blocked averaging summation
///   order — version-1 artifacts would neither deserialize nor reproduce
///   the new float path bit for bit, so they are rejected and retrained.
const VERSION: u32 = 2;

/// On-disk shape of a saved system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SystemArtifact {
    format: String,
    version: u32,
    config: ExperimentConfig,
    teachers: Vec<Teacher>,
    discriminators: Vec<KlinqDiscriminator>,
}

impl KlinqSystem {
    /// Serializes this system to the versioned artifact JSON.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError::Artifact`] if serialization fails (only
    /// possible for non-finite values, which a trained system never
    /// contains).
    pub fn to_artifact_json(&self) -> Result<String, KlinqError> {
        let artifact = SystemArtifact {
            format: FORMAT.to_string(),
            version: VERSION,
            config: self.config().clone(),
            teachers: self.teachers().to_vec(),
            discriminators: self.discriminators().to_vec(),
        };
        serde_json::to_string(&artifact).map_err(|e| KlinqError::Artifact(e.to_string()))
    }

    /// Rebuilds a system from artifact JSON, regenerating the datasets
    /// from the stored configuration's seeds.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError::Artifact`] on malformed JSON, a wrong
    /// format marker, an unsupported version or inconsistent contents,
    /// and [`KlinqError::InvalidConfig`] if the stored configuration is
    /// unusable.
    pub fn from_artifact_json(json: &str) -> Result<Self, KlinqError> {
        // Peek at the format marker and version through an untyped parse
        // *before* deserializing the full artifact: older versions also
        // differ structurally (v1 stored nested `QuantizedDense` weight
        // rows), so a typed parse of a v1 file would die on a field-shape
        // serde error instead of the version message this module
        // promises.
        let peek: serde_json::Value =
            serde_json::from_str(json).map_err(|e| KlinqError::Artifact(e.to_string()))?;
        let format = peek.get("format").and_then(|v| v.as_str()).unwrap_or("");
        if format != FORMAT {
            return Err(KlinqError::Artifact(format!(
                "unknown format marker `{format}` (expected `{FORMAT}`)"
            )));
        }
        let version = peek.get("version").and_then(|v| v.as_f64()).unwrap_or(0.0) as u32;
        if version != VERSION {
            return Err(KlinqError::Artifact(format!(
                "unsupported artifact version {version} (this build reads {VERSION})"
            )));
        }
        let artifact: SystemArtifact =
            serde_json::from_str(json).map_err(|e| KlinqError::Artifact(e.to_string()))?;
        if artifact.discriminators.len() != 5 || artifact.teachers.len() != 5 {
            return Err(KlinqError::Artifact(format!(
                "expected 5 discriminators and 5 teachers, got {} and {}",
                artifact.discriminators.len(),
                artifact.teachers.len()
            )));
        }
        for (qb, d) in artifact.discriminators.iter().enumerate() {
            if d.qubit() != qb {
                return Err(KlinqError::Artifact(format!(
                    "discriminator {qb} claims qubit {}",
                    d.qubit()
                )));
            }
        }
        for (qb, t) in artifact.teachers.iter().enumerate() {
            if t.qubit() != qb {
                return Err(KlinqError::Artifact(format!(
                    "teacher {qb} claims qubit {}",
                    t.qubit()
                )));
            }
        }
        artifact.config.validate()?;
        let (train_data, test_data) = Self::datasets_for(&artifact.config);
        // Cross-consistency: the stored models must actually fit the
        // traces the stored config regenerates, otherwise the first
        // prediction would panic deep inside feature extraction instead
        // of load() failing with a typed error (e.g. a hand-edited
        // `duration_ns` shorter than the fitted front ends expect).
        let samples = test_data.samples().min(train_data.samples());
        for (qb, d) in artifact.discriminators.iter().enumerate() {
            let needed = d.student().pipeline.averager().outputs();
            if needed > samples {
                return Err(KlinqError::Artifact(format!(
                    "discriminator {qb}'s pipeline averages {needed} points per channel \
                     but the config's traces carry only {samples} samples"
                )));
            }
        }
        for (qb, t) in artifact.teachers.iter().enumerate() {
            let needed = t.net().input_dim();
            if needed > 2 * samples {
                return Err(KlinqError::Artifact(format!(
                    "teacher {qb} expects {needed} raw inputs but the config's traces \
                     flatten to only {} samples",
                    2 * samples
                )));
            }
        }
        Ok(Self::from_parts(
            artifact.discriminators,
            artifact.teachers,
            train_data,
            test_data,
            artifact.config,
        ))
    }

    /// Writes this trained system to `path` as a versioned JSON artifact.
    ///
    /// The write goes through a sibling temporary file plus an atomic
    /// rename, so a crash mid-save never leaves a truncated artifact
    /// where a loadable one is expected.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError::Io`] if the file cannot be written and
    /// [`KlinqError::Artifact`] if serialization fails.
    pub fn save(&self, path: &Path) -> Result<(), KlinqError> {
        let json = self.to_artifact_json()?;
        let io_err = |e: std::io::Error| KlinqError::Io(format!("{}: {e}", path.display()));
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, json).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)
    }

    /// Loads a system previously written by [`Self::save`].
    ///
    /// The datasets are regenerated deterministically from the stored
    /// configuration, so the loaded system's predictions — and its
    /// [`Self::evaluate_on`](KlinqSystem::evaluate_on) reports — are
    /// bitwise-identical to the saved one's on both backends.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError::Io`] if the file cannot be read and
    /// [`KlinqError::Artifact`] if its contents are malformed.
    pub fn load(path: &Path) -> Result<Self, KlinqError> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| KlinqError::Io(format!("{}: {e}", path.display())))?;
        Self::from_artifact_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::testutil::smoke_system;

    #[test]
    fn json_round_trip_preserves_the_whole_system() {
        let sys = smoke_system();
        let json = sys.to_artifact_json().unwrap();
        let loaded = KlinqSystem::from_artifact_json(&json).unwrap();
        // Everything — weights, pipelines, compiled datapaths, teachers,
        // config, regenerated datasets — must compare equal.
        assert_eq!(&loaded, sys);
        // And the reports are exactly reproducible on both backends.
        for backend in Backend::ALL {
            assert_eq!(loaded.evaluate_on(backend), sys.evaluate_on(backend));
        }
    }

    #[test]
    fn save_and_load_through_a_file() {
        let sys = smoke_system();
        let dir = std::env::temp_dir().join("klinq_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("system.json");
        sys.save(&path).unwrap();
        let loaded = KlinqSystem::load(&path).unwrap();
        assert_eq!(&loaded, sys);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = KlinqSystem::load(Path::new("/nonexistent/klinq/system.json")).unwrap_err();
        assert!(matches!(err, KlinqError::Io(_)), "{err}");
        assert!(err.to_string().contains("nonexistent"));
    }

    #[test]
    fn wrong_format_and_version_are_rejected() {
        let sys = smoke_system();
        let json = sys.to_artifact_json().unwrap();
        let wrong_format = json.replacen("klinq-system", "not-a-system", 1);
        let err = KlinqSystem::from_artifact_json(&wrong_format).unwrap_err();
        assert!(matches!(err, KlinqError::Artifact(_)), "{err}");
        assert!(err.to_string().contains("format"));
        let wrong_version = json.replacen("\"version\":2", "\"version\":99", 1);
        let err = KlinqSystem::from_artifact_json(&wrong_version).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // A structurally old artifact (v1 bodies differ — nested
        // QuantizedDense weight rows, fields missing here entirely) must
        // still produce the version message, not a serde shape error:
        // the version peek runs before the typed parse.
        let v1_shape = r#"{"format":"klinq-system","version":1,"legacy":true}"#;
        let err = KlinqSystem::from_artifact_json(v1_shape).unwrap_err();
        assert!(
            err.to_string().contains("unsupported artifact version 1"),
            "{err}"
        );
    }

    #[test]
    fn inconsistent_duration_is_rejected_at_load_not_at_predict() {
        // Hand-edit the stored duration below what the fitted models
        // need: load must fail typed instead of the first prediction
        // panicking inside feature extraction.
        let sys = smoke_system();
        let json = sys.to_artifact_json().unwrap();
        assert!(json.contains("\"duration_ns\":300.0"), "smoke duration changed?");
        let shrunk = json.replacen("\"duration_ns\":300.0", "\"duration_ns\":200.0", 1);
        let err = KlinqSystem::from_artifact_json(&shrunk).unwrap_err();
        assert!(matches!(err, KlinqError::Artifact(_)), "{err}");
    }

    #[test]
    fn truncated_artifact_is_a_malformed_artifact_error() {
        let sys = smoke_system();
        let json = sys.to_artifact_json().unwrap();
        let truncated = &json[..json.len() / 2];
        let err = KlinqSystem::from_artifact_json(truncated).unwrap_err();
        assert!(matches!(err, KlinqError::Artifact(_)), "{err}");
    }
}
