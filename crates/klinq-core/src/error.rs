//! The crate-level error type.

use klinq_dsp::feature::FitPipelineError;
use klinq_fpga::engine::CompileError;
use klinq_nn::train::DatasetError;
use std::fmt;

/// Errors produced while building or running a KLiNQ system.
#[derive(Debug, Clone, PartialEq)]
pub enum KlinqError {
    /// Feature-pipeline fitting failed (empty class, ragged traces).
    Pipeline(FitPipelineError),
    /// Dataset construction failed (empty, ragged, bad labels).
    Dataset(DatasetError),
    /// FPGA compilation failed.
    Compile(CompileError),
    /// A configuration value is unusable.
    InvalidConfig(String),
    /// Reading or writing a model artifact failed at the I/O layer
    /// (missing file, permissions, disk). The message names the path.
    Io(String),
    /// A model artifact is malformed: truncated or corrupt JSON, an
    /// unknown format marker, an unsupported version, or inconsistent
    /// contents.
    Artifact(String),
}

impl fmt::Display for KlinqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Pipeline(e) => write!(f, "feature pipeline: {e}"),
            Self::Dataset(e) => write!(f, "dataset: {e}"),
            Self::Compile(e) => write!(f, "fpga compile: {e}"),
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Io(msg) => write!(f, "artifact i/o: {msg}"),
            Self::Artifact(msg) => write!(f, "malformed artifact: {msg}"),
        }
    }
}

impl std::error::Error for KlinqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Pipeline(e) => Some(e),
            Self::Dataset(e) => Some(e),
            Self::Compile(e) => Some(e),
            Self::InvalidConfig(_) | Self::Io(_) | Self::Artifact(_) => None,
        }
    }
}

impl From<FitPipelineError> for KlinqError {
    fn from(e: FitPipelineError) -> Self {
        Self::Pipeline(e)
    }
}

impl From<DatasetError> for KlinqError {
    fn from(e: DatasetError) -> Self {
        Self::Dataset(e)
    }
}

impl From<CompileError> for KlinqError {
    fn from(e: CompileError) -> Self {
        Self::Compile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = KlinqError::InvalidConfig("zero shots".into());
        assert!(e.to_string().contains("zero shots"));
        use std::error::Error;
        assert!(e.source().is_none());
        let e = KlinqError::from(DatasetError::Empty);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("dataset"));
    }
}
