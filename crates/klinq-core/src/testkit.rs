//! Disk-cached smoke fixtures shared across test binaries and benches.
//!
//! Training even the smoke-scale [`KlinqSystem`] dominates every test
//! binary's wall clock, and the workspace runs several binaries (the
//! klinq-core unit tests, the root integration tests, klinq-serve's
//! tests, the benches) that all want the same fixture. In-memory
//! `OnceLock` sharing only helps within one binary; this module shares
//! the fixture *across processes* through the model-persistence layer
//! ([`crate::persist`]): the first binary to need the system trains it
//! and saves the artifact under the target directory, and every later
//! binary loads it — bitwise-identical to retraining, per the
//! persistence guarantees.
//!
//! Staleness is handled by construction:
//!
//! - the cached artifact must deserialize and carry exactly
//!   [`ExperimentConfig::smoke`] — config drift forces a retrain;
//! - the cache must be *newer than the running executable* — whenever
//!   the code that produced it may have changed, cargo relinks the test
//!   binary, the mtime comparison fails, and the fixture retrains once.
//!
//! All failures fall back to training, so the cache can never make a
//! suite fail that would otherwise pass.

use crate::discriminator::KlinqSystem;
use crate::experiments::ExperimentConfig;
use std::path::Path;

/// File name of the cached smoke artifact inside the cache directory.
/// The suffix tracks the artifact version (see `crate::persist`): bumping
/// it on format or float-baseline changes makes stale caches retrain
/// cleanly instead of failing to load (or flaking) every run.
const CACHE_FILE: &str = "klinq-smoke-system.v3.json";

/// Returns the shared smoke-scale system, loading it from `cache_dir`
/// when a fresh cached artifact exists and training (then caching) it
/// otherwise.
///
/// Callers pass a stable per-workspace directory — integration tests and
/// benches use `env!("CARGO_TARGET_TMPDIR")`, unit-test binaries a
/// manifest-relative `target/tmp` — so every binary of one `cargo test`
/// run resolves the same file and the workspace trains exactly once.
///
/// # Panics
///
/// Panics if the smoke system fails to train (same contract as the
/// in-memory fixtures this replaces).
pub fn cached_smoke_system(cache_dir: &Path) -> KlinqSystem {
    let config = ExperimentConfig::smoke();
    let path = cache_dir.join(CACHE_FILE);
    if let Some(sys) = try_load_fresh(&path, &config) {
        return sys;
    }
    let sys = KlinqSystem::train(&config).expect("smoke system trains");
    // Best effort: a failed save only costs later binaries a retrain.
    if std::fs::create_dir_all(cache_dir).is_ok() {
        let _ = sys.save(&path);
    }
    sys
}

/// Builds a decision-inverted sibling of `sys`: every student's output
/// layer (weights and bias) is negated, so the sibling disagrees with
/// `sys` on every shot whose logit is nonzero — on both backends, since
/// the Q16.16 datapath is recompiled from the negated float student.
///
/// Tests use this as a cheap, maximally distinguishable "model B" for
/// hot-swap and canary assertions: a served response can be attributed
/// to exactly one of the two versions by comparing against each model's
/// direct classification of the same shots.
///
/// # Panics
///
/// Panics if the inverted datapaths fail to compile (they share the
/// trained system's dimensions, so this indicates a bug).
pub fn inverted_variant(sys: &KlinqSystem) -> KlinqSystem {
    let students = sys
        .discriminators()
        .iter()
        .map(|d| {
            let mut s = d.student().clone();
            let mut layers = s.net.layers().to_vec();
            let last = layers.last_mut().expect("an Fnn is never empty");
            for w in last.weights_mut().data_mut() {
                *w = -*w;
            }
            for b in last.bias_mut() {
                *b = -*b;
            }
            s.net = klinq_nn::Fnn::from_layers(layers);
            s
        })
        .collect();
    sys.with_students(students, sys.test_data().samples())
        .expect("inverted variant compiles")
}

/// Loads the cached artifact if it is fresher than the running
/// executable and still matches the smoke configuration.
fn try_load_fresh(path: &Path, config: &ExperimentConfig) -> Option<KlinqSystem> {
    let cache_mtime = std::fs::metadata(path).ok()?.modified().ok()?;
    let exe_mtime = std::env::current_exe()
        .ok()
        .and_then(|p| std::fs::metadata(p).ok())
        .and_then(|m| m.modified().ok());
    if let Some(exe_mtime) = exe_mtime {
        // A rebuilt binary means the training code may have changed, so
        // only trust caches written after this executable was linked.
        if cache_mtime <= exe_mtime {
            return None;
        }
    }
    let sys = KlinqSystem::load(path).ok()?;
    (sys.config() == config).then_some(sys)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A per-process scratch directory: the fixed
    /// `temp_dir()/klinq_testkit_*` paths these tests previously used
    /// collide across concurrent workspaces/CI runs sharing one temp
    /// dir, and the teardown `remove_dir_all` could delete a sibling
    /// run's cache mid-test.
    fn scratch_dir(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("klinq_testkit_{name}_{}", std::process::id()))
    }

    #[test]
    fn warm_cache_is_loaded_not_retrained() {
        // Seed a cache directory from the shared in-memory fixture (so
        // this test never trains a second system), then check that
        // `cached_smoke_system` picks it up bit for bit. The cache file
        // is written now, hence newer than this test executable.
        let fixture = crate::testutil::smoke_system();
        let dir = scratch_dir("warm");
        std::fs::create_dir_all(&dir).unwrap();
        fixture.save(&dir.join(CACHE_FILE)).unwrap();
        let cached = cached_smoke_system(&dir);
        assert_eq!(&cached, fixture);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_or_mismatched_cache_is_ignored() {
        let dir = scratch_dir("stale");
        std::fs::create_dir_all(&dir).ok();
        let path = dir.join(CACHE_FILE);
        std::fs::write(&path, "{not valid json").unwrap();
        // A corrupt cache must not be trusted, however fresh.
        assert!(try_load_fresh(&path, &ExperimentConfig::smoke()).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
