//! Joint five-qubit readout: the synchronous baseline and the paper's
//! future-work direction.
//!
//! The original deep-learning discriminator of Lienhard et al. — the
//! paper's reference \[3\] — is a *single* network reading all five qubits
//! at once: its input is every qubit's multiplexed trace and its five
//! outputs are per-qubit logits. Because it sees the neighbours' signals,
//! it can compensate frequency-multiplexed crosstalk, which is why the
//! paper's Table I footnotes report it above every independent scheme
//! (F5Q 0.912 for the baseline, 0.927 for HERQULES) and why the paper's
//! Discussion names crosstalk-aware teachers as future work. The trade-off
//! is the paper's central motivation: a joint readout cannot measure one
//! qubit mid-circuit.
//!
//! This module implements that joint discriminator so the reproduction
//! covers both sides of the trade-off.

use crate::error::KlinqError;
use crate::eval::FidelityReport;
use klinq_dsp::VecNormalizer;
use klinq_nn::multi::{evaluate_multi_accuracy, train_supervised_multi, MultiDataset};
use klinq_nn::train::{TrainConfig, TrainReport};
use klinq_nn::{Activation, Fnn, FnnBuilder, Matrix};
use klinq_sim::ReadoutDataset;
use serde::{Deserialize, Serialize};

/// Joint-readout network architecture and training settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointConfig {
    /// Hidden-layer widths.
    pub hidden: Vec<usize>,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Weight-init seed.
    pub init_seed: u64,
}

impl JointConfig {
    /// A reduced joint network matched in budget to
    /// [`crate::teacher::TeacherConfig::reduced`].
    pub fn reduced() -> Self {
        Self {
            hidden: vec![96, 48, 24],
            train: TrainConfig {
                epochs: 24,
                batch_size: 64,
                learning_rate: 1e-3,
                weight_decay: 5e-4,
                ..TrainConfig::default()
            },
            init_seed: 29,
        }
    }

    /// A tiny joint network for smoke tests.
    pub fn smoke() -> Self {
        Self {
            hidden: vec![48, 24, 12],
            train: TrainConfig {
                epochs: 80,
                batch_size: 32,
                learning_rate: 1e-3,
                ..TrainConfig::default()
            },
            init_seed: 29,
        }
    }
}

/// A trained joint five-qubit discriminator.
#[derive(Debug, Clone, PartialEq)]
pub struct JointDiscriminator {
    net: Fnn,
    normalizer: VecNormalizer,
    report: TrainReport,
}

impl JointDiscriminator {
    /// Trains on all five qubits' flattened traces simultaneously.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError`] if the dataset cannot be assembled.
    pub fn train(config: &JointConfig, data: &ReadoutDataset) -> Result<Self, KlinqError> {
        let raw_rows: Vec<Vec<f32>> = data.shots().iter().map(joint_input).collect();
        let refs: Vec<&[f32]> = raw_rows.iter().map(|r| r.as_slice()).collect();
        let fitted =
            VecNormalizer::fit(&refs).map_err(klinq_dsp::feature::FitPipelineError::from)?;
        // Zero-centre (means as subtrahends), as for the per-qubit teacher.
        let n = raw_rows.len() as f64;
        let mut means = vec![0.0f64; fitted.dim()];
        for row in &raw_rows {
            for (m, &x) in means.iter_mut().zip(row.iter()) {
                *m += x as f64;
            }
        }
        let means: Vec<f32> = means.iter().map(|m| (m / n) as f32).collect();
        let normalizer = VecNormalizer::from_constants(means, fitted.sigmas().to_vec());

        let rows: Vec<Vec<f32>> = raw_rows.iter().map(|r| normalizer.apply(r)).collect();
        let row_refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&row_refs);
        let mut labels = Vec::with_capacity(data.len() * 5);
        for s in data.shots() {
            for qb in 0..5 {
                labels.push(s.prepared[qb] as u8 as f32);
            }
        }
        let y = Matrix::from_vec(data.len(), 5, labels);
        let dataset = MultiDataset::from_matrices(x, y)
            .map_err(|e| KlinqError::InvalidConfig(e.to_string()))?;

        let mut builder = FnnBuilder::new(dataset.dim()).seed(config.init_seed);
        for &h in &config.hidden {
            builder = builder.hidden(h, Activation::Relu);
        }
        let mut net = builder.output(5).build();
        let report = train_supervised_multi(&mut net, &dataset, &config.train);
        Ok(Self {
            net,
            normalizer,
            report,
        })
    }

    /// The trained network.
    pub fn net(&self) -> &Fnn {
        &self.net
    }

    /// The training summary.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// Reads all five qubits from one shot (synchronous readout — this is
    /// exactly what mid-circuit measurement cannot use).
    pub fn measure_all(&self, shot: &klinq_sim::Shot) -> [bool; 5] {
        let mut row = joint_input(shot);
        self.normalizer.apply_in_place(&mut row);
        let out = self.net.forward_single(&row);
        [out[0] > 0.0, out[1] > 0.0, out[2] > 0.0, out[3] > 0.0, out[4] > 0.0]
    }

    /// Per-qubit assignment fidelities over a dataset.
    pub fn evaluate(&self, data: &ReadoutDataset) -> FidelityReport {
        let rows: Vec<Vec<f32>> = data
            .shots()
            .iter()
            .map(|s| {
                let mut row = joint_input(s);
                self.normalizer.apply_in_place(&mut row);
                row
            })
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut labels = Vec::with_capacity(data.len() * 5);
        for s in data.shots() {
            for qb in 0..5 {
                labels.push(s.prepared[qb] as u8 as f32);
            }
        }
        let y = Matrix::from_vec(data.len(), 5, labels);
        let dataset = MultiDataset::from_matrices(x, y).expect("shapes are consistent");
        FidelityReport::new(evaluate_multi_accuracy(&self.net, &dataset))
    }
}

/// The joint input layout: all five qubits' flattened I/Q traces
/// concatenated (5 × 2 × samples values).
fn joint_input(shot: &klinq_sim::Shot) -> Vec<f32> {
    let mut row = Vec::with_capacity(5 * 2 * shot.traces[0].len());
    for t in &shot.traces {
        row.extend_from_slice(&t.i);
        row.extend_from_slice(&t.q);
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use klinq_sim::{FiveQubitDevice, SimConfig};

    #[test]
    fn joint_discriminator_reads_all_qubits() {
        let device = FiveQubitDevice::paper();
        let config = SimConfig::with_duration_ns(300.0);
        let train = ReadoutDataset::generate(&device, &config, 640, 41);
        let test = ReadoutDataset::generate(&device, &config, 640, 42);
        let joint = JointDiscriminator::train(&JointConfig::smoke(), &train).unwrap();
        let report = joint.evaluate(&test);
        // Smoke scale starves a 1500-input joint network, so only demand
        // clearly-above-chance behaviour; the quick-scale `joint` binary
        // is where the crosstalk-compensation advantage shows. This is
        // one of the two RNG-sensitive tests whose floors live in
        // `crate::stat_floors` — raise shots/epochs, never the floors.
        use crate::stat_floors as floors;
        for qb in 0..5 {
            let floor = if qb == 1 {
                floors::JOINT_WEAK_QUBIT_FIDELITY
            } else {
                floors::JOINT_PER_QUBIT_FIDELITY
            };
            assert!(report.qubit(qb) > floor, "qubit {}: {report}", qb + 1);
        }
        assert!(report.geometric_mean() > floors::JOINT_GEOMEAN_FIDELITY, "{report}");
        // measure_all agrees with evaluate's underlying predictions.
        let shot = test.shot(0);
        let states = joint.measure_all(shot);
        assert_eq!(states.len(), 5);
        assert!(joint.report().final_train_accuracy > floors::JOINT_TRAIN_ACCURACY);
    }

    #[test]
    fn joint_input_layout() {
        let device = FiveQubitDevice::paper();
        let config = SimConfig::with_duration_ns(300.0);
        let data = ReadoutDataset::generate(&device, &config, 4, 1);
        let row = joint_input(data.shot(0));
        assert_eq!(row.len(), 5 * 2 * data.samples());
        // First block is qubit 0's I channel.
        assert_eq!(row[0], data.shot(0).traces[0].i[0]);
    }
}
