//! Teacher-network training on raw flattened I/Q traces.
//!
//! The paper's teacher is an FNN with hidden layers 1000/500/250 consuming
//! the full 1 µs multiplexed trace flattened to 1000 inputs. The identical
//! architecture, trained per qubit on raw traces, is also the paper's
//! Baseline FNN [Lienhard et al.] in the independent-readout comparison —
//! so one training run serves both roles.

use crate::error::KlinqError;
use klinq_dsp::VecNormalizer;
use klinq_nn::train::{train_supervised, Dataset, TrainConfig, TrainReport};
use klinq_nn::{Activation, Fnn, FnnBuilder};
use klinq_sim::ReadoutDataset;
use serde::{Deserialize, Serialize};

/// Teacher architecture and training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TeacherConfig {
    /// Hidden-layer widths. The paper uses `[1000, 500, 250]`; scaled-down
    /// variants train faster with little fidelity loss on the simulator.
    pub hidden: Vec<usize>,
    /// Mini-batch training settings.
    pub train: TrainConfig,
    /// Weight-initialization seed.
    pub init_seed: u64,
}

impl TeacherConfig {
    /// The paper's full-size teacher.
    pub fn paper() -> Self {
        Self {
            hidden: vec![1000, 500, 250],
            train: TrainConfig {
                epochs: 8,
                batch_size: 64,
                learning_rate: 3e-4,
                ..TrainConfig::default()
            },
            init_seed: 17,
        }
    }

    /// A reduced teacher for fast experiments (hidden 64/32/16). Keeps
    /// the three-hidden-layer structure so distillation behaves the same.
    /// The raw-trace input dimension (2000 at 1 µs) dwarfs any small shot
    /// count, so the teacher needs both weight decay and generous training
    /// data (the paper uses 480 k shots) to reach the matched-filter bound
    /// instead of memorizing noise.
    pub fn reduced() -> Self {
        Self {
            hidden: vec![64, 32, 16],
            train: TrainConfig {
                epochs: 24,
                batch_size: 64,
                learning_rate: 1e-3,
                weight_decay: 5e-4,
                ..TrainConfig::default()
            },
            init_seed: 17,
        }
    }

    /// A tiny teacher for smoke tests (hidden 24/12/6).
    ///
    /// Sized by wall clock: teacher training dominates the cold cost of
    /// the shared smoke fixture (`klinq_core::testkit`), which every CI
    /// run pays once. 24/12/6 holds every statistical floor with the
    /// same margins as the former 32/16/8 (see `stat_floors` — floors
    /// are never loosened to buy speed) while cutting the first-layer
    /// weight count — the input dimension dwarfs the hidden sizes — by
    /// a quarter.
    pub fn smoke() -> Self {
        Self {
            hidden: vec![24, 12, 6],
            train: TrainConfig {
                epochs: 40,
                batch_size: 32,
                learning_rate: 2e-3,
                ..TrainConfig::default()
            },
            init_seed: 17,
        }
    }

    /// Builds the (untrained) network for the given raw input dimension.
    pub fn build(&self, input_dim: usize) -> Fnn {
        let mut b = FnnBuilder::new(input_dim).seed(self.init_seed);
        for &h in &self.hidden {
            b = b.hidden(h, Activation::Relu);
        }
        b.output(1).build()
    }
}

/// A trained per-qubit teacher (also the Baseline FNN comparator).
///
/// Raw traces are standardized per input position (`(x − mean)/σ` fitted
/// on the training set) before entering the network — without this the
/// unnormalized ADC scale makes the large FNN untrainable, and the real
/// systems the paper builds on normalize at their front end too.
///
/// Serializable as part of a saved [`crate::KlinqSystem`] artifact (see
/// [`crate::persist`]), so a loaded system can still produce Baseline-FNN
/// comparisons and re-distill duration-swept students.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Teacher {
    net: Fnn,
    normalizer: VecNormalizer,
    qubit: usize,
    report: TrainReport,
}

impl Teacher {
    /// Trains a teacher for qubit `qb` on the raw flattened traces of
    /// `data`.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError::Dataset`] if the dataset cannot be assembled.
    pub fn train(
        config: &TeacherConfig,
        data: &ReadoutDataset,
        qb: usize,
    ) -> Result<Self, KlinqError> {
        Self::train_with_extra(config, data, None, qb)
    }

    /// Trains on `data` plus an optional second dataset (same timing)
    /// appended for the teacher only — see
    /// [`crate::experiments::ExperimentConfig::teacher_extra_shots`].
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError::Dataset`] if the dataset cannot be assembled.
    ///
    /// # Panics
    ///
    /// Panics if the extra dataset's trace length differs from `data`'s.
    pub fn train_with_extra(
        config: &TeacherConfig,
        data: &ReadoutDataset,
        extra: Option<&ReadoutDataset>,
        qb: usize,
    ) -> Result<Self, KlinqError> {
        let samples = data.samples();
        let mut raw_rows: Vec<Vec<f32>> = data
            .shots()
            .iter()
            .map(|s| s.traces[qb].flatten_prefix(samples))
            .collect();
        let mut labels = data.qubit_labels(qb);
        if let Some(extra) = extra {
            assert_eq!(
                extra.samples(),
                samples,
                "extra teacher data must share the trace length"
            );
            raw_rows.extend(
                extra
                    .shots()
                    .iter()
                    .map(|s| s.traces[qb].flatten_prefix(samples)),
            );
            labels.extend(extra.qubit_labels(qb));
        }
        let normalizer = standardizer(&raw_rows)?;
        let rows: Vec<Vec<f32>> = raw_rows.iter().map(|r| normalizer.apply(r)).collect();
        let dataset = Dataset::from_rows(&rows, &labels)?;
        let mut net = config.build(dataset.dim());
        let report = train_supervised(&mut net, &dataset, &config.train);
        Ok(Self {
            net,
            normalizer,
            qubit: qb,
            report,
        })
    }

    /// The trained network.
    pub fn net(&self) -> &Fnn {
        &self.net
    }

    /// The input standardizer fitted on the training set.
    pub fn normalizer(&self) -> &VecNormalizer {
        &self.normalizer
    }

    /// Which qubit this teacher reads.
    pub fn qubit(&self) -> usize {
        self.qubit
    }

    /// The training summary.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// The normalized network input for one shot of `data`.
    fn input_for(&self, data: &ReadoutDataset, shot: usize) -> Vec<f32> {
        let samples = self.net.input_dim() / 2;
        let mut row = data.shot(shot).traces[self.qubit].flatten_prefix(samples);
        self.normalizer.apply_in_place(&mut row);
        row
    }

    /// Teacher logits over a dataset's raw traces (the distillation soft
    /// labels), truncated/flattened/normalized identically to training.
    pub fn logits(&self, data: &ReadoutDataset) -> Vec<f32> {
        (0..data.len())
            .map(|s| self.net.logit(&self.input_for(data, s)))
            .collect()
    }

    /// Assignment fidelity on a (test) dataset at full design duration.
    pub fn fidelity(&self, data: &ReadoutDataset) -> f64 {
        self.fidelity_with_net(&self.net, data)
    }

    /// Fidelity of an alternative network (e.g. a post-training-quantized
    /// copy) run through this teacher's input pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `net`'s input dimension differs from this teacher's.
    pub fn fidelity_with_net(&self, net: &Fnn, data: &ReadoutDataset) -> f64 {
        assert_eq!(
            net.input_dim(),
            self.net.input_dim(),
            "replacement network must match the teacher's input width"
        );
        let labels = data.qubit_labels(self.qubit);
        let correct = (0..data.len())
            .zip(&labels)
            .filter(|(s, &y)| net.predict(&self.input_for(data, *s)) == (y == 1.0))
            .count();
        correct as f64 / labels.len() as f64
    }
}

/// Builds a zero-centered per-feature standardizer `(x − mean)/σ`.
///
/// The raw per-sample SNR is tiny (that is why matched filters exist), so
/// removing the common-mode mean is what makes the large raw-trace FNN
/// trainable in reasonable step counts.
fn standardizer(rows: &[Vec<f32>]) -> Result<VecNormalizer, KlinqError> {
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    let fitted = VecNormalizer::fit(&refs).map_err(klinq_dsp::feature::FitPipelineError::from)?;
    // Re-centre on the mean instead of the minimum.
    let dim = fitted.dim();
    let n = rows.len() as f64;
    let mut means = vec![0.0f64; dim];
    for row in rows {
        for (m, &x) in means.iter_mut().zip(row.iter()) {
            *m += x as f64;
        }
    }
    let means: Vec<f32> = means.iter().map(|m| (m / n) as f32).collect();
    Ok(VecNormalizer::from_constants(means, fitted.sigmas().to_vec()))
}

/// Builds the raw-trace supervised dataset for one qubit, using the first
/// `samples` per channel.
pub fn raw_dataset(
    data: &ReadoutDataset,
    qb: usize,
    samples: usize,
) -> Result<Dataset, KlinqError> {
    let rows: Vec<Vec<f32>> = data
        .shots()
        .iter()
        .map(|s| s.traces[qb].flatten_prefix(samples))
        .collect();
    let labels = data.qubit_labels(qb);
    Ok(Dataset::from_rows(&rows, &labels)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use klinq_sim::{FiveQubitDevice, SimConfig};

    fn tiny_data(shots: usize, seed: u64) -> ReadoutDataset {
        let device = FiveQubitDevice::paper();
        // Short traces keep the smoke teacher fast.
        let config = SimConfig::with_duration_ns(300.0);
        ReadoutDataset::generate(&device, &config, shots, seed)
    }

    #[test]
    fn teacher_learns_an_easy_qubit() {
        let train = tiny_data(320, 1);
        let test = tiny_data(320, 2);
        // Qubit 1 (index 0): its matched-filter bound at the shortened
        // 300 ns smoke duration sits near 0.84 under the final paper
        // calibration; demand most of that.
        let teacher = Teacher::train(&TeacherConfig::smoke(), &train, 0).unwrap();
        assert_eq!(teacher.qubit(), 0);
        let f = teacher.fidelity(&test);
        assert!(f > crate::stat_floors::TEACHER_SMOKE_FIDELITY, "teacher fidelity {f}");
        assert!(teacher.report().final_train_accuracy > crate::stat_floors::TEACHER_TRAIN_ACCURACY);
    }

    #[test]
    fn logits_cover_the_dataset_and_separate_classes() {
        let train = tiny_data(320, 3);
        let teacher = Teacher::train(&TeacherConfig::smoke(), &train, 0).unwrap();
        let logits = teacher.logits(&train);
        assert_eq!(logits.len(), train.len());
        let labels = train.qubit_labels(0);
        let mean_1: f32 = logits
            .iter()
            .zip(&labels)
            .filter(|(_, &y)| y == 1.0)
            .map(|(&l, _)| l)
            .sum::<f32>()
            / labels.iter().filter(|&&y| y == 1.0).count() as f32;
        let mean_0: f32 = logits
            .iter()
            .zip(&labels)
            .filter(|(_, &y)| y == 0.0)
            .map(|(&l, _)| l)
            .sum::<f32>()
            / labels.iter().filter(|&&y| y == 0.0).count() as f32;
        assert!(mean_1 > mean_0, "{mean_1} vs {mean_0}");
    }

    #[test]
    fn paper_config_builds_the_full_architecture() {
        let cfg = TeacherConfig::paper();
        let net = cfg.build(1000);
        // 1000→1000→500→250→1 with biases.
        assert_eq!(net.num_params(), 1_627_001);
    }

    #[test]
    fn raw_dataset_shapes() {
        let data = tiny_data(64, 5);
        let d = raw_dataset(&data, 2, data.samples()).unwrap();
        assert_eq!(d.len(), 64);
        assert_eq!(d.dim(), 2 * data.samples());
        // Truncated variant.
        let half = raw_dataset(&data, 2, data.samples() / 2).unwrap();
        assert_eq!(half.dim(), data.samples() / 2 * 2);
    }
}
