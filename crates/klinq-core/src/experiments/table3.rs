//! Table III: FPGA resource utilization and latency per component.
//!
//! Compiles one representative discriminator per student configuration
//! and builds the five-qubit design report: a shared matched-filter unit,
//! per-qubit AVG&NORM and network instances. The reproduction targets are
//! structural: the resource rows (fitted to the paper's synthesis
//! results), the 9-vs-6-stage AVG&NORM split, the +3-stage network
//! difference, equal end-to-end latency for both configurations, and
//! latency invariance across trace durations.

use crate::discriminator::KlinqSystem;
use crate::error::KlinqError;
use crate::experiments::ExperimentConfig;
use klinq_fpga::report::DesignReport;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Paper Table III reference values: (component, LUT, FF, DSP, ns).
pub const PAPER_ROWS: [(&str, u64, u64, u64, f64); 5] = [
    ("MF", 27_180, 24_052, 375, 11.0),
    ("AVG&NORM (Q1,4,5)", 17_770, 11_415, 0, 9.0),
    ("Network (Q1,4,5)", 8_840, 6_020, 55, 12.0),
    ("AVG&NORM (Q2,3)", 19_600, 17_500, 0, 6.0),
    ("Network (Q2,3)", 25_882, 23_172, 226, 15.0),
];

/// The measured Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// The structural design report.
    pub report: DesignReport,
    /// Worst-case end-to-end per-qubit latency in stages.
    pub discrimination_stages: u32,
    /// Whether both configurations share the same end-to-end latency
    /// (true at the paper's 1 µs design point).
    pub latencies_equal: bool,
}

/// Runs Table III on a freshly trained (smoke-scale is fine — resources
/// and latency depend only on the architecture) system.
///
/// # Errors
///
/// Returns [`KlinqError`] if training fails.
pub fn run(config: &ExperimentConfig) -> Result<Table3, KlinqError> {
    let system = KlinqSystem::train(config)?;
    Ok(run_with_system(&system))
}

/// Builds the report from an existing system.
pub fn run_with_system(system: &KlinqSystem) -> Table3 {
    let samples = system.test_data().samples();
    // Representative discriminators: qubit 1 (FNN-A) and qubit 2 (FNN-B).
    let report = DesignReport::from_design(
        &[
            ("Q1,4,5".to_string(), system.discriminator(0).hardware(), 3),
            ("Q2,3".to_string(), system.discriminator(1).hardware(), 2),
        ],
        samples,
    );
    let discrimination_stages = report.discrimination_stages();
    let latencies_equal = report.latencies_equal();
    Table3 {
        report,
        discrimination_stages,
        latencies_equal,
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.report)?;
        writeln!(f, "\n--- paper (Table III, ns at 100 MHz system clock) ---")?;
        for (name, lut, ff, dsp, ns) in PAPER_ROWS {
            writeln!(f, "{name:<22} {lut:>9} {ff:>9} {dsp:>6} {ns:>6.0} ns")?;
        }
        write!(
            f,
            "paper end-to-end: 32 ns for both configurations; ours: {} stages for both",
            self.discrimination_stages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_structure_matches_paper() {
        let table = run_with_system(crate::testutil::smoke_system());
        let rows = &table.report.rows;
        assert_eq!(rows.len(), 5);
        // Smoke config runs 200 ns traces (100 samples): per-qubit rows
        // still show the architectural splits.
        let avg_a = rows.iter().find(|r| r.name.contains("AVG&NORM (Q1")).unwrap();
        let avg_b = rows.iter().find(|r| r.name.contains("AVG&NORM (Q2")).unwrap();
        // FNN-A groups (100/15 = 6 samples) vs FNN-B (100/100 = 1).
        assert!(avg_a.stages > avg_b.stages);
        let net_a = rows.iter().find(|r| r.name.contains("Network (Q1")).unwrap();
        let net_b = rows.iter().find(|r| r.name.contains("Network (Q2")).unwrap();
        assert_eq!(net_a.resources.dsp, 55);
        assert_eq!(net_b.resources.dsp, 225);
        assert!(net_b.stages > net_a.stages);
        let s = table.to_string();
        assert!(s.contains("paper"), "{s}");
    }

    #[test]
    fn design_duration_reproduces_paper_splits() {
        // At the real 1 µs design point the splits are exactly the
        // paper's: AVG&NORM 9 vs 6 stages and equal totals. Verified via
        // the latency formulas (fast) rather than full training.
        use klinq_fpga::latency::{avg_norm_stages, mf_stages, network_stages};
        // Our averager floors 500/15 to a 33-sample group; the paper uses
        // 32. Both land on 9 stages (⌈log₂33⌉ = 6 without a shift stage;
        // ⌈log₂32⌉ = 5 plus the power-of-two shift).
        assert_eq!(avg_norm_stages(500 / 15), 9);
        assert_eq!(avg_norm_stages(32), 9);
        let a = mf_stages(500) + avg_norm_stages(500 / 15) + network_stages(&[31, 16, 8]);
        let b = mf_stages(500) + avg_norm_stages(500 / 100) + network_stages(&[201, 16, 8]);
        assert_eq!(a, b);
    }
}
