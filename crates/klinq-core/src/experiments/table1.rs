//! Table I: qubit-readout fidelity comparison in the independent-readout
//! scenario (1 µs traces).
//!
//! Rows: Baseline FNN (= the per-qubit teachers), HERQULES (matched-filter
//! feature FNN), KLiNQ (distilled students), plus two extra rows the paper
//! discusses but does not tabulate — the classical matched-filter
//! threshold floor and an 8-bit post-training-quantized baseline FNN
//! (reference \[10\], which "sacrifices accuracy").

use crate::baselines::{HerqulesConfig, HerqulesDiscriminator, MfThreshold};
use crate::discriminator::KlinqSystem;
use crate::error::KlinqError;
use crate::eval::FidelityReport;
use crate::experiments::ExperimentConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's Table I reference values for comparison in reports.
pub const PAPER_ROWS: [(&str, [f64; 5], f64, f64); 3] = [
    (
        "Baseline FNN",
        [0.969, 0.748, 0.940, 0.946, 0.970],
        0.910,
        0.956,
    ),
    (
        "HERQULES",
        [0.965, 0.730, 0.908, 0.934, 0.953],
        0.893,
        0.940,
    ),
    (
        "KLiNQ",
        [0.968, 0.748, 0.929, 0.934, 0.959],
        0.904,
        0.947,
    ),
];

/// One measured row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Design name.
    pub design: String,
    /// Per-qubit fidelities.
    pub per_qubit: Vec<f64>,
    /// Five-qubit geometric mean.
    pub f5q: f64,
    /// Geometric mean excluding qubit 2.
    pub f4q: f64,
}

impl Table1Row {
    fn from_report(design: &str, report: &FidelityReport) -> Self {
        Self {
            design: design.to_string(),
            per_qubit: report.per_qubit().to_vec(),
            f5q: report.geometric_mean(),
            f4q: report.f4q(),
        }
    }
}

/// The measured Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Measured rows, baseline first.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Finds a row by design name.
    pub fn row(&self, design: &str) -> Option<&Table1Row> {
        self.rows.iter().find(|r| r.design == design)
    }
}

/// Runs the full Table I experiment: trains the KLiNQ system (teachers
/// double as Baseline FNN), trains HERQULES per qubit, and evaluates all
/// designs on the shared held-out set.
///
/// # Errors
///
/// Returns [`KlinqError`] if any training stage fails.
pub fn run(config: &ExperimentConfig) -> Result<Table1, KlinqError> {
    let system = KlinqSystem::train(config)?;
    run_with_system(&system, config)
}

/// Variant reusing an already-trained system (so callers can share the
/// expensive teacher training across experiments).
///
/// # Errors
///
/// Returns [`KlinqError`] if a baseline fails to train.
pub fn run_with_system(
    system: &KlinqSystem,
    config: &ExperimentConfig,
) -> Result<Table1, KlinqError> {
    let test = system.test_data();
    let samples = test.samples();

    let baseline = system.evaluate_teachers();
    let klinq = system.evaluate();

    // HERQULES per qubit (parallel).
    let hq_cfg = HerqulesConfig {
        train: config.student_train,
        ..HerqulesConfig::default()
    };
    let herqules_f: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..5)
            .map(|qb| {
                let hq_cfg = &hq_cfg;
                scope.spawn(move || -> Result<f64, KlinqError> {
                    let h = HerqulesDiscriminator::train(hq_cfg, system.train_data(), qb)?;
                    Ok(h.fidelity_at(test, samples))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("herqules thread panicked"))
            .collect::<Result<Vec<_>, _>>()
    })?;
    let herqules = FidelityReport::new(herqules_f);

    // Matched-filter threshold floor.
    let mf_f: Vec<f64> = (0..5)
        .map(|qb| {
            MfThreshold::train(system.train_data(), qb).map(|m| m.fidelity_at(test, samples))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mf = FidelityReport::new(mf_f);

    // 8-bit post-training-quantized Baseline FNN (reference \[10\] style).
    let quant_f: Vec<f64> = system
        .teachers()
        .iter()
        .map(|t| t.fidelity_with_net(&crate::baselines::quantize_network(t.net(), 8), test))
        .collect();
    let quantized = FidelityReport::new(quant_f);

    Ok(Table1 {
        rows: vec![
            Table1Row::from_report("Baseline FNN", &baseline),
            Table1Row::from_report("HERQULES", &herqules),
            Table1Row::from_report("KLiNQ", &klinq),
            Table1Row::from_report("MF threshold", &mf),
            Table1Row::from_report("Quantized FNN (8-bit)", &quantized),
        ],
    })
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "Design", "Q1", "Q2", "Q3", "Q4", "Q5", "F5Q", "F4Q"
        )?;
        for row in &self.rows {
            write!(f, "{:<24}", row.design)?;
            for q in &row.per_qubit {
                write!(f, " {q:>7.3}")?;
            }
            writeln!(f, " {:>7.3} {:>7.3}", row.f5q, row.f4q)?;
        }
        writeln!(f, "--- paper (Table I) ---")?;
        for (name, per_qubit, f5q, f4q) in PAPER_ROWS {
            write!(f, "{name:<24}")?;
            for q in per_qubit {
                write!(f, " {q:>7.3}")?;
            }
            writeln!(f, " {f5q:>7.3} {f4q:>7.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table1_has_expected_structure_and_ordering() {
        let table =
            run_with_system(crate::testutil::smoke_system(), &ExperimentConfig::smoke()).unwrap();
        assert_eq!(table.rows.len(), 5);
        let klinq = table.row("KLiNQ").unwrap();
        let baseline = table.row("Baseline FNN").unwrap();
        let mf = table.row("MF threshold").unwrap();
        // Learned discriminators beat chance comfortably on smoke data.
        assert!(klinq.f5q > 0.7, "{table}");
        assert!(baseline.f5q > 0.6, "{table}");
        assert!(mf.f5q > 0.6, "{table}");
        // F4Q excludes the noisy qubit and must not be lower than F5Q.
        assert!(klinq.f4q >= klinq.f5q, "{table}");
        let rendered = table.to_string();
        assert!(rendered.contains("KLiNQ") && rendered.contains("paper"), "{rendered}");
    }
}
