//! Distillation ablation: what does the knowledge actually buy?
//!
//! The paper's central claim is that knowledge distillation lets a
//! 657/3377-parameter student match a 1.6 M-parameter network. This
//! experiment isolates the distillation term of
//! `L = α·L_CE + (1−α)·L_KD`: it trains each qubit's student at several
//! α values — α = 1 being the pure-supervised (no-teacher) ablation — and
//! reports the resulting fidelities, so the contribution of the soft
//! labels is measurable rather than asserted.

use crate::discriminator::KlinqSystem;
use crate::distill::distill_student;
use crate::error::KlinqError;
use crate::experiments::ExperimentConfig;
use crate::student::StudentArch;
use klinq_dsp::geometric_mean;
use klinq_nn::loss::DistillParams;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One ablation point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Hard-label weight (α = 1 → no distillation).
    pub alpha: f32,
    /// Softening temperature.
    pub temperature: f32,
    /// Per-qubit fidelities.
    pub per_qubit: Vec<f64>,
    /// Five-qubit geometric mean.
    pub f5q: f64,
}

/// The ablation sweep results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ablation {
    /// One row per (α, T) setting, pure-supervised last.
    pub rows: Vec<AblationRow>,
}

impl Ablation {
    /// The pure-supervised row (α = 1).
    pub fn supervised(&self) -> &AblationRow {
        self.rows
            .iter()
            .find(|r| r.alpha == 1.0)
            .expect("sweep always contains alpha = 1")
    }

    /// The best distilled row (α < 1) by F5Q.
    pub fn best_distilled(&self) -> &AblationRow {
        self.rows
            .iter()
            .filter(|r| r.alpha < 1.0)
            .max_by(|a, b| a.f5q.partial_cmp(&b.f5q).expect("finite"))
            .expect("sweep always contains distilled rows")
    }
}

/// The (α, T) grid swept by [`run_with_system`].
pub fn sweep_grid() -> Vec<(f32, f32)> {
    vec![
        (0.0, 2.5),
        (0.3, 2.5),
        (0.3, 1.0),
        (0.5, 2.5),
        (0.7, 2.5),
        (1.0, 1.0), // pure supervised: temperature is irrelevant
    ]
}

/// Runs the ablation on a freshly trained system.
///
/// # Errors
///
/// Returns [`KlinqError`] if training fails.
pub fn run(config: &ExperimentConfig) -> Result<Ablation, KlinqError> {
    let system = KlinqSystem::train(config)?;
    run_with_system(&system, config)
}

/// Runs the sweep against an existing system's teachers and data.
///
/// # Errors
///
/// Returns [`KlinqError`] if any student fails to train.
pub fn run_with_system(
    system: &KlinqSystem,
    config: &ExperimentConfig,
) -> Result<Ablation, KlinqError> {
    let samples = system.test_data().samples();
    let mut rows = Vec::new();
    for (alpha, temperature) in sweep_grid() {
        let params = DistillParams { alpha, temperature };
        let fidelities: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..5)
                .map(|qb| {
                    scope.spawn(move || -> Result<f64, KlinqError> {
                        let student = distill_student(
                            &system.teachers()[qb],
                            StudentArch::for_qubit(qb),
                            system.train_data(),
                            params,
                            &config.student_train,
                            config.student_seed + qb as u64,
                        )?;
                        let labels = system.test_data().qubit_labels(qb);
                        let correct = system
                            .test_data()
                            .qubit_pairs(qb)
                            .iter()
                            .zip(&labels)
                            .filter(|(&(i, q), &y)| {
                                student.net.predict(
                                    &student.pipeline.extract(&i[..samples], &q[..samples]),
                                ) == (y == 1.0)
                            })
                            .count();
                        Ok(correct as f64 / labels.len() as f64)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("ablation thread panicked"))
                .collect::<Result<Vec<_>, _>>()
        })?;
        rows.push(AblationRow {
            alpha,
            temperature,
            f5q: geometric_mean(&fidelities),
            per_qubit: fidelities,
        });
    }
    Ok(Ablation { rows })
}

impl fmt::Display for Ablation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>6} {:>5} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "alpha", "T", "Q1", "Q2", "Q3", "Q4", "Q5", "F5Q"
        )?;
        for row in &self.rows {
            write!(f, "{:>6.2} {:>5.1}", row.alpha, row.temperature)?;
            for q in &row.per_qubit {
                write!(f, " {q:>7.3}")?;
            }
            writeln!(f, " {:>7.3}", row.f5q)?;
        }
        let sup = self.supervised();
        let best = self.best_distilled();
        write!(
            f,
            "distillation gain: F5Q {:.3} (α={:.1}, T={:.1}) vs supervised {:.3} → {:+.4}",
            best.f5q,
            best.alpha,
            best.temperature,
            sup.f5q,
            best.f5q - sup.f5q
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_the_grid_and_identifies_rows() {
        let a =
            run_with_system(crate::testutil::smoke_system(), &ExperimentConfig::smoke()).unwrap();
        assert_eq!(a.rows.len(), sweep_grid().len());
        assert_eq!(a.supervised().alpha, 1.0);
        assert!(a.best_distilled().alpha < 1.0);
        for row in &a.rows {
            assert_eq!(row.per_qubit.len(), 5);
            assert!(row.f5q > 0.5 && row.f5q <= 1.0);
        }
        let s = a.to_string();
        assert!(s.contains("distillation gain"), "{s}");
    }
}
