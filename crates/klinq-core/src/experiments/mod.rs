//! Reproductions of every table and figure in the paper's evaluation.
//!
//! | Paper artefact | Module | Regeneration binary |
//! |---|---|---|
//! | Table I (fidelity comparison) | [`table1`] | `cargo run -p klinq-bench --bin table1` |
//! | Table II (fidelity vs duration) | [`table2`] | `cargo run -p klinq-bench --bin table2` |
//! | Fig. 4(a)/(b) (duration sweeps) | [`fig4`] | `cargo run -p klinq-bench --bin fig4` |
//! | Fig. 5 (compression) | [`fig5`] | `cargo run -p klinq-bench --bin fig5` |
//! | Table III (resources & latency) | [`table3`] | `cargo run -p klinq-bench --bin table3` |
//! | Distillation ablation (α sweep, beyond the paper) | [`ablation`] | `cargo run -p klinq-bench --bin ablation` |
//! | Joint-vs-independent readout (Table I footnotes) | [`joint_readout`] | `cargo run -p klinq-bench --bin joint` |
//!
//! All experiments are parameterized by [`ExperimentConfig`], which scales
//! dataset sizes and network widths: `smoke` for tests, `quick` for a
//! laptop-minutes run, `full` for the highest-fidelity reproduction.

pub mod ablation;
pub mod fig4;
pub mod fig5;
pub mod joint_readout;
pub mod table1;
pub mod table2;
pub mod table3;

use crate::error::KlinqError;
use crate::teacher::TeacherConfig;
use klinq_nn::loss::DistillParams;
use klinq_nn::train::TrainConfig;
use serde::{Deserialize, Serialize};

/// Scales and seeds for one end-to-end experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Readout-trace duration in ns (the paper's design point is 1000).
    pub duration_ns: f64,
    /// Multiplexed training shots (the paper uses 15 000 per state
    /// configuration; scaled down here).
    pub train_shots: usize,
    /// Additional simulated shots appended to the *teacher's* training set
    /// only. The raw-trace teacher is far more data-hungry than the
    /// matched-filter/student pipelines (2 000 noisy inputs), and the
    /// paper's 480 k-shot dataset kept it saturated; the simulator can
    /// cheaply restore that abundance for the teacher without changing
    /// what the students and baselines see.
    pub teacher_extra_shots: usize,
    /// Held-out evaluation shots.
    pub test_shots: usize,
    /// Seed for data generation (test set uses `data_seed + 1`).
    pub data_seed: u64,
    /// Teacher architecture and training.
    pub teacher: TeacherConfig,
    /// Student training hyper-parameters.
    pub student_train: TrainConfig,
    /// Distillation loss parameters (α, temperature).
    pub distill: DistillParams,
    /// Student weight-init seed (offset per qubit).
    pub student_seed: u64,
}

impl ExperimentConfig {
    /// Tiny configuration for unit/integration tests: 300 ns traces,
    /// a few hundred shots, tiny teacher. Runs in seconds.
    pub fn smoke() -> Self {
        Self {
            duration_ns: 300.0,
            // 384 training shots is the working floor: 320 drops qubit
            // 3 below its fidelity floor, and the policy is to keep
            // floors, not loosen them (see `stat_floors`). The held-out
            // split shrinks to 320 instead — it never feeds training, so
            // the models stay at validated quality while every
            // evaluate()-over-the-test-set loop in the suite gets ~17%
            // cheaper.
            train_shots: 384,
            teacher_extra_shots: 0,
            test_shots: 320,
            data_seed: 11,
            teacher: TeacherConfig::smoke(),
            student_train: TrainConfig {
                epochs: 60,
                batch_size: 32,
                // All-positive (min-normalized) features make aggressive
                // steps collapse small ReLU nets into dead units; 1e-3 is
                // reliably stable for both student architectures.
                learning_rate: 1e-3,
                ..TrainConfig::default()
            },
            distill: DistillParams::default(),
            student_seed: 100,
        }
    }

    /// Laptop-minutes configuration: full 1 µs traces, reduced teacher.
    /// This is the default for the table/figure regeneration binaries.
    pub fn quick() -> Self {
        Self {
            duration_ns: 1000.0,
            train_shots: 12_288,
            teacher_extra_shots: 24_576,
            test_shots: 4_096,
            data_seed: 11,
            teacher: TeacherConfig::reduced(),
            student_train: TrainConfig {
                epochs: 80,
                batch_size: 64,
                learning_rate: 1e-3,
                weight_decay: 1e-4,
                ..TrainConfig::default()
            },
            distill: DistillParams::default(),
            student_seed: 100,
        }
    }

    /// Highest-fidelity reproduction: more data and a larger teacher.
    /// Expect tens of minutes of training on a multi-core machine.
    pub fn full() -> Self {
        Self {
            duration_ns: 1000.0,
            train_shots: 24_576,
            teacher_extra_shots: 49_152,
            test_shots: 8_192,
            data_seed: 11,
            teacher: TeacherConfig {
                hidden: vec![128, 64, 32],
                train: TrainConfig {
                    epochs: 24,
                    batch_size: 64,
                    learning_rate: 5e-4,
                    weight_decay: 5e-4,
                    ..TrainConfig::default()
                },
                init_seed: 17,
            },
            student_train: TrainConfig {
                epochs: 100,
                batch_size: 64,
                learning_rate: 1e-3,
                weight_decay: 1e-4,
                ..TrainConfig::default()
            },
            distill: DistillParams::default(),
            student_seed: 100,
        }
    }

    /// Checks the configuration is usable.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError::InvalidConfig`] with a description of the
    /// offending field.
    pub fn validate(&self) -> Result<(), KlinqError> {
        if self.duration_ns <= 0.0 {
            return Err(KlinqError::InvalidConfig("duration must be positive".into()));
        }
        if self.train_shots == 0 || self.test_shots == 0 {
            return Err(KlinqError::InvalidConfig("shot counts must be positive".into()));
        }
        // FNN-B averages 100 points per channel, so traces must carry at
        // least 100 samples — 200 ns at 2 ns/sample.
        if self.duration_ns < 200.0 {
            return Err(KlinqError::InvalidConfig(
                "duration must be >= 200 ns so FNN-B's 100-point averaging has input".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ExperimentConfig::smoke().validate().unwrap();
        ExperimentConfig::quick().validate().unwrap();
        ExperimentConfig::full().validate().unwrap();
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut c = ExperimentConfig::smoke();
        c.train_shots = 0;
        assert!(matches!(c.validate(), Err(KlinqError::InvalidConfig(_))));
        let mut c = ExperimentConfig::smoke();
        c.duration_ns = 150.0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::smoke();
        c.duration_ns = -1.0;
        assert!(c.validate().is_err());
    }
}
