//! Fig. 4: accuracy vs readout-trace duration.
//!
//! (a) per-qubit KLiNQ accuracy across the 500–1000 ns sweep;
//! (b) geometric-mean comparison of KLiNQ vs HERQULES over the same
//! sweep — the paper shows KLiNQ above HERQULES at every duration, with
//! the gap widening at short traces.

use crate::baselines::{HerqulesConfig, HerqulesDiscriminator};
use crate::discriminator::KlinqSystem;
use crate::error::KlinqError;
use crate::experiments::ExperimentConfig;
use klinq_dsp::geometric_mean;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Sweep durations (ns): 500 to 1000 in 50 ns steps, as in Fig. 4.
pub fn sweep_durations() -> Vec<f64> {
    (0..=10).map(|k| 500.0 + 50.0 * k as f64).collect()
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Trace duration (ns).
    pub duration_ns: f64,
    /// KLiNQ per-qubit accuracy (Fig. 4a series).
    pub klinq_per_qubit: Vec<f64>,
    /// KLiNQ geometric mean (Fig. 4b).
    pub klinq_f5q: f64,
    /// HERQULES geometric mean (Fig. 4b).
    pub herqules_f5q: f64,
}

/// The measured Fig. 4 data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4 {
    /// Sweep points, shortest duration first.
    pub points: Vec<SweepPoint>,
}

impl Fig4 {
    /// Durations where KLiNQ's geometric mean beats HERQULES'.
    pub fn klinq_wins(&self) -> usize {
        self.points
            .iter()
            .filter(|p| p.klinq_f5q > p.herqules_f5q)
            .count()
    }
}

/// Runs the sweep on a freshly trained system.
///
/// # Errors
///
/// Returns [`KlinqError`] if training fails.
pub fn run(config: &ExperimentConfig) -> Result<Fig4, KlinqError> {
    let system = KlinqSystem::train(config)?;
    run_with_system(&system, config)
}

/// Evaluates the sweep on an existing system (trains HERQULES once).
///
/// # Errors
///
/// Returns [`KlinqError`] if the HERQULES baseline fails to train.
pub fn run_with_system(
    system: &KlinqSystem,
    config: &ExperimentConfig,
) -> Result<Fig4, KlinqError> {
    let hq_cfg = HerqulesConfig {
        train: config.student_train,
        ..HerqulesConfig::default()
    };
    let sample_period = system.test_data().config().sample_period_ns;
    let max_samples = system.test_data().samples();
    let mut points = Vec::new();
    for dur in sweep_durations() {
        let samples = ((dur / sample_period) as usize).min(max_samples);
        // KLiNQ and HERQULES are both retrained per duration (teachers
        // reused for the distillation soft labels), as in the paper.
        let klinq = system.evaluate_retrained_at(samples)?;
        let hq: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..5)
                .map(|qb| {
                    let hq_cfg = &hq_cfg;
                    scope.spawn(move || -> Result<f64, KlinqError> {
                        let h = HerqulesDiscriminator::train_at(
                            hq_cfg,
                            system.train_data(),
                            qb,
                            samples,
                        )?;
                        Ok(h.fidelity_at(system.test_data(), samples))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("herqules thread panicked"))
                .collect::<Result<Vec<_>, _>>()
        })?;
        points.push(SweepPoint {
            duration_ns: dur,
            klinq_per_qubit: klinq.per_qubit().to_vec(),
            klinq_f5q: klinq.geometric_mean(),
            herqules_f5q: geometric_mean(&hq),
        });
    }
    Ok(Fig4 { points })
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 4(a): per-qubit accuracy vs duration")?;
        writeln!(
            f,
            "{:>9} {:>7} {:>7} {:>7} {:>7} {:>7}   | Fig. 4(b): {:>7} {:>9}",
            "Duration", "Q1", "Q2", "Q3", "Q4", "Q5", "KLiNQ", "HERQULES"
        )?;
        for p in &self.points {
            write!(f, "{:>7.0}ns", p.duration_ns)?;
            for q in &p.klinq_per_qubit {
                write!(f, " {q:>7.3}")?;
            }
            writeln!(f, "   | {:>17.3} {:>9.3}", p.klinq_f5q, p.herqules_f5q)?;
        }
        write!(
            f,
            "KLiNQ leads HERQULES at {}/{} durations (paper: all)",
            self.klinq_wins(),
            self.points.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_all_points() {
        let fig =
            run_with_system(crate::testutil::smoke_system(), &ExperimentConfig::smoke()).unwrap();
        assert_eq!(fig.points.len(), 11);
        for p in &fig.points {
            assert_eq!(p.klinq_per_qubit.len(), 5);
            assert!(p.klinq_f5q > 0.5 && p.klinq_f5q <= 1.0);
            assert!(p.herqules_f5q > 0.5 && p.herqules_f5q <= 1.0);
        }
        let s = fig.to_string();
        assert!(s.contains("Fig. 4(b)"), "{s}");
    }
}
