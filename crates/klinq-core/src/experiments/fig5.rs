//! Fig. 5: parameter counts of teacher vs student networks (log scale)
//! and the network compression rate.

use crate::params::CompressionReport;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The measured Fig. 5 data: the three bars plus compression rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5 {
    /// The underlying accounting.
    pub report: CompressionReport,
}

/// Paper values for the three bars.
pub const PAPER_BARS: [(&str, usize); 3] = [
    ("Teacher NNs", 8_130_005),
    ("KLiNQ (Q2, Q3)", 6_754),
    ("KLiNQ (Q1, Q4, Q5)", 1_971),
];

/// Computes Fig. 5 (purely architectural; no training involved).
pub fn run() -> Fig5 {
    Fig5 {
        report: CompressionReport::paper_architectures(),
    }
}

impl Fig5 {
    /// The three bars as `(label, ours, paper)`.
    pub fn bars(&self) -> [(&'static str, usize, usize); 3] {
        [
            (
                "Teacher NNs",
                self.report.teacher_params_total,
                PAPER_BARS[0].1,
            ),
            (
                "KLiNQ (Q2, Q3)",
                self.report.fnn_b_group_total,
                PAPER_BARS[1].1,
            ),
            (
                "KLiNQ (Q1, Q4, Q5)",
                self.report.fnn_a_group_total,
                PAPER_BARS[2].1,
            ),
        ]
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<22} {:>12} {:>12}", "Networks", "ours", "paper")?;
        for (label, ours, paper) in self.bars() {
            // Log-scale bar, as in the figure.
            let log_len = (ours as f64).log10().round() as usize;
            writeln!(
                f,
                "{label:<22} {ours:>12} {paper:>12}  {}",
                "#".repeat(log_len)
            )?;
        }
        write!(f, "{}", self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn student_bars_match_paper_exactly() {
        let fig = run();
        let bars = fig.bars();
        assert_eq!(bars[1].1, bars[1].2); // 6 754
        assert_eq!(bars[2].1, bars[2].2); // 1 971
        // Teacher bar within 0.1%.
        let rel = (bars[0].1 as f64 - bars[0].2 as f64) / bars[0].2 as f64;
        assert!(rel.abs() < 0.001, "{rel}");
    }

    #[test]
    fn render_shows_log_bars() {
        let s = run().to_string();
        assert!(s.contains("######"), "{s}"); // ~10^6.9 teacher bar
        assert!(s.contains("1971") || s.contains("1 971"), "{s}");
    }
}
