//! Table II: KLiNQ readout fidelity vs readout-trace duration.
//!
//! The students are trained once at the 1 µs design point and evaluated on
//! shortened trace prefixes — the averaging front end adapts its group
//! size so the network input dimension never changes (paper Sec. III-D).
//! The paper's headline from this table: using each qubit's *optimal*
//! duration raises F5Q to 0.906.

use crate::discriminator::KlinqSystem;
use crate::error::KlinqError;
use crate::experiments::ExperimentConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The durations of the paper's Table II (ns).
pub const PAPER_DURATIONS_NS: [f64; 5] = [1000.0, 950.0, 750.0, 550.0, 500.0];

/// The paper's Table II fidelities, row-per-duration.
pub const PAPER_ROWS: [(f64, [f64; 5], f64); 5] = [
    (1000.0, [0.968, 0.748, 0.929, 0.934, 0.959], 0.904),
    (950.0, [0.967, 0.744, 0.925, 0.934, 0.956], 0.901),
    (750.0, [0.962, 0.736, 0.927, 0.932, 0.963], 0.900),
    (550.0, [0.944, 0.720, 0.930, 0.921, 0.967], 0.891),
    (500.0, [0.935, 0.717, 0.929, 0.917, 0.966], 0.887),
];

/// One duration row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Trace duration in ns.
    pub duration_ns: f64,
    /// Per-qubit fidelities.
    pub per_qubit: Vec<f64>,
    /// Five-qubit geometric mean.
    pub f5q: f64,
}

/// The measured Table II plus the best-per-qubit summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Rows, longest duration first.
    pub rows: Vec<Table2Row>,
    /// Each qubit's best fidelity across durations.
    pub best_per_qubit: Vec<f64>,
    /// Each qubit's optimal duration (ns).
    pub best_duration_ns: Vec<f64>,
    /// F5Q achieved by mixing optimal durations (the paper's 0.906).
    pub best_f5q: f64,
}

/// Runs Table II on a freshly trained system.
///
/// # Errors
///
/// Returns [`KlinqError`] if training fails.
pub fn run(config: &ExperimentConfig) -> Result<Table2, KlinqError> {
    let system = KlinqSystem::train(config)?;
    Ok(run_with_system(&system))
}

/// Evaluates the duration sweep on an existing system, re-distilling the
/// students per duration as the paper does (the teacher is reused).
pub fn run_with_system(system: &KlinqSystem) -> Table2 {
    let sample_period = system.test_data().config().sample_period_ns;
    let rows: Vec<Table2Row> = PAPER_DURATIONS_NS
        .iter()
        .map(|&dur| {
            let samples = (dur / sample_period) as usize;
            let report = system
                .evaluate_retrained_at(samples)
                .expect("per-duration distillation");
            Table2Row {
                duration_ns: dur,
                per_qubit: report.per_qubit().to_vec(),
                f5q: report.geometric_mean(),
            }
        })
        .collect();
    let mut best_per_qubit = vec![0.0f64; 5];
    let mut best_duration_ns = vec![0.0f64; 5];
    for row in &rows {
        for (qb, &f) in row.per_qubit.iter().enumerate() {
            if f > best_per_qubit[qb] {
                best_per_qubit[qb] = f;
                best_duration_ns[qb] = row.duration_ns;
            }
        }
    }
    let best_f5q = klinq_dsp::geometric_mean(&best_per_qubit);
    Table2 {
        rows,
        best_per_qubit,
        best_duration_ns,
        best_f5q,
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "Duration", "Q1", "Q2", "Q3", "Q4", "Q5", "F5Q"
        )?;
        for row in &self.rows {
            write!(f, "{:>7.0}ns", row.duration_ns)?;
            for q in &row.per_qubit {
                write!(f, " {q:>7.3}")?;
            }
            writeln!(f, " {:>7.3}", row.f5q)?;
        }
        write!(f, "best/qubit")?;
        for (q, d) in self.best_per_qubit.iter().zip(&self.best_duration_ns) {
            write!(f, " {q:.3}@{d:.0}")?;
        }
        writeln!(f, " → F5Q {:.3} (paper: 0.906)", self.best_f5q)?;
        writeln!(f, "--- paper (Table II) ---")?;
        for (dur, per_qubit, f5q) in PAPER_ROWS {
            write!(f, "{dur:>7.0}ns")?;
            for q in per_qubit {
                write!(f, " {q:>7.3}")?;
            }
            writeln!(f, " {f5q:>7.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_structure() {
        // The smoke config runs 200 ns traces, so sweep the same structure
        // at reduced durations by slicing the shared smoke-scale system.
        let table = run_with_system(crate::testutil::smoke_system());
        assert_eq!(table.rows.len(), PAPER_DURATIONS_NS.len());
        assert_eq!(table.best_per_qubit.len(), 5);
        // Best-per-qubit dominates every individual row.
        for row in &table.rows {
            for (qb, &f) in row.per_qubit.iter().enumerate() {
                assert!(table.best_per_qubit[qb] >= f);
            }
        }
        // Best-F5Q dominates every row's F5Q.
        for row in &table.rows {
            assert!(table.best_f5q >= row.f5q - 1e-12);
        }
        let s = table.to_string();
        assert!(s.contains("best/qubit"), "{s}");
    }
}
