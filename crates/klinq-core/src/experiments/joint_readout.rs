//! Joint vs independent readout: the Table I footnotes and the paper's
//! Discussion quantified.
//!
//! The paper's footnotes report the *synchronous five-qubit* versions of
//! the comparators (Baseline FNN F5Q 0.912, HERQULES 0.927) — both above
//! their independent adaptations — and the Discussion attributes the gap
//! to crosstalk: "separating the readouts without accounting for
//! inter-qubit influences inevitably leads to a reduction in fidelity."
//! This experiment measures that same gap on the simulator: a joint
//! network sees the neighbours' traces and can cancel their interference;
//! the independent discriminators cannot.

use crate::discriminator::KlinqSystem;
use crate::error::KlinqError;
use crate::experiments::ExperimentConfig;
use crate::joint::{JointConfig, JointDiscriminator};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Paper reference points: joint (synchronous) geometric means from the
/// Table I footnotes.
pub const PAPER_JOINT_BASELINE_F5Q: f64 = 0.912;
/// HERQULES as originally configured for a five-qubit system.
pub const PAPER_JOINT_HERQULES_F5Q: f64 = 0.927;

/// Measured joint-vs-independent comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointComparison {
    /// Joint five-qubit network, per qubit.
    pub joint_per_qubit: Vec<f64>,
    /// Joint five-qubit geometric mean.
    pub joint_f5q: f64,
    /// Independent Baseline FNN (the teachers), per qubit.
    pub independent_per_qubit: Vec<f64>,
    /// Independent Baseline FNN geometric mean.
    pub independent_f5q: f64,
    /// KLiNQ (independent, distilled) geometric mean for context.
    pub klinq_f5q: f64,
}

impl JointComparison {
    /// The crosstalk-compensation gain of synchronous readout.
    pub fn joint_advantage(&self) -> f64 {
        self.joint_f5q - self.independent_f5q
    }
}

/// Runs the comparison on a freshly trained system.
///
/// # Errors
///
/// Returns [`KlinqError`] if training fails.
pub fn run(config: &ExperimentConfig) -> Result<JointComparison, KlinqError> {
    let system = KlinqSystem::train(config)?;
    run_with_system(&system, config)
}

/// Runs against an existing system (reuses its data and teachers).
///
/// # Errors
///
/// Returns [`KlinqError`] if the joint network fails to train.
pub fn run_with_system(
    system: &KlinqSystem,
    config: &ExperimentConfig,
) -> Result<JointComparison, KlinqError> {
    // Match the joint network's budget to the experiment scale.
    let joint_cfg = if config.teacher.hidden.first().copied().unwrap_or(0) <= 32 {
        JointConfig::smoke()
    } else {
        JointConfig::reduced()
    };
    let joint = JointDiscriminator::train(&joint_cfg, system.train_data())?;
    let joint_report = joint.evaluate(system.test_data());
    let independent = system.evaluate_teachers();
    let klinq = system.evaluate();
    Ok(JointComparison {
        joint_per_qubit: joint_report.per_qubit().to_vec(),
        joint_f5q: joint_report.geometric_mean(),
        independent_per_qubit: independent.per_qubit().to_vec(),
        independent_f5q: independent.geometric_mean(),
        klinq_f5q: klinq.geometric_mean(),
    })
}

impl fmt::Display for JointComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "Scheme", "Q1", "Q2", "Q3", "Q4", "Q5", "F5Q"
        )?;
        write!(f, "{:<28}", "Joint 5-qubit FNN")?;
        for q in &self.joint_per_qubit {
            write!(f, " {q:>7.3}")?;
        }
        writeln!(f, " {:>7.3}", self.joint_f5q)?;
        write!(f, "{:<28}", "Independent Baseline FNN")?;
        for q in &self.independent_per_qubit {
            write!(f, " {q:>7.3}")?;
        }
        writeln!(f, " {:>7.3}", self.independent_f5q)?;
        writeln!(
            f,
            "{:<28} {:>47.3}",
            "KLiNQ (independent)", self.klinq_f5q
        )?;
        writeln!(
            f,
            "joint advantage over independent baseline: {:+.3}",
            self.joint_advantage()
        )?;
        write!(
            f,
            "paper footnotes: joint baseline F5Q {PAPER_JOINT_BASELINE_F5Q}, joint HERQULES {PAPER_JOINT_HERQULES_F5Q}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_comparison_runs_and_reports() {
        let cmp =
            run_with_system(crate::testutil::smoke_system(), &ExperimentConfig::smoke()).unwrap();
        assert_eq!(cmp.joint_per_qubit.len(), 5);
        assert_eq!(cmp.independent_per_qubit.len(), 5);
        assert!(cmp.joint_f5q > 0.5 && cmp.joint_f5q <= 1.0);
        let s = cmp.to_string();
        assert!(s.contains("joint advantage"), "{s}");
    }
}
