//! The KLiNQ system: independent per-qubit discriminators with a
//! mid-circuit measurement API.

use crate::backend::Backend;
use crate::distill::{distill_student, DistilledStudent};
use crate::error::KlinqError;
use crate::eval::{assignment_fidelity, FidelityReport};
use crate::experiments::ExperimentConfig;
use crate::student::StudentArch;
use crate::teacher::Teacher;
use klinq_fpga::FpgaDiscriminator;
use klinq_sim::{FiveQubitDevice, ReadoutDataset, SimConfig};
use serde::{Deserialize, Serialize};

/// One qubit's complete readout discriminator: feature pipeline + distilled
/// student + compiled FPGA datapath.
///
/// Serializable as part of a saved [`KlinqSystem`] artifact (see
/// [`crate::persist`]): both the float student and the compiled Q16.16
/// datapath travel with it, so a loaded discriminator reproduces either
/// backend's decisions bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KlinqDiscriminator {
    qubit: usize,
    arch: StudentArch,
    student: DistilledStudent,
    hw: FpgaDiscriminator,
}

impl KlinqDiscriminator {
    /// Builds from a distilled student, compiling the FPGA datapath for
    /// `design_samples` per channel.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError::Compile`] if the datapath cannot be compiled.
    pub fn new(
        qubit: usize,
        arch: StudentArch,
        student: DistilledStudent,
        design_samples: usize,
    ) -> Result<Self, KlinqError> {
        let hw = FpgaDiscriminator::compile(&student.net, &student.pipeline, design_samples)?;
        Ok(Self {
            qubit,
            arch,
            student,
            hw,
        })
    }

    /// Which qubit this discriminator reads.
    pub fn qubit(&self) -> usize {
        self.qubit
    }

    /// The student architecture in use.
    pub fn arch(&self) -> StudentArch {
        self.arch
    }

    /// The trained student network.
    pub fn student(&self) -> &DistilledStudent {
        &self.student
    }

    /// The compiled FPGA datapath.
    pub fn hardware(&self) -> &FpgaDiscriminator {
        &self.hw
    }

    /// Reads the qubit state from a raw trace on the chosen backend.
    ///
    /// Accepts any trace length down to the averager's output count —
    /// this is what enables mid-circuit measurements at arbitrary times.
    /// This is the single generic entry point; [`Self::measure`] and
    /// [`Self::measure_hw`] are compatibility wrappers over it.
    ///
    /// # Panics
    ///
    /// Panics if the traces are shorter than the feature front end allows.
    pub fn measure_on(&self, backend: Backend, i: &[f32], q: &[f32]) -> bool {
        match backend {
            Backend::Float => self
                .student
                .net
                .predict(&self.student.pipeline.extract(i, q)),
            Backend::Hardware => self.hw.infer(i, q),
        }
    }

    /// Reads the qubit state from a raw trace (float reference path).
    ///
    /// Compatibility wrapper over [`Self::measure_on`].
    ///
    /// # Panics
    ///
    /// Panics if the traces are shorter than the feature front end allows.
    #[inline]
    pub fn measure(&self, i: &[f32], q: &[f32]) -> bool {
        self.measure_on(Backend::Float, i, q)
    }

    /// Reads the qubit state through the bit-accurate Q16.16 datapath.
    ///
    /// Compatibility wrapper over [`Self::measure_on`].
    ///
    /// # Panics
    ///
    /// Panics if the traces are shorter than the feature front end allows.
    #[inline]
    pub fn measure_hw(&self, i: &[f32], q: &[f32]) -> bool {
        self.measure_on(Backend::Hardware, i, q)
    }

    /// Assignment fidelity over a dataset on the chosen backend, reading
    /// only the first `samples` of each trace (pass the dataset's full
    /// sample count — or `usize::MAX` — for the design duration).
    pub fn fidelity_on(&self, backend: Backend, data: &ReadoutDataset, samples: usize) -> f64 {
        let labels = data.qubit_labels(self.qubit);
        let preds: Vec<bool> = data
            .qubit_pairs(self.qubit)
            .iter()
            .map(|&(i, q)| {
                self.measure_on(backend, &i[..samples.min(i.len())], &q[..samples.min(q.len())])
            })
            .collect();
        assignment_fidelity(&preds, &labels)
    }

    /// Float-path assignment fidelity over a dataset at a trace prefix.
    ///
    /// Compatibility wrapper over [`Self::fidelity_on`].
    #[inline]
    pub fn fidelity_at(&self, data: &ReadoutDataset, samples: usize) -> f64 {
        self.fidelity_on(Backend::Float, data, samples)
    }

    /// Hardware-path assignment fidelity over a dataset.
    ///
    /// Compatibility wrapper over [`Self::fidelity_on`].
    #[inline]
    pub fn fidelity_hw(&self, data: &ReadoutDataset) -> f64 {
        self.fidelity_on(Backend::Hardware, data, usize::MAX)
    }
}

/// The full five-qubit KLiNQ system plus the data and teachers it was
/// built from (kept for the paper's comparisons).
#[derive(Debug, Clone, PartialEq)]
pub struct KlinqSystem {
    discriminators: Vec<KlinqDiscriminator>,
    teachers: Vec<Teacher>,
    train_data: ReadoutDataset,
    test_data: ReadoutDataset,
    config: ExperimentConfig,
}

impl KlinqSystem {
    /// Trains the complete system per the experiment configuration:
    /// generates calibrated data, trains one teacher per qubit (in
    /// parallel), distills the per-qubit students, and compiles the FPGA
    /// datapaths.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError`] if any stage fails (configuration,
    /// pipeline fitting, dataset assembly or datapath compilation).
    pub fn train(config: &ExperimentConfig) -> Result<Self, KlinqError> {
        config.validate()?;
        let (train_data, test_data) = Self::datasets_for(config);
        let teacher_extra = (config.teacher_extra_shots > 0).then(|| {
            ReadoutDataset::generate(
                &FiveQubitDevice::paper(),
                &SimConfig::with_duration_ns(config.duration_ns),
                config.teacher_extra_shots,
                config.data_seed + 2,
            )
        });

        // Train the five qubits in parallel; each thread trains a teacher
        // and distills its student.
        let results: Vec<Result<(Teacher, DistilledStudent, StudentArch), KlinqError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..5)
                    .map(|qb| {
                        let train_data = &train_data;
                        let teacher_extra = teacher_extra.as_ref();
                        scope.spawn(move || {
                            let teacher = Teacher::train_with_extra(
                                &config.teacher,
                                train_data,
                                teacher_extra,
                                qb,
                            )?;
                            let arch = StudentArch::for_qubit(qb);
                            let student = distill_student(
                                &teacher,
                                arch,
                                train_data,
                                config.distill,
                                &config.student_train,
                                config.student_seed + qb as u64,
                            )?;
                            Ok((teacher, student, arch))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("training thread panicked"))
                    .collect()
            });

        let mut discriminators = Vec::with_capacity(5);
        let mut teachers = Vec::with_capacity(5);
        for (qb, result) in results.into_iter().enumerate() {
            let (teacher, student, arch) = result?;
            teachers.push(teacher);
            discriminators.push(KlinqDiscriminator::new(
                qb,
                arch,
                student,
                test_data.samples(),
            )?);
        }
        Ok(Self {
            discriminators,
            teachers,
            train_data,
            test_data,
            config: config.clone(),
        })
    }

    /// The training and held-out datasets an experiment configuration
    /// deterministically implies (everything stochastic derives from the
    /// config's seeds). Used by [`Self::train`] and by artifact loading
    /// ([`crate::persist`]), which must reproduce the exact same bits.
    pub(crate) fn datasets_for(config: &ExperimentConfig) -> (ReadoutDataset, ReadoutDataset) {
        let device = FiveQubitDevice::paper();
        let sim = SimConfig::with_duration_ns(config.duration_ns);
        let train_data =
            ReadoutDataset::generate(&device, &sim, config.train_shots, config.data_seed);
        let test_data =
            ReadoutDataset::generate(&device, &sim, config.test_shots, config.data_seed + 1);
        (train_data, test_data)
    }

    /// Reassembles a system from its saved parts (artifact loading).
    pub(crate) fn from_parts(
        discriminators: Vec<KlinqDiscriminator>,
        teachers: Vec<Teacher>,
        train_data: ReadoutDataset,
        test_data: ReadoutDataset,
        config: ExperimentConfig,
    ) -> Self {
        Self {
            discriminators,
            teachers,
            train_data,
            test_data,
            config,
        }
    }

    /// Per-qubit discriminators.
    pub fn discriminators(&self) -> &[KlinqDiscriminator] {
        &self.discriminators
    }

    /// One discriminator.
    ///
    /// # Panics
    ///
    /// Panics if `qb` is out of range.
    pub fn discriminator(&self, qb: usize) -> &KlinqDiscriminator {
        &self.discriminators[qb]
    }

    /// The per-qubit teachers (also the Baseline-FNN comparators).
    pub fn teachers(&self) -> &[Teacher] {
        &self.teachers
    }

    /// Training dataset.
    pub fn train_data(&self) -> &ReadoutDataset {
        &self.train_data
    }

    /// Held-out evaluation dataset.
    pub fn test_data(&self) -> &ReadoutDataset {
        &self.test_data
    }

    /// The configuration the system was trained with.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Mid-circuit measurement on the chosen backend: read one qubit
    /// independently from a raw trace of any supported length.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range or the trace is too short.
    pub fn measure_on(&self, backend: Backend, qubit: usize, i: &[f32], q: &[f32]) -> bool {
        self.discriminators[qubit].measure_on(backend, i, q)
    }

    /// Mid-circuit measurement on the float reference path.
    ///
    /// Compatibility wrapper over [`Self::measure_on`].
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range or the trace is too short.
    #[inline]
    pub fn measure(&self, qubit: usize, i: &[f32], q: &[f32]) -> bool {
        self.measure_on(Backend::Float, qubit, i, q)
    }

    /// Evaluates all qubits on the held-out set at the design duration,
    /// on the chosen backend.
    ///
    /// Routes through the batched engine ([`crate::batch`]): shots are
    /// classified in parallel chunks, with results bitwise-identical to
    /// sequential per-shot [`Self::measure_on`] calls.
    pub fn evaluate_on(&self, backend: Backend) -> FidelityReport {
        crate::batch::BatchDiscriminator::new(&self.discriminators)
            .evaluate_on(backend, &self.test_data)
    }

    /// Float-path evaluation on the held-out set.
    ///
    /// Compatibility wrapper over [`Self::evaluate_on`].
    #[inline]
    pub fn evaluate(&self) -> FidelityReport {
        self.evaluate_on(Backend::Float)
    }

    /// Evaluates at a shortened trace length (`samples` per channel)
    /// using the design-point students on truncated inputs.
    ///
    /// Note the feature distribution shifts when traces shrink, so this
    /// underestimates the achievable fidelity; the paper's duration sweep
    /// corresponds to [`Self::evaluate_retrained_at`], which re-distills
    /// per duration (input dimensions never change — only the averaging
    /// group adapts, per Sec. III-D).
    pub fn evaluate_at(&self, samples: usize) -> FidelityReport {
        FidelityReport::new(
            self.discriminators
                .iter()
                .map(|d| d.fidelity_at(&self.test_data, samples))
                .collect(),
        )
    }

    /// Re-distills one student per qubit for a shortened duration (the
    /// teachers and their soft labels are reused) and evaluates them.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError`] if any per-duration distillation fails.
    pub fn evaluate_retrained_at(&self, samples: usize) -> Result<FidelityReport, KlinqError> {
        let samples = samples.min(self.test_data.samples());
        if samples == self.test_data.samples() {
            // Design point: the trained students are exactly this.
            return Ok(self.evaluate());
        }
        let students = self.students_at(samples)?;
        let fidelities = students
            .iter()
            .enumerate()
            .map(|(qb, s)| {
                let labels = self.test_data.qubit_labels(qb);
                let correct = self
                    .test_data
                    .qubit_pairs(qb)
                    .iter()
                    .zip(&labels)
                    .filter(|(&(i, q), &y)| {
                        s.net
                            .predict(&s.pipeline.extract(&i[..samples], &q[..samples]))
                            == (y == 1.0)
                    })
                    .count();
                correct as f64 / labels.len() as f64
            })
            .collect();
        Ok(FidelityReport::new(fidelities))
    }

    /// Distills a fresh student per qubit at the given trace length
    /// (parallel across qubits).
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError`] if any distillation fails.
    pub fn students_at(&self, samples: usize) -> Result<Vec<DistilledStudent>, KlinqError> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..5)
                .map(|qb| {
                    scope.spawn(move || {
                        crate::distill::distill_student_at(
                            &self.teachers[qb],
                            StudentArch::for_qubit(qb),
                            &self.train_data,
                            samples,
                            self.config.distill,
                            &self.config.student_train,
                            self.config.student_seed + qb as u64,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("distillation thread panicked"))
                .collect()
        })
    }

    /// Builds a sibling system around replacement students: same teachers,
    /// datasets and configuration, but each qubit's discriminator rebuilt
    /// (FPGA datapath recompiled) from the given student at
    /// `design_samples` per channel.
    ///
    /// This is the constructor behind live recalibration: distill
    /// candidates with [`Self::students_at`], assemble the candidate
    /// system here, then stage it as a canary or hot-swap it into a
    /// running server.
    ///
    /// # Errors
    ///
    /// Returns [`KlinqError::InvalidConfig`] unless exactly one student
    /// per qubit is supplied, or [`KlinqError::Compile`] if a datapath
    /// cannot be compiled.
    pub fn with_students(
        &self,
        students: Vec<DistilledStudent>,
        design_samples: usize,
    ) -> Result<Self, KlinqError> {
        if students.len() != self.discriminators.len() {
            return Err(KlinqError::InvalidConfig(format!(
                "with_students needs {} students, got {}",
                self.discriminators.len(),
                students.len()
            )));
        }
        let discriminators = students
            .into_iter()
            .enumerate()
            .map(|(qb, student)| {
                KlinqDiscriminator::new(qb, StudentArch::for_qubit(qb), student, design_samples)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            discriminators,
            teachers: self.teachers.clone(),
            train_data: self.train_data.clone(),
            test_data: self.test_data.clone(),
            config: self.config.clone(),
        })
    }

    /// Evaluates through the bit-accurate FPGA datapath.
    ///
    /// Compatibility wrapper over [`Self::evaluate_on`].
    #[inline]
    pub fn evaluate_hw(&self) -> FidelityReport {
        self.evaluate_on(Backend::Hardware)
    }

    /// Baseline-FNN (= teacher) fidelities on the held-out set.
    pub fn evaluate_teachers(&self) -> FidelityReport {
        FidelityReport::new(
            self.teachers
                .iter()
                .map(|t| t.fidelity(&self.test_data))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::smoke_system;

    #[test]
    fn system_trains_and_evaluates() {
        let sys = smoke_system();
        assert_eq!(sys.discriminators().len(), 5);
        assert_eq!(sys.teachers().len(), 5);
        let report = sys.evaluate();
        // Smoke scale (300 ns traces): demand clearly-better-than-chance
        // overall and solid accuracy on the front-loaded-signal qubit 3,
        // the easiest at this shortened duration.
        assert!(report.geometric_mean() > 0.70, "{report}");
        assert!(report.qubit(2) > 0.85, "{report}");
        assert!(report.qubit(0) > 0.75, "{report}");
    }

    #[test]
    fn architectures_assigned_per_paper() {
        let sys = smoke_system();
        assert_eq!(sys.discriminator(0).arch(), StudentArch::FnnA);
        assert_eq!(sys.discriminator(1).arch(), StudentArch::FnnB);
        assert_eq!(sys.discriminator(2).arch(), StudentArch::FnnB);
        assert_eq!(sys.discriminator(3).arch(), StudentArch::FnnA);
        assert_eq!(sys.discriminator(4).arch(), StudentArch::FnnA);
    }

    #[test]
    fn mid_circuit_measurement_is_independent_and_truncatable() {
        let sys = smoke_system();
        let shot = sys.test_data().shot(3);
        for qb in 0..5 {
            let t = &shot.traces[qb];
            // Full trace and a truncated prefix both produce a decision.
            // FNN-B qubits average 100 points per channel, so the prefix
            // cannot drop below 100 samples (200 ns).
            let _ = sys.measure(qb, &t.i, &t.q);
            let cut = (t.i.len() * 7 / 10).max(100);
            let _ = sys.measure(qb, &t.i[..cut], &t.q[..cut]);
        }
    }

    #[test]
    fn hardware_path_tracks_float_path() {
        let sys = smoke_system();
        let float_report = sys.evaluate();
        let hw_report = sys.evaluate_hw();
        for qb in 0..5 {
            let delta = (float_report.qubit(qb) - hw_report.qubit(qb)).abs();
            assert!(
                delta < 0.03,
                "qubit {}: float {:.3} vs hw {:.3}",
                qb + 1,
                float_report.qubit(qb),
                hw_report.qubit(qb)
            );
        }
    }

    #[test]
    fn backend_wrappers_are_bitwise_identical_to_generic_paths() {
        let sys = smoke_system();
        // Per-shot: the legacy twins must agree exactly with `measure_on`
        // on both backends, for every qubit of a handful of shots.
        for shot_idx in [0usize, 1, 7, 31] {
            let shot = sys.test_data().shot(shot_idx);
            for (qb, t) in shot.traces.iter().enumerate() {
                let d = sys.discriminator(qb);
                assert_eq!(d.measure(&t.i, &t.q), d.measure_on(Backend::Float, &t.i, &t.q));
                assert_eq!(
                    d.measure_hw(&t.i, &t.q),
                    d.measure_on(Backend::Hardware, &t.i, &t.q)
                );
                assert_eq!(
                    sys.measure(qb, &t.i, &t.q),
                    sys.measure_on(Backend::Float, qb, &t.i, &t.q)
                );
            }
        }
        // Whole-report level: wrappers and generic entry points produce
        // the exact same `FidelityReport` on both backends.
        assert_eq!(sys.evaluate(), sys.evaluate_on(Backend::Float));
        assert_eq!(sys.evaluate_hw(), sys.evaluate_on(Backend::Hardware));
        let data = sys.test_data();
        for qb in 0..5 {
            let d = sys.discriminator(qb);
            assert_eq!(
                d.fidelity_at(data, data.samples()),
                d.fidelity_on(Backend::Float, data, data.samples())
            );
            assert_eq!(
                d.fidelity_hw(data),
                d.fidelity_on(Backend::Hardware, data, usize::MAX)
            );
        }
    }

    #[test]
    fn with_students_identity_rebuild_is_bitwise_identical() {
        let sys = smoke_system();
        let students: Vec<_> = sys
            .discriminators()
            .iter()
            .map(|d| d.student().clone())
            .collect();
        let rebuilt = sys
            .with_students(students, sys.test_data().samples())
            .unwrap();
        assert_eq!(rebuilt.evaluate(), sys.evaluate());
        assert_eq!(rebuilt.evaluate_hw(), sys.evaluate_hw());
    }

    #[test]
    fn with_students_rejects_wrong_count() {
        let sys = smoke_system();
        let err = sys
            .with_students(Vec::new(), sys.test_data().samples())
            .unwrap_err();
        assert!(matches!(err, KlinqError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn inverted_variant_flips_decisions_on_both_backends() {
        let sys = smoke_system();
        let inv = crate::testkit::inverted_variant(sys);
        for shot_idx in [0usize, 5, 17] {
            let shot = sys.test_data().shot(shot_idx);
            for (qb, t) in shot.traces.iter().enumerate() {
                for backend in [Backend::Float, Backend::Hardware] {
                    assert_ne!(
                        sys.measure_on(backend, qb, &t.i, &t.q),
                        inv.measure_on(backend, qb, &t.i, &t.q),
                        "qubit {qb} shot {shot_idx} {backend:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn teachers_outperform_chance_everywhere() {
        let sys = smoke_system();
        let report = sys.evaluate_teachers();
        for qb in 0..5 {
            // Qubit 2 sits near 0.68 even for the analytic optimum at the
            // smoke scale's 300 ns; the tiny smoke teacher lands lower.
            let floor = if qb == 1 { 0.52 } else { 0.65 };
            assert!(report.qubit(qb) > floor, "qubit {}: {report}", qb + 1);
        }
    }
}
